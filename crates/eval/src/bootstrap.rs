//! Percentile-bootstrap confidence intervals for pooled precision/recall.
//!
//! The paper reports point estimates over 50 subjects; with samples that
//! small, an interval tells the reader how much of Table 1 is signal. The
//! bootstrap resamples *subjects* (not term instances), respecting the
//! pooled formulas' per-subject structure.

use crate::metrics::{MultiValueScore, PrecisionRecall};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which pooled metric to bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Pooled precision `Σ ETrueᵢ / Σ ETotalᵢ`.
    Precision,
    /// Pooled recall `Σ ETrueᵢ / Σ TInstᵢ`.
    Recall,
}

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl MultiValueScore {
    /// Per-subject accumulators (exposed for resampling).
    fn subjects_counts(&self) -> Vec<PrecisionRecall> {
        (0..self.subjects())
            .map(|i| self.subject_counts(i).expect("index in range"))
            .collect()
    }

    /// 95% percentile-bootstrap interval for a pooled metric, resampling
    /// subjects with replacement. Deterministic under `seed`.
    pub fn bootstrap_ci(&self, metric: Metric, iterations: usize, seed: u64) -> Interval {
        let subjects = self.subjects_counts();
        if subjects.is_empty() || iterations == 0 {
            return Interval { lo: 0.0, hi: 1.0 };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats: Vec<f64> = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let mut pooled = PrecisionRecall::new();
            for _ in 0..subjects.len() {
                let pick = &subjects[rng.random_range(0..subjects.len())];
                pooled.merge(pick);
            }
            stats.push(match metric {
                Metric::Precision => pooled.precision(),
                Metric::Recall => pooled.recall(),
            });
        }
        stats.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| {
            let idx = ((stats.len() as f64 - 1.0) * q).round() as usize;
            stats[idx]
        };
        Interval {
            lo: pick(0.025),
            hi: pick(0.975),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score_with_noise() -> MultiValueScore {
        let mut mv = MultiValueScore::new();
        for i in 0..30 {
            if i % 5 == 0 {
                mv.add_subject(&["a", "x"], &["a", "b"]); // imperfect subject
            } else {
                mv.add_subject(&["a", "b"], &["a", "b"]); // perfect subject
            }
        }
        mv
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let mv = score_with_noise();
        let p = mv.precision();
        let ci = mv.bootstrap_ci(Metric::Precision, 500, 1);
        assert!(ci.lo <= p && p <= ci.hi, "{ci:?} vs {p}");
        assert!(ci.lo < ci.hi);
    }

    #[test]
    fn deterministic_under_seed() {
        let mv = score_with_noise();
        let a = mv.bootstrap_ci(Metric::Recall, 200, 7);
        let b = mv.bootstrap_ci(Metric::Recall, 200, 7);
        assert_eq!(a, b);
        let c = mv.bootstrap_ci(Metric::Recall, 200, 8);
        // Different seeds nearly always give different percentiles here.
        assert!(a != c || (a.lo - c.lo).abs() < 1e-12);
    }

    #[test]
    fn degenerate_perfect_score_is_tight() {
        let mut mv = MultiValueScore::new();
        for _ in 0..10 {
            mv.add_subject(&[1, 2], &[1, 2]);
        }
        let ci = mv.bootstrap_ci(Metric::Precision, 100, 3);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn empty_score_yields_trivial_interval() {
        let mv = MultiValueScore::new();
        let ci = mv.bootstrap_ci(Metric::Precision, 100, 3);
        assert_eq!((ci.lo, ci.hi), (0.0, 1.0));
    }
}
