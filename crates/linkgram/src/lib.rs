//! # cmr-linkgram — a link grammar parser for clinical dictation English
//!
//! A from-scratch reimplementation of the machinery the ICDE 2005 system
//! obtained from the original Link Grammar Parser 4.1 (Sleator & Temperley):
//!
//! * a dictionary of connector expressions compiled to disjuncts,
//! * the O(n³) memoized region parser (planar, connected linkages),
//! * linkage diagrams (the paper's Figure 1),
//! * the weighted linkage graph with shortest-distance queries used to
//!   associate numeric values with feature keywords (§3.1),
//! * constituent extraction (subject/verb/object/supplement) used by the
//!   categorical feature extractor (§3.3).
//!
//! ```
//! use cmr_linkgram::{LinkParser, LinkWeights};
//!
//! let parser = LinkParser::new();
//! let linkage = parser.parse_sentence("Blood pressure is 144/90.").unwrap();
//! println!("{}", linkage.diagram());
//!
//! // Fragments fail to parse — the paper's pattern fallback handles them.
//! assert!(parser.parse_sentence("Blood pressure: 144/90.").is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failures here are values (ParseFailure, ParseError, DictError), never
// unwraps: a library panic would take a whole batch-engine worker with it.
#![deny(clippy::unwrap_used)]

mod connector;
mod constituent;
mod diagram;
mod dict;
mod expr;
mod linkage;
mod parser;

pub use connector::{Connector, Dir};
pub use constituent::Constituents;
pub use dict::{class_defs, tag_classes, word_classes, DictError, Dictionary};
pub use expr::{expand, parse_expr, Disjunct, Expr, ParseError};
pub use linkage::{Link, LinkWeights, Linkage};
pub use parser::{LinkParser, ParseFailure, ParserStats, SharedCacheStats, SharedParseCache};
