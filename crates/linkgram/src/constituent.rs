//! Sentence constituents derived from a linkage.
//!
//! The paper's categorical feature extraction (§3.3) lets the user restrict
//! features to "sentence constituents: subject, verb, object, and
//! supplement". The original system read these off the Link Grammar
//! constituent tree; here they are derived directly from the linkage:
//!
//! * the **verb** group is the finite verb reached by the `S` link plus its
//!   auxiliary chain (`T`, `I`, `Pg` between verbs) and negation adverbs;
//! * the **subject** is the `S` link's left subtree;
//! * the **object** is the subtree under the verb group's `O`/`P`/`Pv`/`Pg`
//!   links;
//! * the **supplement** is everything else the verb group governs (`MV`,
//!   `TO`, …) plus any material not otherwise assigned (for nominal
//!   fragments, the whole fragment is supplement).

use crate::linkage::Linkage;

/// Token-index sets for the four constituents of a sentence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Constituents {
    /// Token indices of the subject constituent.
    pub subject: Vec<usize>,
    /// Token indices of the verb group.
    pub verb: Vec<usize>,
    /// Token indices of the object constituent.
    pub object: Vec<usize>,
    /// Token indices of supplements (everything governed by the verb that is
    /// not subject/object, or the whole fragment when there is no verb).
    pub supplement: Vec<usize>,
}

impl Constituents {
    /// All constituent token indices in one vector (no duplicates).
    pub fn all(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .subject
            .iter()
            .chain(&self.verb)
            .chain(&self.object)
            .chain(&self.supplement)
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl Linkage {
    /// Splits the sentence into constituents. See the module docs for the
    /// derivation rules.
    pub fn constituents(&self) -> Constituents {
        let n = self.words.len();
        let mut adj: Vec<Vec<(usize, &str)>> = vec![Vec::new(); n];
        for l in self.links.iter() {
            adj[l.left].push((l.right, l.label.as_str()));
            adj[l.right].push((l.left, l.label.as_str()));
        }
        let base = |label: &str| -> String {
            label
                .chars()
                .take_while(|c| c.is_ascii_uppercase())
                .collect()
        };

        // Find the S link: subject head on the left, finite verb on the right.
        let s_link = self.links.iter().find(|l| base(&l.label) == "S");
        let Some(s_link) = s_link else {
            // Fragment: everything (except the wall) is supplement.
            let supplement = (0..n).filter_map(|w| self.token_map[w]).collect();
            return Constituents {
                supplement,
                ..Constituents::default()
            };
        };
        let subj_head = s_link.left;
        let mut verb_head = s_link.right;

        // Verb group: follow the auxiliary/complement chain (T, I, Pg — so
        // "quit smoking" is one verb group) and collect pre/post verbal
        // adverbs (E, EB, N).
        let mut verb_group = vec![verb_head];
        loop {
            let next = adj[verb_head]
                .iter()
                .find(|(w, lbl)| {
                    *w > verb_head
                        && (matches!(base(lbl).as_str(), "T" | "I") || lbl.starts_with("Pg"))
                })
                .map(|(w, _)| *w);
            match next {
                Some(w) => {
                    verb_group.push(w);
                    verb_head = w;
                }
                None => break,
            }
        }
        for &v in verb_group.clone().iter() {
            for (w, lbl) in &adj[v] {
                if matches!(base(lbl).as_str(), "E" | "EB" | "N") && !verb_group.contains(w) {
                    verb_group.push(*w);
                }
            }
        }

        // Subject subtree: everything reachable from the subject head
        // without crossing the S link or the wall.
        let subject = self.subtree(&adj, subj_head, &[s_link.right, 0]);

        // Object subtree: complement links from any verb-group word.
        let mut object = Vec::new();
        let mut obj_heads = Vec::new();
        for &v in &verb_group {
            for (w, lbl) in &adj[v] {
                let complement = base(lbl) == "O" || (base(lbl) == "P" && !lbl.starts_with("Pg"));
                if *w > v && complement && !verb_group.contains(w) {
                    obj_heads.push((*w, v));
                }
            }
        }
        for (head, from) in &obj_heads {
            for w in self.subtree(&adj, *head, &[*from]) {
                if !object.contains(&w) {
                    object.push(w);
                }
            }
        }

        // Supplement: all remaining non-wall words.
        let mut assigned: Vec<usize> = Vec::new();
        let to_tokens = |words: &[usize]| -> Vec<usize> {
            let mut v: Vec<usize> = words.iter().filter_map(|&w| self.token_map[w]).collect();
            v.sort_unstable();
            v
        };
        let subject_w = subject;
        let object_w = object;
        assigned.extend(&subject_w);
        assigned.extend(&verb_group);
        assigned.extend(&object_w);
        let supplement_w: Vec<usize> = (1..n).filter(|w| !assigned.contains(w)).collect();

        Constituents {
            subject: to_tokens(&subject_w),
            verb: to_tokens(&verb_group),
            object: to_tokens(&object_w),
            supplement: to_tokens(&supplement_w),
        }
    }

    /// Words reachable from `start` without visiting any of `banned`.
    fn subtree(&self, adj: &[Vec<(usize, &str)>], start: usize, banned: &[usize]) -> Vec<usize> {
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            for &(y, _) in &adj[x] {
                if !seen.contains(&y) && !banned.contains(&y) {
                    seen.push(y);
                    stack.push(y);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::LinkParser;

    fn words(text: &str, idxs: &[usize]) -> Vec<String> {
        let toks = cmr_text::tokenize(text);
        idxs.iter().map(|&i| toks[i].text.clone()).collect()
    }

    #[test]
    fn simple_svo() {
        let l = LinkParser::new()
            .parse_sentence("She denies alcohol use.")
            .expect("parses");
        let c = l.constituents();
        let text = "She denies alcohol use.";
        assert_eq!(words(text, &c.subject), vec!["She"]);
        assert_eq!(words(text, &c.verb), vec!["denies"]);
        assert!(words(text, &c.object).contains(&"use".to_string()));
    }

    #[test]
    fn verb_group_includes_auxiliaries_and_negation() {
        let text = "She has never smoked.";
        let l = LinkParser::new().parse_sentence(text).expect("parses");
        let c = l.constituents();
        let vg = words(text, &c.verb);
        assert!(vg.contains(&"has".to_string()), "{vg:?}");
        assert!(vg.contains(&"smoked".to_string()), "{vg:?}");
        assert!(vg.contains(&"never".to_string()), "{vg:?}");
    }

    #[test]
    fn supplement_collects_adjuncts() {
        let text = "She quit smoking five years ago.";
        let l = LinkParser::new().parse_sentence(text).expect("parses");
        let c = l.constituents();
        let sup = words(text, &c.supplement);
        assert!(sup.contains(&"ago".to_string()), "{sup:?}");
    }

    #[test]
    fn fragment_is_all_supplement() {
        let text = "Menarche at age 10.";
        let l = LinkParser::new().parse_sentence(text).expect("parses");
        let c = l.constituents();
        assert!(c.subject.is_empty());
        assert!(c.verb.is_empty());
        assert_eq!(c.supplement.len(), 4, "{c:?}");
    }

    #[test]
    fn all_union_has_no_duplicates() {
        let text = "She is currently a smoker.";
        let l = LinkParser::new().parse_sentence(text).expect("parses");
        let c = l.constituents();
        let all = c.all();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all, dedup);
    }
}
