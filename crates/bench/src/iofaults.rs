//! I/O fault sweep: deterministic fault injection over the durability
//! and service write paths.
//!
//! Each *schedule* (a `CMR_FAILPOINTS`-grammar string, seeded) is run
//! against an in-process journaled extraction and/or a service burst,
//! and the sweep asserts the robustness invariants the rest of the
//! system promises:
//!
//! * **clean containment** — an injected ENOSPC, torn write, delay, or
//!   panic never takes the harness down and never corrupts state beyond
//!   what resume heals;
//! * **resume identity** — after the fault clears, resuming the journal
//!   produces output byte-identical to an unfaulted run;
//! * **exactly-once** — every submitted record lands exactly once in the
//!   journal/output (or is part of a cleanly-reported abort), never
//!   silently lost and never duplicated;
//! * **replay determinism** — re-running a schedule from its seed fires
//!   the identical event sequence (the whole point of seeding them);
//! * **service liveness** — a server taking socket faults keeps
//!   answering once the schedule clears.
//!
//! The sweep requires a build with the `failpoints` feature; plain
//! builds get a clear error instead of a silently-empty report.

use cmr_core::Schema;
use cmr_corpus::CorpusBuilder;
use cmr_engine::{
    merge_outputs, read_journal, shard_of, verify_output_prefix, Engine, EngineConfig,
    JournalEntry, JournalWriter, OutputFingerprint, QuarantineFile, RetryPolicy, RunManifest,
    Snapshot,
};
use cmr_failpoint::FailpointRegistry;
use cmr_ontology::Ontology;
use cmr_serve::{ServeConfig, Server};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`run_io_faults`].
#[derive(Debug, Clone)]
pub struct IoFaultConfig {
    /// `standard` for the built-in schedule matrix, or one schedule in
    /// the `CMR_FAILPOINTS` grammar (e.g. `journal::append=enospc@3`).
    pub spec: String,
    /// Seed applied to every schedule (overridden by an explicit
    /// `seed=` item inside a custom spec).
    pub seed: u64,
    /// Records in the synthetic corpus each schedule extracts.
    pub records: usize,
    /// Worker threads for the extraction engine (`0` = one per core).
    pub jobs: usize,
}

/// Outcome of one schedule.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduleReport {
    /// The schedule, in spec grammar (seed included — replayable as-is
    /// via `CMR_FAILPOINTS`).
    pub schedule: String,
    /// `journal`, `quarantine`, `engine`, or `serve` — which surface it
    /// targets.
    pub kind: String,
    /// Failpoint fires observed during the faulted phase.
    pub fires: usize,
    /// The faulted phase ended in a contained abort (injected error or
    /// panic) rather than completing; `false` is fine for schedules
    /// whose action is benign (delay) or probabilistic.
    pub clean_abort: bool,
    /// Invariant violations; empty means the schedule passed.
    pub violations: Vec<String>,
}

/// The sweep's full result.
#[derive(Debug, Clone, Serialize)]
pub struct IoFaultReport {
    /// Base seed of the sweep.
    pub seed: u64,
    /// Corpus size per schedule.
    pub records: usize,
    /// One entry per schedule, in run order.
    pub schedules: Vec<ScheduleReport>,
}

impl IoFaultReport {
    /// Total invariant violations across all schedules.
    pub fn total_violations(&self) -> usize {
        self.schedules.iter().map(|s| s.violations.len()).sum()
    }
}

/// The built-in schedule matrix: every registered write-path failpoint
/// crossed with the action classes that stress it.
fn standard_schedules() -> Vec<&'static str> {
    vec![
        "journal::manifest=enospc@1",
        "journal::append=enospc@3",
        "journal::append=partial-write(25)@3",
        "journal::append=return-err@4",
        "journal::append=delay(10)@2",
        "journal::append=panic@3",
        "journal::truncate=return-err@1",
        "quarantine::append=partial-write(11)@1",
        // Panic mid-chunk: the third record-extraction attempt panics
        // inside a 16-record dispatch chunk. Its chunk-mates must be
        // unaffected (per-record isolation survived batching) and the
        // retry policy heals the panicked record, so the faulted run
        // stays byte-identical to the unfaulted baseline.
        "engine::record=panic@3",
        // Sharded-run schedules: a 3-way sharded, compaction-enabled
        // extraction where one shard "dies" mid-run (the in-process
        // stand-in for kill -9 on a supervisor-managed subprocess) or
        // compaction itself hits ENOSPC. Resuming the dead shard and
        // merging must reproduce the unsharded baseline byte-for-byte,
        // and compaction must keep every healed journal O(interval).
        "shard::kill=return-err@5",
        "shard::kill=enospc@2",
        "journal::compact=enospc@1",
        "serve::read=return-err%0.3",
        "serve::write=return-err%0.3",
        "serve::accept=return-err@2",
        "serve::chunk=return-err%0.5",
    ]
}

/// Runs the sweep. Errors when the build has no fault-injection layer
/// or a schedule fails to parse; invariant *violations* are reported in
/// the result, not as an `Err`.
pub fn run_io_faults(cfg: &IoFaultConfig) -> Result<IoFaultReport, String> {
    if !cmr_failpoint::ENABLED {
        return Err("this build does not include the fault-injection layer; \
             rebuild with `--features failpoints` to run --io-faults"
            .to_string());
    }
    let schedules: Vec<String> = if cfg.spec == "standard" {
        standard_schedules().into_iter().map(String::from).collect()
    } else {
        vec![cfg.spec.clone()]
    };
    let dir = std::env::temp_dir().join(format!("cmr-io-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    let texts: Vec<String> = CorpusBuilder::new()
        .records(cfg.records.max(1))
        .seed(cfg.seed)
        .build()
        .records
        .into_iter()
        .map(|r| r.text)
        .collect();
    let engine_cfg = EngineConfig {
        jobs: cfg.jobs,
        ..EngineConfig::default()
    };
    // A config that poisons every record (zero sentence budget, single
    // attempt): the only way to exercise the quarantine write path
    // deterministically.
    let poison_cfg = EngineConfig {
        jobs: cfg.jobs,
        max_record_sentences: Some(0),
        ..EngineConfig::default()
    };
    // Engine-surface schedules (`engine::`/`pool::` failpoints) run with
    // retry enabled: an injected per-record panic classifies as transient
    // and the second attempt — with the one-shot trigger spent — heals it,
    // so the faulted run itself must already match the baseline.
    let retry_cfg = EngineConfig {
        jobs: cfg.jobs,
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay_millis: 0,
        },
        ..EngineConfig::default()
    };
    cmr_failpoint::clear();
    let baseline = unfaulted_baseline(&texts, &engine_cfg);
    let poison_baseline = unfaulted_baseline(&texts, &poison_cfg);
    let retry_baseline = unfaulted_baseline(&texts, &retry_cfg);

    let mut reports = Vec::with_capacity(schedules.len());
    for (idx, schedule) in schedules.iter().enumerate() {
        let mut reg = FailpointRegistry::parse(schedule)?;
        if !schedule.contains("seed=") {
            reg = FailpointRegistry::parse(&format!("{schedule};seed={}", cfg.seed))?;
        }
        let spec = reg.to_spec();
        let kind = classify(schedule);
        let report = match kind {
            "serve" => run_serve_schedule(&spec),
            "shard" => run_shard_schedule(&spec, schedule, &texts, &engine_cfg, &baseline, {
                &dir.join(format!("sched-{idx}"))
            }),
            "quarantine" => {
                run_journal_schedule(&spec, schedule, &texts, &poison_cfg, &poison_baseline, {
                    &dir.join(format!("sched-{idx}"))
                })
            }
            "engine" => {
                run_journal_schedule(&spec, schedule, &texts, &retry_cfg, &retry_baseline, {
                    &dir.join(format!("sched-{idx}"))
                })
            }
            _ => run_journal_schedule(&spec, schedule, &texts, &engine_cfg, &baseline, {
                &dir.join(format!("sched-{idx}"))
            }),
        };
        reports.push(report);
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(IoFaultReport {
        seed: cfg.seed,
        records: texts.len(),
        schedules: reports,
    })
}

fn classify(schedule: &str) -> &'static str {
    if schedule.contains("shard::") || schedule.contains("journal::compact") {
        // `journal::compact` only has a site in the compaction-enabled
        // sharded runner; the plain journaled phases never compact.
        "shard"
    } else if schedule.contains("serve::") {
        "serve"
    } else if schedule.contains("quarantine::") {
        "quarantine"
    } else if schedule.contains("engine::") || schedule.contains("pool::") {
        "engine"
    } else {
        "journal"
    }
}

/// Output lines of an unfaulted, unjournaled run — the identity target.
fn unfaulted_baseline(texts: &[String], cfg: &EngineConfig) -> Vec<String> {
    let engine = Engine::new(cfg.clone(), Schema::paper(), Ontology::full());
    let mut lines = Vec::with_capacity(texts.len());
    engine.extract_stream(texts.iter().cloned(), |_idx, result| {
        lines.push(serde_json::to_string(&result).unwrap_or_default());
    });
    lines
}

/// What one journaled phase produced.
struct JournalPhase {
    /// Lines emitted downstream (post-journal, in order).
    emitted: Vec<String>,
    /// A contained fault ended the run early (the message).
    abort: Option<String>,
}

/// Mirrors the CLI's journaled write-ahead loop: append, then emit; a
/// failed append raises the shutdown flag and suppresses both further
/// journaling and emission (nothing un-journaled escapes downstream).
fn run_journal_phase(
    texts: &[String],
    jpath: &Path,
    cfg: &EngineConfig,
    quarantine: Option<&Path>,
    resume: bool,
) -> JournalPhase {
    let manifest = RunManifest::for_run(cfg, texts);
    let mut emitted = Vec::new();
    // A journal with no complete line died before its manifest landed;
    // nothing was journaled or emitted, so resume restarts it fresh
    // (mirroring the CLI's crash-at-birth healing).
    let journal_born = jpath.exists()
        && std::fs::read(jpath)
            .map(|bytes| bytes.contains(&b'\n'))
            .unwrap_or(false);
    let (mut writer, start) = if resume && journal_born {
        let read = match read_journal(jpath) {
            Ok(r) => r,
            Err(e) => {
                return JournalPhase {
                    emitted,
                    abort: Some(format!("reading journal: {e}")),
                }
            }
        };
        if let Some(why) = read.manifest.mismatch(&manifest) {
            return JournalPhase {
                emitted,
                abort: Some(format!("manifest mismatch: {why}")),
            };
        }
        for entry in &read.entries {
            emitted.push(serde_json::to_string(&entry.output).unwrap_or_default());
        }
        let start = read.entries.len();
        match JournalWriter::append_to(jpath, read.valid_len) {
            Ok(w) => (w, start),
            Err(e) => {
                return JournalPhase {
                    emitted,
                    abort: Some(format!("reopening journal: {e}")),
                }
            }
        }
    } else {
        match JournalWriter::create(jpath, &manifest) {
            Ok(w) => (w, 0),
            Err(e) => {
                return JournalPhase {
                    emitted,
                    abort: Some(format!("creating journal: {e}")),
                }
            }
        }
    };

    let shutdown = Arc::new(AtomicBool::new(false));
    let mut engine = Engine::new(cfg.clone(), Schema::paper(), Ontology::full())
        .with_shutdown(Arc::clone(&shutdown));
    if let Some(qpath) = quarantine {
        if let Ok(q) = QuarantineFile::create(qpath) {
            engine = engine.with_quarantine(q);
        }
    }
    let mut abort: Option<String> = None;
    engine.extract_stream(texts.iter().skip(start).cloned(), |idx, result| {
        let entry = JournalEntry {
            index: start + idx,
            output: result,
        };
        if abort.is_none() {
            if let Err(e) = writer.append(&entry) {
                abort = Some(format!("journal append: {e}"));
                shutdown.store(true, Ordering::Relaxed);
            }
        }
        if abort.is_none() {
            emitted.push(serde_json::to_string(&entry.output).unwrap_or_default());
        }
    });
    JournalPhase { emitted, abort }
}

/// One journal/quarantine schedule: faulted phase (in a thread, so an
/// injected panic is contained), clear, resume, then the invariants.
fn run_journal_schedule(
    spec: &str,
    schedule: &str,
    texts: &[String],
    cfg: &EngineConfig,
    baseline: &[String],
    dir: &Path,
) -> ScheduleReport {
    let _ = std::fs::create_dir_all(dir);
    let mut violations = Vec::new();

    // Faulted phase, twice (the second run only to pin replay
    // determinism: same schedule + seed must fire identically). The
    // `journal::truncate` point only exists on the resume path, so those
    // schedules pre-build an unfaulted journal and fault its reopening.
    let fault_on_resume = schedule.contains("journal::truncate");
    let mut phases = Vec::new();
    let mut event_logs = Vec::new();
    for round in 0..2 {
        let jpath = dir.join(format!("round-{round}.journal"));
        let qpath = dir.join(format!("round-{round}.quarantine"));
        let quarantine = classify(schedule) == "quarantine";
        if fault_on_resume {
            let built = run_journal_phase(texts, &jpath, cfg, None, false);
            if let Some(e) = built.abort {
                violations.push(format!("pre-building the journal failed: {e}"));
                break;
            }
        }
        if let Err(e) = FailpointRegistry::parse(spec).and_then(FailpointRegistry::install) {
            violations.push(format!("installing schedule: {e}"));
            break;
        }
        let run = {
            let (texts, cfg, jpath, qpath) = (texts.to_vec(), cfg.clone(), jpath.clone(), qpath);
            std::thread::spawn(move || {
                run_journal_phase(
                    &texts,
                    &jpath,
                    &cfg,
                    quarantine.then_some(qpath.as_path()),
                    fault_on_resume,
                )
            })
            .join()
        };
        event_logs.push(cmr_failpoint::events());
        cmr_failpoint::clear();
        phases.push(match run {
            Ok(phase) => phase,
            Err(_) => JournalPhase {
                emitted: Vec::new(),
                abort: Some("panicked (contained)".to_string()),
            },
        });
    }
    let fires = event_logs.first().map_or(0, Vec::len);
    if event_logs.len() == 2 && event_logs[0] != event_logs[1] {
        violations.push(format!(
            "replay diverged: round 1 fired {:?}, round 2 fired {:?}",
            event_logs[0], event_logs[1]
        ));
    }
    let clean_abort = phases.first().is_some_and(|p| p.abort.is_some());

    // Recovery: resume round 0's journal with faults cleared. The final
    // output (replayed prefix + remainder) must be byte-identical to the
    // unfaulted baseline, whatever the fault did.
    if let Some(first) = phases.first() {
        let jpath = dir.join("round-0.journal");
        let quarantine = classify(schedule) == "quarantine";
        let qpath = dir.join("resume.quarantine");
        let resumed = run_journal_phase(
            texts,
            &jpath,
            cfg,
            quarantine.then_some(qpath.as_path()),
            jpath.exists(),
        );
        if let Some(e) = resumed.abort {
            violations.push(format!("resume after fault aborted: {e}"));
        } else {
            if resumed.emitted != baseline {
                violations.push(format!(
                    "resume output diverged from the unfaulted baseline \
                     ({} vs {} line(s))",
                    resumed.emitted.len(),
                    baseline.len()
                ));
            }
            // Exactly-once: the healed journal holds records 0..n with
            // no gaps or duplicates (read_journal rejects both), and the
            // faulted phase emitted only a prefix of the baseline —
            // nothing a consumer saw is outside the journal.
            match read_journal(&jpath) {
                Ok(read) => {
                    if read.entries.len() != texts.len() {
                        violations.push(format!(
                            "journal holds {} of {} record(s) after resume",
                            read.entries.len(),
                            texts.len()
                        ));
                    }
                }
                Err(e) => violations.push(format!("journal unreadable after resume: {e}")),
            }
            if first.emitted != baseline[..first.emitted.len().min(baseline.len())] {
                violations.push(
                    "faulted phase emitted lines that are not a prefix of the baseline".to_string(),
                );
            }
        }
    }
    ScheduleReport {
        schedule: spec.to_string(),
        kind: classify(schedule).to_string(),
        fires,
        clean_abort,
        violations,
    }
}

/// How many ways the shard schedules partition the corpus.
const SHARD_WAYS: usize = 3;
/// Compaction interval of the sharded phases: small enough that every
/// shard snapshots several times, so `journal::compact` faults have a
/// site to hit and the O(remainder) bound is actually exercised.
const SHARD_COMPACT_EVERY: usize = 4;

/// One shard phase: the in-process analogue of a single
/// `cmr extract --shard s/N --compact-every K` subprocess. Write-ahead
/// journal, durable output file (the compacted-away prefix lives only
/// there), periodic snapshot-and-truncate compaction. The synthetic
/// `shard::kill` failpoint is checked between records: a fire is "this
/// shard died here", leaving journal and output as a clean prefix for
/// the supervisor's restart to heal. Returns the abort message, if any.
fn run_shard_phase(
    texts: &[String],
    jpath: &Path,
    opath: &Path,
    cfg: &EngineConfig,
    resume: bool,
    compact_every: usize,
) -> Option<String> {
    use std::io::{BufReader, Seek, SeekFrom};

    let manifest = RunManifest::for_run(cfg, texts);
    let journal_born = jpath.exists()
        && std::fs::read(jpath)
            .map(|bytes| bytes.contains(&b'\n'))
            .unwrap_or(false);
    let (writer, start, mut fingerprint, out) = if resume && journal_born {
        let read = match read_journal(jpath) {
            Ok(r) => r,
            Err(e) => return Some(format!("reading journal: {e}")),
        };
        if let Some(why) = read.manifest.mismatch(&manifest) {
            return Some(format!("manifest mismatch: {why}"));
        }
        let (mut out, mut fingerprint) = if let Some(snap) = &read.snapshot {
            // The compacted-away prefix exists only in the output file:
            // prove it is exactly what the snapshot fingerprinted, drop
            // any un-journaled tail, and continue appending after it.
            let f = match std::fs::File::open(opath) {
                Ok(f) => f,
                Err(e) => return Some(format!("opening shard output: {e}")),
            };
            let (valid, fp) = match verify_output_prefix(&mut BufReader::new(f), snap) {
                Ok(v) => v,
                Err(e) => return Some(format!("verifying shard output: {e}")),
            };
            let mut f = match std::fs::OpenOptions::new().write(true).open(opath) {
                Ok(f) => f,
                Err(e) => return Some(format!("reopening shard output: {e}")),
            };
            if let Err(e) = f
                .set_len(valid)
                .and_then(|_| f.seek(SeekFrom::Start(valid)).map(|_| ()))
            {
                return Some(format!("truncating shard output: {e}"));
            }
            (f, fp)
        } else {
            // Uncompacted journal: rebuild the output from the replay.
            match std::fs::File::create(opath) {
                Ok(f) => (f, OutputFingerprint::new()),
                Err(e) => return Some(format!("recreating shard output: {e}")),
            }
        };
        for entry in &read.entries {
            let line = serde_json::to_string(&entry.output).unwrap_or_default();
            if let Err(e) = writeln!(out, "{line}") {
                return Some(format!("replaying shard output: {e}"));
            }
            fingerprint.add_line(&line);
        }
        let writer = match JournalWriter::append_to(jpath, read.valid_len) {
            Ok(w) => w,
            Err(e) => return Some(format!("reopening journal: {e}")),
        };
        (writer, read.completed(), fingerprint, out)
    } else {
        let writer = match JournalWriter::create(jpath, &manifest) {
            Ok(w) => w,
            Err(e) => return Some(format!("creating journal: {e}")),
        };
        let out = match std::fs::File::create(opath) {
            Ok(f) => f,
            Err(e) => return Some(format!("creating shard output: {e}")),
        };
        (writer, 0, OutputFingerprint::new(), out)
    };
    let mut writer = writer;
    let mut out = std::io::BufWriter::new(out);

    let shutdown = Arc::new(AtomicBool::new(false));
    let engine = Engine::new(cfg.clone(), Schema::paper(), Ontology::full())
        .with_shutdown(Arc::clone(&shutdown));
    let mut abort: Option<String> = None;
    engine.extract_stream(texts.iter().skip(start).cloned(), |idx, result| {
        if abort.is_some() {
            return;
        }
        if let Some(inj) = cmr_failpoint::io_inject("shard::kill") {
            abort = Some(format!("shard killed: {}", inj.into_io_error()));
            shutdown.store(true, Ordering::Relaxed);
            return;
        }
        let entry = JournalEntry {
            index: start + idx,
            output: result,
        };
        if let Err(e) = writer.append(&entry) {
            abort = Some(format!("journal append: {e}"));
            shutdown.store(true, Ordering::Relaxed);
            return;
        }
        let line = serde_json::to_string(&entry.output).unwrap_or_default();
        if let Err(e) = writeln!(out, "{line}") {
            abort = Some(format!("shard output write: {e}"));
            shutdown.store(true, Ordering::Relaxed);
            return;
        }
        fingerprint.add_line(&line);
        let done = start + idx + 1;
        if compact_every > 0 && done % compact_every == 0 {
            // The output must be durable before the entry lines vanish:
            // after compaction the journal proves only the snapshot,
            // whose fingerprint must describe bytes that survive a crash.
            if let Err(e) = out.flush() {
                abort = Some(format!("shard output flush: {e}"));
                shutdown.store(true, Ordering::Relaxed);
                return;
            }
            let snap = Snapshot {
                completed: done,
                output_fingerprint: fingerprint.as_hex(),
            };
            match JournalWriter::compact(jpath, &manifest, &snap) {
                Ok(w) => writer = w,
                Err(e) => {
                    abort = Some(format!("journal compact: {e}"));
                    shutdown.store(true, Ordering::Relaxed);
                }
            }
        }
    });
    if abort.is_none() {
        if let Err(e) = out.flush() {
            abort = Some(format!("shard output flush: {e}"));
        }
    }
    abort
}

/// One shard schedule: a 3-way sharded, compaction-enabled run where the
/// schedule kills a shard or faults compaction (faulted phase, twice, to
/// pin replay determinism), then — faults cleared — every shard is
/// resumed and the outputs merged. The invariants: merged output
/// byte-identical to the unsharded baseline, every healed journal
/// bounded by the compaction interval, every shard's journal accounting
/// for exactly its slice.
fn run_shard_schedule(
    spec: &str,
    _schedule: &str,
    texts: &[String],
    cfg: &EngineConfig,
    baseline: &[String],
    dir: &Path,
) -> ScheduleReport {
    let _ = std::fs::create_dir_all(dir);
    let mut violations = Vec::new();

    // The corpus slice each `--shard s/3` subprocess would own.
    let shard_texts: Vec<Vec<String>> = (0..SHARD_WAYS)
        .map(|s| {
            texts
                .iter()
                .enumerate()
                .filter(|(g, _)| shard_of(*g, SHARD_WAYS) == s)
                .map(|(_, t)| t.clone())
                .collect()
        })
        .collect();

    // Faulted phase, twice (round 2 only pins replay determinism). Each
    // round runs the three shards sequentially — one supervisor tick —
    // in a thread so an injected panic stays contained.
    let mut round0_aborts: Vec<Option<String>> = Vec::new();
    let mut event_logs = Vec::new();
    for round in 0..2 {
        if let Err(e) = FailpointRegistry::parse(spec).and_then(FailpointRegistry::install) {
            violations.push(format!("installing schedule: {e}"));
            break;
        }
        let mut aborts = Vec::new();
        for (s, slice) in shard_texts.iter().enumerate() {
            let run = {
                let texts = slice.clone();
                let cfg = cfg.clone();
                let jpath = dir.join(format!("round-{round}-shard-{s}.journal"));
                let opath = dir.join(format!("round-{round}-shard-{s}.out"));
                std::thread::spawn(move || {
                    run_shard_phase(&texts, &jpath, &opath, &cfg, false, SHARD_COMPACT_EVERY)
                })
                .join()
            };
            aborts.push(match run {
                Ok(abort) => abort,
                Err(_) => Some("panicked (contained)".to_string()),
            });
        }
        event_logs.push(cmr_failpoint::events());
        cmr_failpoint::clear();
        if round == 0 {
            round0_aborts = aborts;
        }
    }
    let fires = event_logs.first().map_or(0, Vec::len);
    if event_logs.len() == 2 && event_logs[0] != event_logs[1] {
        violations.push(format!(
            "replay diverged: round 1 fired {:?}, round 2 fired {:?}",
            event_logs[0], event_logs[1]
        ));
    }
    let clean_abort = round0_aborts.iter().any(Option::is_some);

    // Recovery: resume every round-0 shard with faults cleared (the
    // supervisor restarting whatever died), then merge and compare.
    for (s, slice) in shard_texts.iter().enumerate() {
        let jpath = dir.join(format!("round-0-shard-{s}.journal"));
        let opath = dir.join(format!("round-0-shard-{s}.out"));
        let resume = jpath.exists();
        if let Some(e) = run_shard_phase(slice, &jpath, &opath, cfg, resume, SHARD_COMPACT_EVERY) {
            violations.push(format!("shard {s} resume after fault aborted: {e}"));
        }
    }

    for (s, slice) in shard_texts.iter().enumerate() {
        let jpath = dir.join(format!("round-0-shard-{s}.journal"));
        // O(remainder) resume: compaction bounds the healed journal to
        // manifest + snapshot plus less than one interval of entries.
        let lines = std::fs::read_to_string(&jpath)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines > SHARD_COMPACT_EVERY + 1 {
            violations.push(format!(
                "shard {s} journal holds {lines} line(s) after resume; compaction \
                 every {SHARD_COMPACT_EVERY} records should bound it to {}",
                SHARD_COMPACT_EVERY + 1
            ));
        }
        // Exactly-once: the healed journal accounts for the full slice.
        match read_journal(&jpath) {
            Ok(read) => {
                if read.completed() != slice.len() {
                    violations.push(format!(
                        "shard {s} journal accounts for {} of {} record(s) after resume",
                        read.completed(),
                        slice.len()
                    ));
                }
            }
            Err(e) => violations.push(format!("shard {s} journal unreadable after resume: {e}")),
        }
    }

    // Merge identity, through the real merge path.
    let contents: Vec<String> = (0..SHARD_WAYS)
        .map(|s| {
            std::fs::read_to_string(dir.join(format!("round-0-shard-{s}.out"))).unwrap_or_default()
        })
        .collect();
    let mut readers: Vec<std::io::Cursor<&[u8]>> = contents
        .iter()
        .map(|c| std::io::Cursor::new(c.as_bytes()))
        .collect();
    let mut merged = Vec::new();
    if let Err(e) = merge_outputs(&mut readers, &mut merged) {
        violations.push(format!("merging shard outputs: {e}"));
    }
    let want: String = baseline.iter().map(|l| format!("{l}\n")).collect();
    if merged != want.as_bytes() {
        violations.push(format!(
            "merged shard output diverged from the unsharded baseline \
             ({} vs {} byte(s))",
            merged.len(),
            want.len()
        ));
    }

    ScheduleReport {
        schedule: spec.to_string(),
        kind: "shard".to_string(),
        fires,
        clean_abort,
        violations,
    }
}

/// One serve schedule: a request burst against an in-process server
/// under socket faults, then a liveness probe with the schedule cleared.
fn run_serve_schedule(spec: &str) -> ScheduleReport {
    let mut violations = Vec::new();
    if let Err(e) = FailpointRegistry::parse(spec).and_then(FailpointRegistry::install) {
        violations.push(format!("installing schedule: {e}"));
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = match Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 1,
            queue_depth: 16,
            ..ServeConfig::default()
        },
        Arc::clone(&shutdown),
    ) {
        Ok(s) => s,
        Err(e) => {
            cmr_failpoint::clear();
            violations.push(format!("binding server: {e}"));
            return ScheduleReport {
                schedule: spec.to_string(),
                kind: "serve".to_string(),
                fires: 0,
                clean_abort: false,
                violations,
            };
        }
    };
    let addr = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_default();
    let handle = std::thread::spawn(move || server.run());

    // The burst: single notes and NDJSON batches (the latter exercise
    // the chunked writer). Every request must resolve — a response or a
    // transport error within the timeout — never a hang.
    let note = "Vitals:  Blood pressure is 144/90, pulse of 84.\n";
    let batch = format!("{:?}\n{:?}\n", note, "Pulse is 72. Temperature is 37.2.");
    let mut answered = 0usize;
    let mut refused = 0usize;
    for i in 0..20 {
        let (path, body) = if i % 3 == 0 {
            ("/extract/batch", batch.as_str())
        } else {
            ("/extract", note)
        };
        match burst_request(&addr, path, body) {
            Some(status) if (200..500).contains(&status) => answered += 1,
            Some(status) => violations.push(format!("request {i}: server error {status}")),
            None => refused += 1,
        }
    }
    let fires = cmr_failpoint::events().len();
    cmr_failpoint::clear();

    // Liveness: with the schedule cleared the same server must answer.
    match burst_request(&addr, "/extract", note) {
        Some(200) => {}
        outcome => violations.push(format!(
            "liveness probe after clearing faults got {outcome:?}, want 200"
        )),
    }
    shutdown.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(&addr); // nudge a blocked accept pass
    if handle.join().is_err() {
        violations.push("server thread panicked".to_string());
    }
    if answered == 0 && refused > 0 && fires == 0 {
        violations.push("no request was answered yet no failpoint fired".to_string());
    }
    ScheduleReport {
        schedule: spec.to_string(),
        kind: "serve".to_string(),
        fires,
        clean_abort: false,
        violations,
    }
}

/// One bounded-time request; `Some(status)` when a well-formed response
/// came back, `None` on connect/read/write failure (an acceptable
/// outcome *under faults* — the invariant is resolution, not success).
fn burst_request(addr: &str, path: &str, body: &str) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).ok()?;
    let mut response = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = std::str::from_utf8(&response).ok()?;
    head.strip_prefix("HTTP/1.1 ")?
        .split(' ')
        .next()?
        .parse()
        .ok()
}
