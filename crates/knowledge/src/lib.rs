//! # cmr-knowledge — from information to knowledge
//!
//! The paper's title promises *information and knowledge*; its introduction
//! motivates the system with large-scale chart review: "the ability to then
//! detect small variations, which may pinpoint important factors previously
//! overlooked." This crate is that final step — extracted records become a
//! typed [`Cohort`] table over which prevalences, cross-tabulations,
//! chi-square association checks and single-antecedent association rules
//! ([`mine_rules`]) are computed.
//!
//! ```
//! use cmr_knowledge::{Cohort, mine_rules, RuleParams};
//!
//! let pipeline = cmr_core::Pipeline::with_default_schema();
//! let out = pipeline.extract("Past Medical History:  Significant for diabetes.\n");
//! let mut cohort = Cohort::new();
//! cohort.push_extracted(&out, &[("smoking", "never")]);
//! assert_eq!(cohort.prevalence("has:diabetes", "yes"), 1.0);
//! let _ = mine_rules(&cohort, RuleParams::default());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod cohort;
mod rules;
mod stats;

pub use cohort::{Cohort, Value};
pub use rules::{mine_rules, Rule, RuleParams};
pub use stats::{association, chi_square_2x2, group_summary, CHI2_CRIT_95};
