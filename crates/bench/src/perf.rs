//! The `cmr bench` performance harness: a machine-readable throughput
//! snapshot of the whole pipeline, suitable for regression gating in CI.
//!
//! The harness runs the gold corpus plus a deterministically generated
//! corpus through (a) a single serial [`Pipeline`] and (b) the parallel
//! engine, and reports notes/sec, ns per extracted field, parse-cache hit
//! rates, allocation counts (when the caller supplies a counting-allocator
//! probe — see `src/bin/cmr.rs`) and peak RSS. Reports serialize to JSON
//! (`BENCH_pr3.json`); [`check_regression`] compares two reports and is the
//! CI perf-smoke gate.

use cmr_core::{Pipeline, Schema};
use cmr_corpus::CorpusBuilder;
use cmr_engine::{Engine, EngineConfig};
use cmr_ontology::Ontology;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// What to run. Small by default so the CI smoke job stays fast; the
/// committed `BENCH_pr3.json` uses larger settings (see EXPERIMENTS.md §B3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Generated-corpus size (the 50-record gold corpus is always included).
    pub records: usize,
    /// Generator seed (fixed ⇒ identical workload across runs).
    pub seed: u64,
    /// Timed repeats; the best repeat is reported (min-noise convention).
    pub repeats: usize,
    /// Worker threads for the parallel leg.
    pub jobs: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            records: 150,
            seed: 2005,
            repeats: 3,
            jobs: 4,
        }
    }
}

/// One timed leg (serial pipeline or parallel engine).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Notes processed per repeat.
    pub notes: u64,
    /// Fields extracted across all notes (numeric + term hits).
    pub fields: u64,
    /// Wall time of the best repeat, nanoseconds.
    pub wall_nanos: u64,
    /// Notes per second (best repeat).
    pub notes_per_sec: f64,
    /// Nanoseconds per extracted field (best repeat).
    pub ns_per_field: f64,
    /// Link-parser structure-cache hits (best repeat).
    pub cache_hits: u64,
    /// Link-parser structure-cache misses (best repeat).
    pub cache_misses: u64,
    /// Cache hit rate in `0.0..=1.0` (0 when no lookups).
    pub cache_hit_rate: f64,
    /// Hits served by the pool-wide shared cache, a subset of
    /// `cache_hits` (`None` for the serial pipeline, which has no shared
    /// cache, and for reports written before PR 8). `cache_hits -
    /// shared_cache_hits` is the contention-free per-worker L1 path; this
    /// split is what distinguishes the serial and parallel legs — their
    /// *totals* are identical by determinism.
    pub shared_cache_hits: Option<u64>,
    /// Shard-lock contention events on the shared parse cache (a
    /// `try_lock` that would have blocked). Parallel legs only.
    pub shard_contention: Option<u64>,
    /// Nanoseconds workers spent blocked receiving work from the dispatch
    /// channel, summed across workers. Parallel legs only.
    pub channel_wait_nanos: Option<u64>,
    /// High-water mark of the output reorder ring (records parked waiting
    /// for an earlier sequence number). Parallel legs only.
    pub reorder_high_water: Option<u64>,
}

impl RunStats {
    fn finish(&mut self) {
        if self.wall_nanos > 0 {
            self.notes_per_sec = self.notes as f64 / (self.wall_nanos as f64 / 1e9);
        }
        if self.fields > 0 {
            self.ns_per_field = self.wall_nanos as f64 / self.fields as f64;
        }
        let lookups = self.cache_hits + self.cache_misses;
        if lookups > 0 {
            self.cache_hit_rate = self.cache_hits as f64 / lookups as f64;
        }
    }
}

/// Allocation counts for one serial pass, measured by the caller-supplied
/// probe (the `cmr` binary installs a counting global allocator; library
/// crates stay `forbid(unsafe_code)`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AllocStats {
    /// Heap allocations per note (counting pass, warm caches).
    pub allocs_per_note: f64,
    /// Heap bytes allocated per note (counting pass, warm caches).
    pub bytes_per_note: f64,
}

/// The full report written to `BENCH_pr3.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report format version (bump on breaking shape changes).
    pub version: u32,
    /// The configuration that produced this report.
    pub config: BenchConfig,
    /// Serial single-threaded pipeline over gold + generated corpora.
    pub serial: RunStats,
    /// Parallel engine at `config.jobs` workers over the same texts.
    pub parallel: RunStats,
    /// Parallel engine with a write-ahead journal enabled (PR 5): same
    /// workload as `parallel`, plus one journal line per record. Absent in
    /// reports from before the durability subsystem existed.
    pub journaled: Option<RunStats>,
    /// Journaled leg with auto-compaction enabled (PR 10): the journal is
    /// snapshotted and truncated every [`COMPACT_EVERY`] records, so this
    /// leg measures what corpus-scale runs pay for O(remainder) resume.
    /// Absent in reports from before journal compaction existed.
    pub journaled_compacting: Option<RunStats>,
    /// Allocation counts (absent when no counting allocator is installed).
    pub allocations: Option<AllocStats>,
    /// Peak resident set size in bytes (`VmHWM`; absent off-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Optional pre-change baseline summary carried inside the committed
    /// report, so the before/after pair lives in one file.
    pub baseline: Option<BaselineSummary>,
    /// Optional `--scaling` sweep over worker counts (PR 8). Absent in
    /// older reports and in runs that did not request a sweep.
    pub scaling: Option<ScalingReport>,
}

/// One `jobs=N` point of a scaling sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Worker-thread count for this point.
    pub jobs: usize,
    /// Notes per second (best repeat).
    pub notes_per_sec: f64,
    /// Throughput relative to this sweep's own `jobs=1` point.
    pub speedup_vs_jobs1: f64,
    /// Parse-cache hits served by per-worker L1 caches (no lock taken).
    pub l1_cache_hits: u64,
    /// Parse-cache hits served by the sharded pool-wide cache.
    pub shared_cache_hits: u64,
    /// Parse-cache misses (cold parses).
    pub cache_misses: u64,
    /// Shard-lock contention events on the shared cache.
    pub shard_contention: u64,
    /// Nanoseconds workers spent blocked on the dispatch channel.
    pub channel_wait_nanos: u64,
    /// Reorder ring high-water mark.
    pub reorder_high_water: u64,
}

/// A `jobs=1..N` throughput sweep through the parallel engine, with the
/// serial pipeline as the reference. `cpus` records what the machine
/// actually had — speedup claims beyond that number are scheduler noise,
/// and the CI gate skips itself below 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingReport {
    /// CPUs available to this process when the sweep ran.
    pub cpus: usize,
    /// Serial single-threaded pipeline notes/sec over the same workload.
    pub serial_notes_per_sec: f64,
    /// One point per worker count, `jobs = 1..=N` in order.
    pub points: Vec<ScalingPoint>,
}

/// The headline numbers of a baseline run, embedded in the current report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineSummary {
    /// What the baseline was (e.g. a commit id or "pre-PR3 seed").
    pub label: String,
    /// Baseline serial notes/sec.
    pub serial_notes_per_sec: f64,
    /// Baseline parallel notes/sec.
    pub parallel_notes_per_sec: f64,
    /// Baseline allocations per note, when measured.
    pub allocs_per_note: Option<f64>,
}

/// The benchmark workload: gold corpus + deterministically generated
/// records, as raw note texts.
pub fn workload(cfg: &BenchConfig) -> Vec<String> {
    let mut texts: Vec<String> = CorpusBuilder::new()
        .build()
        .records
        .iter()
        .map(|r| r.text.clone())
        .collect();
    let generated = CorpusBuilder::new()
        .records(cfg.records)
        .seed(cfg.seed)
        .style_variation(1.0)
        .build();
    texts.extend(generated.records.iter().map(|r| r.text.clone()));
    texts
}

fn fields_of(out: &cmr_core::ExtractedRecord) -> u64 {
    (out.numeric.len()
        + out.predefined_medical.len()
        + out.other_medical.len()
        + out.predefined_surgical.len()
        + out.other_surgical.len()) as u64
}

/// Runs the serial leg: one fresh [`Pipeline`] per repeat, best repeat
/// reported. When `probe` is given (returns cumulative `(allocs, bytes)`),
/// a final warm pass measures allocations per note.
pub fn run_serial(
    cfg: &BenchConfig,
    texts: &[String],
    probe: Option<&dyn Fn() -> (u64, u64)>,
) -> (RunStats, Option<AllocStats>) {
    let mut best = RunStats::default();
    for _ in 0..cfg.repeats.max(1) {
        let pipeline = Pipeline::with_default_schema();
        let mut fields = 0u64;
        let start = Instant::now();
        for text in texts {
            fields += fields_of(&pipeline.extract(text));
        }
        let wall = start.elapsed().as_nanos() as u64;
        if best.wall_nanos == 0 || wall < best.wall_nanos {
            let stats = pipeline.parser_stats();
            best = RunStats {
                notes: texts.len() as u64,
                fields,
                wall_nanos: wall,
                cache_hits: stats.cache_hits,
                cache_misses: stats.cache_misses,
                ..RunStats::default()
            };
        }
    }
    best.finish();

    let allocations = probe.map(|probe| {
        // Warm pass on a dedicated pipeline so caches and the interner are
        // hot, then count one more full pass.
        let pipeline = Pipeline::with_default_schema();
        for text in texts {
            std::hint::black_box(pipeline.extract(text));
        }
        let (a0, b0) = probe();
        for text in texts {
            std::hint::black_box(pipeline.extract(text));
        }
        let (a1, b1) = probe();
        let notes = texts.len().max(1) as f64;
        AllocStats {
            allocs_per_note: a1.saturating_sub(a0) as f64 / notes,
            bytes_per_note: b1.saturating_sub(b0) as f64 / notes,
        }
    });
    (best, allocations)
}

/// Runs the parallel leg through the batch engine at `cfg.jobs` workers.
pub fn run_parallel(cfg: &BenchConfig, texts: &[String]) -> RunStats {
    let mut best = RunStats::default();
    for _ in 0..cfg.repeats.max(1) {
        let engine = Engine::new(
            EngineConfig {
                jobs: cfg.jobs.max(1),
                ..EngineConfig::default()
            },
            Schema::paper(),
            Ontology::full(),
        );
        let mut fields = 0u64;
        let start = Instant::now();
        let metrics = engine.extract_stream(texts.iter().cloned(), |_, out| {
            if let Ok(rec) = out {
                fields += fields_of(&rec);
            }
        });
        let wall = start.elapsed().as_nanos() as u64;
        if best.wall_nanos == 0 || wall < best.wall_nanos {
            best = RunStats {
                notes: metrics.records,
                fields,
                wall_nanos: wall,
                cache_hits: metrics.parse_cache.hits,
                cache_misses: metrics.parse_cache.misses,
                shared_cache_hits: Some(metrics.parse_cache.shared_hits),
                shard_contention: Some(metrics.cache_shard_contention),
                channel_wait_nanos: Some(metrics.channel_wait_nanos),
                reorder_high_water: Some(metrics.reorder_buffer_high_water),
                ..RunStats::default()
            };
        }
    }
    best.finish();
    best
}

/// Runs the parallel leg again with the write-ahead journal enabled,
/// measuring durability overhead: every record outcome is serialized and
/// appended (one `write_all` per line) to a scratch journal that is
/// deleted afterwards.
pub fn run_journaled(cfg: &BenchConfig, texts: &[String]) -> RunStats {
    use cmr_engine::{JournalEntry, JournalWriter, RunManifest};

    let path = std::env::temp_dir().join(format!(
        "cmr-bench-journal-{}-{}.ndjson",
        std::process::id(),
        cfg.seed
    ));
    let mut best = RunStats::default();
    for _ in 0..cfg.repeats.max(1) {
        let engine_cfg = EngineConfig {
            jobs: cfg.jobs.max(1),
            ..EngineConfig::default()
        };
        let engine = Engine::new(engine_cfg.clone(), Schema::paper(), Ontology::full());
        let manifest = RunManifest::for_run(&engine_cfg, texts);
        let mut fields = 0u64;
        let start = Instant::now();
        let mut writer = JournalWriter::create(&path, &manifest).expect("scratch journal");
        let metrics = engine.extract_stream(texts.iter().cloned(), |index, output| {
            let entry = JournalEntry { index, output };
            writer.append(&entry).expect("journal append");
            if let Ok(rec) = &entry.output {
                fields += fields_of(rec);
            }
        });
        let wall = start.elapsed().as_nanos() as u64;
        if best.wall_nanos == 0 || wall < best.wall_nanos {
            best = RunStats {
                notes: metrics.records,
                fields,
                wall_nanos: wall,
                cache_hits: metrics.parse_cache.hits,
                cache_misses: metrics.parse_cache.misses,
                shared_cache_hits: Some(metrics.parse_cache.shared_hits),
                shard_contention: Some(metrics.cache_shard_contention),
                channel_wait_nanos: Some(metrics.channel_wait_nanos),
                reorder_high_water: Some(metrics.reorder_buffer_high_water),
                ..RunStats::default()
            };
        }
    }
    let _ = std::fs::remove_file(&path);
    best.finish();
    best
}

/// Compaction interval of the `journaled_compacting` bench leg. Small
/// relative to the bench workload so every repeat performs several
/// snapshot-truncate cycles — the leg would measure nothing otherwise.
pub const COMPACT_EVERY: usize = 64;

/// Runs the journaled leg again with auto-compaction: every
/// [`COMPACT_EVERY`] records the journal is collapsed to a snapshot line
/// (completed count + rolling output fingerprint) and truncated, exactly
/// as `cmr extract --compact-every` does. The delta against the plain
/// journaled leg is the price of O(remainder) resume.
pub fn run_journaled_compacting(cfg: &BenchConfig, texts: &[String]) -> RunStats {
    use cmr_engine::{JournalEntry, JournalWriter, OutputFingerprint, RunManifest, Snapshot};

    let path = std::env::temp_dir().join(format!(
        "cmr-bench-journal-compact-{}-{}.ndjson",
        std::process::id(),
        cfg.seed
    ));
    let mut best = RunStats::default();
    for _ in 0..cfg.repeats.max(1) {
        let engine_cfg = EngineConfig {
            jobs: cfg.jobs.max(1),
            ..EngineConfig::default()
        };
        let engine = Engine::new(engine_cfg.clone(), Schema::paper(), Ontology::full());
        let manifest = RunManifest::for_run(&engine_cfg, texts);
        let mut fields = 0u64;
        let start = Instant::now();
        let mut writer = JournalWriter::create(&path, &manifest).expect("scratch journal");
        let mut fingerprint = OutputFingerprint::new();
        let mut done = 0usize;
        let metrics = engine.extract_stream(texts.iter().cloned(), |index, output| {
            let entry = JournalEntry { index, output };
            writer.append(&entry).expect("journal append");
            fingerprint.add_line(&serde_json::to_string(&entry.output).unwrap_or_default());
            if let Ok(rec) = &entry.output {
                fields += fields_of(rec);
            }
            done += 1;
            if done.is_multiple_of(COMPACT_EVERY) {
                let snapshot = Snapshot {
                    completed: done,
                    output_fingerprint: fingerprint.as_hex(),
                };
                writer =
                    JournalWriter::compact(&path, &manifest, &snapshot).expect("journal compact");
            }
        });
        let wall = start.elapsed().as_nanos() as u64;
        if best.wall_nanos == 0 || wall < best.wall_nanos {
            best = RunStats {
                notes: metrics.records,
                fields,
                wall_nanos: wall,
                cache_hits: metrics.parse_cache.hits,
                cache_misses: metrics.parse_cache.misses,
                shared_cache_hits: Some(metrics.parse_cache.shared_hits),
                shard_contention: Some(metrics.cache_shard_contention),
                channel_wait_nanos: Some(metrics.channel_wait_nanos),
                reorder_high_water: Some(metrics.reorder_buffer_high_water),
                ..RunStats::default()
            };
        }
    }
    let _ = std::fs::remove_file(&path);
    best.finish();
    best
}

/// Runs both legs and assembles a report.
pub fn run_bench(cfg: &BenchConfig, probe: Option<&dyn Fn() -> (u64, u64)>) -> BenchReport {
    let texts = workload(cfg);
    let (serial, allocations) = run_serial(cfg, &texts, probe);
    let parallel = run_parallel(cfg, &texts);
    let journaled = run_journaled(cfg, &texts);
    let journaled_compacting = run_journaled_compacting(cfg, &texts);
    BenchReport {
        version: 1,
        config: cfg.clone(),
        serial,
        parallel,
        journaled: Some(journaled),
        journaled_compacting: Some(journaled_compacting),
        allocations,
        peak_rss_bytes: peak_rss_bytes(),
        baseline: None,
        scaling: None,
    }
}

/// Runs the `jobs=1..=max_jobs` scaling sweep: each point is a full
/// best-of-`repeats` parallel run over `texts` with its own engine (and
/// therefore its own shared cache — no state leaks between points), plus
/// one serial reference pass.
pub fn run_scaling(cfg: &BenchConfig, texts: &[String], max_jobs: usize) -> ScalingReport {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (serial, _) = run_serial(cfg, texts, None);
    let mut points = Vec::new();
    let mut jobs1_nps = 0.0f64;
    for jobs in 1..=max_jobs.max(1) {
        let leg = run_parallel(
            &BenchConfig {
                jobs,
                ..cfg.clone()
            },
            texts,
        );
        if jobs == 1 {
            jobs1_nps = leg.notes_per_sec;
        }
        let shared_hits = leg.shared_cache_hits.unwrap_or(0);
        points.push(ScalingPoint {
            jobs,
            notes_per_sec: leg.notes_per_sec,
            speedup_vs_jobs1: if jobs1_nps > 0.0 {
                leg.notes_per_sec / jobs1_nps
            } else {
                0.0
            },
            l1_cache_hits: leg.cache_hits.saturating_sub(shared_hits),
            shared_cache_hits: shared_hits,
            cache_misses: leg.cache_misses,
            shard_contention: leg.shard_contention.unwrap_or(0),
            channel_wait_nanos: leg.channel_wait_nanos.unwrap_or(0),
            reorder_high_water: leg.reorder_high_water.unwrap_or(0),
        });
    }
    ScalingReport {
        cpus,
        serial_notes_per_sec: serial.notes_per_sec,
        points,
    }
}

/// The scaling gate: at `jobs=2` the parallel engine must reach at least
/// `floor` (fraction, CI uses 0.95) of serial throughput — parallelism may
/// not *cost* throughput. On machines with fewer than 2 CPUs the
/// comparison is meaningless (two workers time-slice one core), so the
/// gate skips itself and says so in the returned notice.
pub fn check_scaling(scaling: &ScalingReport, floor: f64) -> Result<String, String> {
    if scaling.cpus < 2 {
        return Ok(format!(
            "SKIPPED: only {} CPU available — the jobs=2 vs serial gate needs >=2 \
             (sweep recorded for the report, gate not applied)",
            scaling.cpus
        ));
    }
    if scaling.serial_notes_per_sec <= 0.0 {
        return Err("serial reference has no throughput to compare against".to_string());
    }
    let Some(p2) = scaling.points.iter().find(|p| p.jobs == 2) else {
        return Err("scaling sweep has no jobs=2 point".to_string());
    };
    let need = scaling.serial_notes_per_sec * floor;
    if p2.notes_per_sec < need {
        return Err(format!(
            "jobs=2 parallel {:.1} notes/sec is below {:.0}% of serial {:.1} (floor {need:.1})",
            p2.notes_per_sec,
            floor * 100.0,
            scaling.serial_notes_per_sec
        ));
    }
    Ok(format!(
        "jobs=2 parallel {:.1} notes/sec >= {:.0}% of serial {:.1} ({} CPUs)",
        p2.notes_per_sec,
        floor * 100.0,
        scaling.serial_notes_per_sec,
        scaling.cpus
    ))
}

/// Peak resident set size from `/proc/self/status` (`VmHWM`), in bytes.
/// Returns `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

/// The CI gate: fails when the current report's throughput drops more than
/// `threshold` (fraction, e.g. `0.25`) below the baseline report on either
/// leg. Faster-than-baseline is always fine.
pub fn check_regression(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold: f64,
) -> Result<(), String> {
    let legs = [
        (
            "serial",
            current.serial.notes_per_sec,
            baseline.serial.notes_per_sec,
        ),
        (
            "parallel",
            current.parallel.notes_per_sec,
            baseline.parallel.notes_per_sec,
        ),
    ];
    let mut failures = Vec::new();
    for (name, now, then) in legs {
        if then <= 0.0 {
            continue;
        }
        let floor = then * (1.0 - threshold);
        if now < floor {
            failures.push(format!(
                "{name}: {now:.1} notes/sec is below the regression floor {floor:.1} \
                 (baseline {then:.1}, threshold {:.0}%)",
                threshold * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// The durability gate: journaling is bookkeeping, not work, so the
/// journaled leg must stay within `threshold` (fraction, default 0.10 in
/// CI) of the plain parallel leg *of the same report* — same machine,
/// same run, no cross-environment noise.
pub fn check_journal_overhead(report: &BenchReport, threshold: f64) -> Result<(), String> {
    let Some(journaled) = &report.journaled else {
        return Err("report has no journaled leg".to_string());
    };
    if report.parallel.notes_per_sec <= 0.0 {
        return Err("parallel leg has no throughput to compare against".to_string());
    }
    let floor = report.parallel.notes_per_sec * (1.0 - threshold);
    if journaled.notes_per_sec < floor {
        return Err(format!(
            "journal overhead too high: {:.1} notes/sec journaled vs {:.1} plain \
             (floor {floor:.1} at {:.0}% allowance)",
            journaled.notes_per_sec,
            report.parallel.notes_per_sec,
            threshold * 100.0
        ));
    }
    Ok(())
}

/// The compaction gate: snapshot-and-truncate every [`COMPACT_EVERY`]
/// records is metadata work, so the compacting leg must stay within
/// `threshold` (fraction, 0.10 in CI) of the plain *journaled* leg of the
/// same report — compaction is priced against journaling, which is itself
/// priced against the raw parallel leg by [`check_journal_overhead`].
pub fn check_compaction_overhead(report: &BenchReport, threshold: f64) -> Result<(), String> {
    let Some(compacting) = &report.journaled_compacting else {
        return Err("report has no journaled_compacting leg".to_string());
    };
    let Some(journaled) = &report.journaled else {
        return Err("report has no journaled leg to compare against".to_string());
    };
    if journaled.notes_per_sec <= 0.0 {
        return Err("journaled leg has no throughput to compare against".to_string());
    }
    let floor = journaled.notes_per_sec * (1.0 - threshold);
    if compacting.notes_per_sec < floor {
        return Err(format!(
            "compaction overhead too high: {:.1} notes/sec compacting vs {:.1} journaled \
             (floor {floor:.1} at {:.0}% allowance)",
            compacting.notes_per_sec,
            journaled.notes_per_sec,
            threshold * 100.0
        ));
    }
    Ok(())
}

/// A tiny smoke workload for tests: a handful of records, one repeat.
pub fn smoke_config() -> BenchConfig {
    BenchConfig {
        records: 4,
        seed: 7,
        repeats: 1,
        jobs: 2,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_sane_numbers() {
        let report = run_bench(&smoke_config(), None);
        assert!(report.serial.notes > 0);
        assert!(report.serial.notes_per_sec > 0.0);
        assert!(report.serial.fields > 0);
        assert_eq!(report.serial.notes, report.parallel.notes);
        assert!(report.parallel.notes_per_sec > 0.0);
        assert!(report.allocations.is_none());
        assert!((0.0..=1.0).contains(&report.serial.cache_hit_rate));
        let journaled = report.journaled.as_ref().expect("journaled leg present");
        assert_eq!(journaled.notes, report.parallel.notes);
        assert!(journaled.notes_per_sec > 0.0);
        let compacting = report
            .journaled_compacting
            .as_ref()
            .expect("compacting leg present");
        assert_eq!(compacting.notes, report.parallel.notes);
        assert!(compacting.notes_per_sec > 0.0);
    }

    #[test]
    fn journal_overhead_gate_trips_and_passes() {
        let mut report = run_bench(&smoke_config(), None);
        report.parallel.notes_per_sec = 100.0;
        if let Some(j) = report.journaled.as_mut() {
            j.notes_per_sec = 95.0; // -5%: inside the 10% allowance
        }
        assert!(check_journal_overhead(&report, 0.10).is_ok());
        if let Some(j) = report.journaled.as_mut() {
            j.notes_per_sec = 80.0; // -20%: trips
        }
        let err = check_journal_overhead(&report, 0.10).unwrap_err();
        assert!(err.contains("journal overhead"), "{err}");
        report.journaled = None;
        assert!(check_journal_overhead(&report, 0.10).is_err());
    }

    #[test]
    fn compaction_overhead_gate_trips_and_passes() {
        let mut report = run_bench(&smoke_config(), None);
        if let Some(j) = report.journaled.as_mut() {
            j.notes_per_sec = 100.0;
        }
        if let Some(c) = report.journaled_compacting.as_mut() {
            c.notes_per_sec = 95.0; // -5%: inside the 10% allowance
        }
        assert!(check_compaction_overhead(&report, 0.10).is_ok());
        if let Some(c) = report.journaled_compacting.as_mut() {
            c.notes_per_sec = 80.0; // -20%: trips
        }
        let err = check_compaction_overhead(&report, 0.10).unwrap_err();
        assert!(err.contains("compaction overhead"), "{err}");
        report.journaled_compacting = None;
        assert!(check_compaction_overhead(&report, 0.10).is_err());
    }

    #[test]
    fn older_reports_without_compacting_leg_still_parse() {
        // BENCH_pr5.json predates the compacting leg; the field must be
        // optional so old reports stay loadable as regression baselines.
        let mut report = run_bench(&smoke_config(), None);
        report.journaled_compacting = None;
        let json = serde_json::to_string(&report).unwrap();
        let stripped = json.replace("\"journaled_compacting\":null,", "");
        assert_ne!(stripped, json, "field not serialized where expected");
        let parsed: BenchReport = serde_json::from_str(&stripped).unwrap();
        assert!(parsed.journaled_compacting.is_none());
    }

    #[test]
    fn regression_gate_trips_and_passes() {
        let mut base = run_bench(&smoke_config(), None);
        base.serial.notes_per_sec = 100.0;
        base.parallel.notes_per_sec = 300.0;
        let mut current = base.clone();
        current.serial.notes_per_sec = 90.0; // -10%: fine at 25%
        assert!(check_regression(&current, &base, 0.25).is_ok());
        current.serial.notes_per_sec = 60.0; // -40%: trips
        let err = check_regression(&current, &base, 0.25).unwrap_err();
        assert!(err.contains("serial"), "{err}");
        // Faster than baseline never trips.
        current.serial.notes_per_sec = 500.0;
        current.parallel.notes_per_sec = 500.0;
        assert!(check_regression(&current, &base, 0.25).is_ok());
    }

    #[test]
    fn parallel_leg_reports_engine_counters() {
        let report = run_bench(&smoke_config(), None);
        // The serial pipeline has no shared cache or pool, so its new
        // counters stay None; the parallel leg must populate all four.
        assert!(report.serial.shared_cache_hits.is_none());
        assert!(report.serial.channel_wait_nanos.is_none());
        let shared = report.parallel.shared_cache_hits.expect("shared hits");
        assert!(
            shared <= report.parallel.cache_hits,
            "shared hits {shared} must be a subset of total hits {}",
            report.parallel.cache_hits
        );
        assert!(report.parallel.shard_contention.is_some());
        assert!(report.parallel.channel_wait_nanos.is_some());
        assert!(report.parallel.reorder_high_water.is_some());
    }

    #[test]
    fn scaling_sweep_covers_requested_jobs() {
        let cfg = smoke_config();
        let texts = workload(&cfg);
        let sweep = run_scaling(&cfg, &texts, 3);
        assert!(sweep.cpus >= 1);
        assert!(sweep.serial_notes_per_sec > 0.0);
        assert_eq!(
            sweep.points.iter().map(|p| p.jobs).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        for p in &sweep.points {
            assert!(p.notes_per_sec > 0.0, "jobs={} has no throughput", p.jobs);
            assert!(p.speedup_vs_jobs1 > 0.0);
            // Determinism: every point parses the same workload, so total
            // cache traffic (L1 + shared + misses) is identical across jobs.
            let total = p.l1_cache_hits + p.shared_cache_hits + p.cache_misses;
            let base = &sweep.points[0];
            assert_eq!(
                total,
                base.l1_cache_hits + base.shared_cache_hits + base.cache_misses,
                "jobs={} cache traffic diverged",
                p.jobs
            );
        }
        assert!((sweep.points[0].speedup_vs_jobs1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_gate_trips_passes_and_skips() {
        let point = |jobs: usize, nps: f64| ScalingPoint {
            jobs,
            notes_per_sec: nps,
            speedup_vs_jobs1: 1.0,
            l1_cache_hits: 0,
            shared_cache_hits: 0,
            cache_misses: 0,
            shard_contention: 0,
            channel_wait_nanos: 0,
            reorder_high_water: 0,
        };
        let mut sweep = ScalingReport {
            cpus: 4,
            serial_notes_per_sec: 100.0,
            points: vec![point(1, 90.0), point(2, 96.0)],
        };
        let notice = check_scaling(&sweep, 0.95).expect("96 >= 95");
        assert!(notice.contains("jobs=2"), "{notice}");
        sweep.points[1].notes_per_sec = 80.0;
        let err = check_scaling(&sweep, 0.95).unwrap_err();
        assert!(err.contains("below"), "{err}");
        // One CPU: the gate must skip with a notice rather than fail.
        sweep.cpus = 1;
        let notice = check_scaling(&sweep, 0.95).expect("1-cpu skip");
        assert!(notice.contains("SKIPPED"), "{notice}");
        // Missing jobs=2 point is an error, not a silent pass.
        sweep.cpus = 2;
        sweep.points.truncate(1);
        assert!(check_scaling(&sweep, 0.95).is_err());
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
