//! The analyzer's output contract: running the battery is a pure function
//! of the committed assets — same findings, same order, same bytes —
//! and the committed assets themselves are clean at Warning-or-worse.

use cmr_analyze::{analyze_assets, check_info, Severity};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Byte-identical JSON across repeated runs: no iteration-order leaks
    /// from hash maps, no timestamps, no environment dependence.
    #[test]
    fn lint_json_is_byte_identical_across_runs(_run in 0u8..8) {
        let a = analyze_assets().to_json();
        let b = analyze_assets().to_json();
        prop_assert_eq!(a, b);
    }

    /// Same for SARIF and the human rendering.
    #[test]
    fn other_formats_are_deterministic_too(_run in 0u8..4) {
        let a = analyze_assets();
        let b = analyze_assets();
        prop_assert_eq!(a.to_sarif(), b.to_sarif());
        prop_assert_eq!(a.render_human(false), b.render_human(false));
    }
}

#[test]
fn committed_assets_are_clean_at_warning() {
    let report = analyze_assets();
    assert_eq!(
        report.errors() + report.warnings(),
        0,
        "committed assets regressed:\n{}",
        report.render_human(false)
    );
}

#[test]
fn every_emitted_code_is_registered() {
    for d in &analyze_assets().diagnostics {
        assert!(
            check_info(d.code).is_some(),
            "diagnostic {} missing from the registry",
            d.code
        );
        assert_eq!(d.severity, Severity::Note, "only notes on clean assets");
    }
}
