//! Bernoulli Naive Bayes — a word-presence baseline classifier.
//!
//! The related-work section of the paper contrasts decision trees with
//! other inductive text classifiers (Lehnert et al.); Naive Bayes is the
//! standard bag-of-boolean-features baseline and serves as the comparison
//! point for the ablation on classifier choice.

use crate::dataset::Dataset;

/// A trained Bernoulli Naive Bayes model with Laplace smoothing.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// log P(class).
    log_prior: Vec<f64>,
    /// `log_likelihood[class][feature]` = log P(feature = true | class).
    log_on: Vec<Vec<f64>>,
    /// log P(feature = false | class).
    log_off: Vec<Vec<f64>>,
}

impl NaiveBayes {
    /// Trains on a boolean dataset. Panics on an empty dataset.
    pub fn train(data: &Dataset) -> NaiveBayes {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n_labels = data.n_labels();
        let n_features = data.n_features();
        let label_counts = data.label_counts();
        let total = data.len() as f64;
        let log_prior: Vec<f64> = label_counts
            .iter()
            .map(|&c| (((c as f64) + 1.0) / (total + n_labels as f64)).ln())
            .collect();
        let mut on_counts = vec![vec![0usize; n_features]; n_labels];
        for inst in &data.instances {
            for (f, &v) in inst.features.iter().enumerate() {
                if v {
                    on_counts[inst.label][f] += 1;
                }
            }
        }
        let mut log_on = vec![vec![0.0; n_features]; n_labels];
        let mut log_off = vec![vec![0.0; n_features]; n_labels];
        for l in 0..n_labels {
            let denom = label_counts[l] as f64 + 2.0;
            for f in 0..n_features {
                let p = (on_counts[l][f] as f64 + 1.0) / denom;
                log_on[l][f] = p.ln();
                log_off[l][f] = (1.0 - p).ln();
            }
        }
        NaiveBayes {
            log_prior,
            log_on,
            log_off,
        }
    }

    /// Predicted label index for a feature vector (missing trailing
    /// features are treated as false).
    pub fn predict(&self, features: &[bool]) -> usize {
        let n_features = self.log_on.first().map(Vec::len).unwrap_or(0);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (l, prior) in self.log_prior.iter().enumerate() {
            let mut score = *prior;
            for f in 0..n_features {
                let v = features.get(f).copied().unwrap_or(false);
                score += if v {
                    self.log_on[l][f]
                } else {
                    self.log_off[l][f]
                };
            }
            if score > best_score {
                best_score = score;
                best = l;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new();
        for _ in 0..5 {
            b.add(&["quit".into(), "smoke".into()], "former");
            b.add(&["never".into(), "smoke".into()], "never");
            b.add(&["currently".into(), "smoker".into()], "current");
        }
        b.build()
    }

    #[test]
    fn fits_separable_data() {
        let d = toy();
        let nb = NaiveBayes::train(&d);
        for inst in &d.instances {
            assert_eq!(nb.predict(&inst.features), inst.label);
        }
    }

    #[test]
    fn prior_dominates_with_no_evidence() {
        let mut b = DatasetBuilder::new();
        for _ in 0..9 {
            b.add(&["x".into()], "big");
        }
        b.add(&["y".into()], "small");
        let d = b.build();
        let nb = NaiveBayes::train(&d);
        // All-false vector: class priors decide.
        let label = nb.predict(&vec![false; d.n_features()]);
        assert_eq!(d.label_names[label], "big");
    }

    #[test]
    fn short_vectors_ok() {
        let d = toy();
        let nb = NaiveBayes::train(&d);
        let l = nb.predict(&[]);
        assert!(l < d.n_labels());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset::new(vec!["a".into()]);
        let _ = NaiveBayes::train(&d);
    }
}
