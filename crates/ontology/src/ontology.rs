//! The ontology: a normalized-string index over the concept tables.

use crate::concept::{Concept, Rarity, SemanticType};
use crate::data::{CONCEPTS, PREDEFINED_MEDICAL_CUIS, PREDEFINED_SURGICAL_CUIS};
use crate::normalize::normalize;
use std::collections::{HashMap, HashSet};

/// Vocabulary completeness profile.
///
/// The paper's Table 1 errors are explained by two vocabulary defects:
/// "the incompleteness of domain ontology" (false positives/negatives on
/// the *other* attributes) and "failures to recognize the synonyms of
/// predefined surgical terms" (the 35% recall on predefined surgical
/// history). The profiles reproduce those defects deliberately:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OntologyProfile {
    /// Everything: all concepts, all synonyms. The "appropriate medical
    /// database" the paper's conclusion asks for.
    #[default]
    Full,
    /// The paper's effective vocabulary: the long tail of diseases and
    /// findings is missing ("the incompleteness of domain ontology" behind
    /// the Other-attribute errors), and procedures carry **no synonyms**
    /// (the predefined-surgical recall hole: "failures to recognize the
    /// synonyms of predefined surgical terms").
    Paper,
    /// A deliberately thin vocabulary: common concepts only, no synonyms
    /// anywhere.
    Degraded,
}

/// The concept index. Lookup is by normalized string (lemmatized words in
/// alphabetical order), the same scheme UMLS's normalized-string table uses.
#[derive(Debug, Clone)]
pub struct Ontology {
    profile: OntologyProfile,
    concepts: Vec<&'static Concept>,
    index: HashMap<String, usize>,
}

impl Default for Ontology {
    fn default() -> Self {
        Ontology::with_profile(OntologyProfile::Full)
    }
}

impl Ontology {
    /// Builds the ontology under a completeness profile.
    pub fn with_profile(profile: OntologyProfile) -> Ontology {
        let mut concepts = Vec::new();
        let mut index = HashMap::new();
        for c in CONCEPTS {
            let include = match profile {
                OntologyProfile::Full => true,
                OntologyProfile::Degraded => c.rarity == Rarity::Common,
                OntologyProfile::Paper => {
                    c.rarity == Rarity::Common
                        || !matches!(c.semtype, SemanticType::Disease | SemanticType::Finding)
                }
            };
            if !include {
                continue;
            }
            let id = concepts.len();
            concepts.push(c);
            index.entry(normalize(c.preferred)).or_insert(id);
            let take_synonyms = match profile {
                OntologyProfile::Full => true,
                OntologyProfile::Paper => c.semtype != SemanticType::Procedure,
                OntologyProfile::Degraded => false,
            };
            if take_synonyms {
                for s in c.synonyms {
                    index.entry(normalize(s)).or_insert(id);
                }
            }
        }
        Ontology {
            profile,
            concepts,
            index,
        }
    }

    /// Full vocabulary.
    pub fn full() -> Ontology {
        Ontology::with_profile(OntologyProfile::Full)
    }

    /// The paper-faithful vocabulary (see [`OntologyProfile::Paper`]).
    pub fn paper() -> Ontology {
        Ontology::with_profile(OntologyProfile::Paper)
    }

    /// Thin vocabulary.
    pub fn degraded() -> Ontology {
        Ontology::with_profile(OntologyProfile::Degraded)
    }

    /// The profile this ontology was built with.
    pub fn profile(&self) -> OntologyProfile {
        self.profile
    }

    /// Looks up a surface term (normalizing it first).
    pub fn lookup(&self, surface: &str) -> Option<&'static Concept> {
        self.lookup_normalized(&normalize(surface))
    }

    /// Looks up an already-normalized string.
    pub fn lookup_normalized(&self, norm: &str) -> Option<&'static Concept> {
        self.index.get(norm).map(|&i| self.concepts[i])
    }

    /// True when the surface term denotes a known concept.
    pub fn contains(&self, surface: &str) -> bool {
        self.lookup(surface).is_some()
    }

    /// Number of concepts loaded.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when no concepts are loaded (never the case for built profiles).
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Number of indexed surface forms.
    pub fn surface_forms(&self) -> usize {
        self.index.len()
    }

    /// Iterates over loaded concepts.
    pub fn concepts(&self) -> impl Iterator<Item = &'static Concept> + '_ {
        self.concepts.iter().copied()
    }
}

/// A named set of concepts (by CUI) — the study's predefined checklists.
#[derive(Debug, Clone)]
pub struct ValueSet {
    /// Human-readable name.
    pub name: &'static str,
    cuis: HashSet<&'static str>,
}

impl ValueSet {
    /// The predefined past-medical-history checklist.
    pub fn predefined_medical_history() -> ValueSet {
        ValueSet {
            name: "Predefined Past Medical History",
            cuis: PREDEFINED_MEDICAL_CUIS.iter().copied().collect(),
        }
    }

    /// The predefined past-surgical-history checklist.
    pub fn predefined_surgical_history() -> ValueSet {
        ValueSet {
            name: "Predefined Past Surgical History",
            cuis: PREDEFINED_SURGICAL_CUIS.iter().copied().collect(),
        }
    }

    /// True when the concept belongs to this set.
    pub fn contains(&self, concept: &Concept) -> bool {
        self.cuis.contains(concept.cui)
    }

    /// Number of concepts in the set.
    pub fn len(&self) -> usize {
        self.cuis.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cuis.is_empty()
    }
}

// The extraction engine shares these read-only across worker threads
// behind `Arc`; keep that guaranteed at compile time.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Ontology>();
const _: () = _assert_send_sync::<ValueSet>();

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_finds_synonyms() {
        let o = Ontology::full();
        let c = o.lookup("high blood pressure").expect("synonym resolves");
        assert_eq!(c.preferred, "hypertension");
        assert_eq!(
            o.lookup("CVA").unwrap().preferred,
            "cerebrovascular accident"
        );
    }

    #[test]
    fn lookup_normalizes_inflection() {
        let o = Ontology::full();
        assert!(o.contains("high blood pressures"), "plural resolves");
        assert!(o.contains("Cholecystectomy"));
        assert!(o.contains("midline hernia closure"));
    }

    #[test]
    fn paper_profile_lacks_surgical_synonyms() {
        let o = Ontology::paper();
        assert!(o.contains("cholecystectomy"), "preferred names stay");
        assert!(
            !o.contains("gallbladder removal"),
            "procedure synonyms dropped"
        );
        assert!(o.contains("high blood pressure"), "disease synonyms stay");
    }

    #[test]
    fn degraded_profile_is_thin() {
        let o = Ontology::degraded();
        assert!(o.len() < Ontology::full().len());
        assert!(!o.contains("gout"), "rare concepts dropped");
        assert!(o.contains("diabetes"));
        assert!(!o.contains("high blood pressure"), "no synonyms at all");
    }

    #[test]
    fn unknown_terms_miss() {
        let o = Ontology::full();
        assert!(!o.contains("quantum flux capacitor"));
        assert!(!o.contains(""));
    }

    #[test]
    fn value_sets() {
        let o = Ontology::full();
        let med = ValueSet::predefined_medical_history();
        let surg = ValueSet::predefined_surgical_history();
        assert!(med.contains(o.lookup("diabetes").unwrap()));
        assert!(!med.contains(o.lookup("cholecystectomy").unwrap()));
        assert!(surg.contains(o.lookup("cholecystectomy").unwrap()));
        assert!(!surg.is_empty());
        assert_eq!(surg.len(), 9);
    }

    #[test]
    fn profile_sizes_ordered() {
        assert!(Ontology::degraded().surface_forms() < Ontology::paper().surface_forms());
        assert!(Ontology::paper().surface_forms() < Ontology::full().surface_forms());
    }
}
