//! Property tests: the extractors must be total, deterministic, and honest
//! about provenance on arbitrary input.

use cmr_core::{
    ExtractedRecord, FeatureExtractor, FeatureOptions, FeatureSpec, MedicalTermExtractor,
    NumericExtractor, Pipeline, Schema, Tier,
};
use cmr_corpus::{CorpusBuilder, NoiseInjector};
use cmr_ontology::Ontology;
use proptest::prelude::*;

/// Structural invariants every extraction output must satisfy, no matter
/// how corrupted the input was.
fn assert_well_formed(out: &ExtractedRecord) -> Result<(), TestCaseError> {
    for field in out.numeric.keys() {
        prop_assert!(
            out.numeric_methods.contains_key(field),
            "method for {field}"
        );
        prop_assert!(out.provenance.contains_key(field), "provenance for {field}");
    }
    for field in &out.degradation.salvaged_fields {
        let prov = out.provenance.get(field);
        prop_assert!(
            prov.map(|p| p.tier == Tier::Salvage).unwrap_or(false),
            "salvaged field {field} must carry salvage provenance"
        );
    }
    prop_assert!(out.degradation.tiers.salvage as usize >= out.degradation.salvaged_fields.len());
    prop_assert_eq!(out.degradation.degraded, out.degradation.tiers.salvage > 0);
    for prov in out.provenance.values() {
        prop_assert!(prov.confidence > 0.0 && prov.confidence <= 1.0);
    }
    Ok(())
}

fn clinicalish() -> impl Strategy<Value = String> {
    let subj = prop::sample::select(vec!["She", "The patient", "Ms. Smith"]);
    let verb = prop::sample::select(vec!["is", "has", "denies", "reports", "underwent"]);
    let obj = prop::sample::select(vec![
        "a blood pressure of 140/90",
        "diabetes and hypertension",
        "a pulse of 84",
        "a cholecystectomy",
        "no complaints",
        "weight of 180 pounds",
        "menarche at age 12",
    ]);
    (subj, verb, obj).prop_map(|(s, v, o)| format!("{s} {v} {o}."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Numeric extraction never panics and every hit names a schema field.
    #[test]
    fn numeric_total_and_well_formed(s in clinicalish()) {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let ex = NumericExtractor::new();
        for hit in ex.extract_sentence(&s, &specs) {
            prop_assert!(schema.numeric_spec(&hit.field).is_some());
            let spec = schema.numeric_spec(&hit.field).unwrap();
            prop_assert!(spec.accepts(&hit.value), "{hit:?} violates its own spec");
        }
    }

    /// Numeric extraction is deterministic.
    #[test]
    fn numeric_deterministic(s in clinicalish()) {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let ex = NumericExtractor::new();
        prop_assert_eq!(ex.extract_sentence(&s, &specs), ex.extract_sentence(&s, &specs));
    }

    /// Term extraction: spans always slice back to the reported surface,
    /// and every hit's normalized surface resolves in the ontology.
    #[test]
    fn terms_spans_and_resolution(s in clinicalish()) {
        let ex = MedicalTermExtractor::new(Ontology::full());
        for hit in ex.extract(&s) {
            prop_assert_eq!(hit.span.slice(&s), hit.surface.as_str());
            let resolved = ex.ontology().lookup(&hit.surface).expect("hit resolves");
            prop_assert_eq!(resolved.cui, hit.concept.cui);
        }
    }

    /// Term extraction tolerates arbitrary ASCII garbage.
    #[test]
    fn terms_total_on_garbage(s in "[ -~]{0,120}") {
        let ex = MedicalTermExtractor::new(Ontology::full());
        let _ = ex.extract(&s);
    }

    /// Numeric extraction tolerates arbitrary ASCII garbage.
    #[test]
    fn numeric_total_on_garbage(s in "[ -~]{0,120}") {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let _ = NumericExtractor::new().extract_sentence(&s, &specs);
    }

    /// Feature extraction is deterministic and yields no duplicates.
    #[test]
    fn features_deterministic_and_unique(s in clinicalish()) {
        let fx = FeatureExtractor::new(FeatureOptions::paper_smoking());
        let a = fx.extract(&s);
        let b = fx.extract(&s);
        prop_assert_eq!(&a, &b);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(a.len(), dedup.len());
    }

    /// The whole pipeline is total on arbitrary multi-line input.
    #[test]
    fn pipeline_total(s in "[ -~\n]{0,300}") {
        let pipeline = Pipeline::with_default_schema();
        let out = pipeline.extract(&s);
        // Methods map keys mirror numeric keys.
        for k in out.numeric.keys() {
            prop_assert!(out.numeric_methods.contains_key(k));
        }
        assert_well_formed(&out)?;
    }

    /// The pipeline is total on arbitrary input including non-ASCII bytes
    /// (stray OCR artifacts, section glyphs, CJK), and the output is
    /// structurally well-formed.
    #[test]
    fn pipeline_total_on_unicode(s in "[ -~\n\t°é¶µß§温·]{0,300}") {
        let out = Pipeline::with_default_schema().extract(&s);
        assert_well_formed(&out)?;
    }

    /// Gold notes corrupted at any noise level and seed extract without
    /// panics, and every record carries a well-formed degradation report.
    #[test]
    fn noisy_gold_notes_extract_cleanly(seed in 0u64..u64::MAX, level in 0u32..=100) {
        let corpus = CorpusBuilder::new().records(2).seed(2005).build();
        let injector = NoiseInjector::from_level(f64::from(level) / 100.0, seed);
        let pipeline = Pipeline::with_default_schema();
        for record in &corpus.records {
            let out = pipeline.extract(&injector.corrupt(&record.text));
            assert_well_formed(&out)?;
        }
    }
}

/// At noise zero the salvage tier must be inert: enabling it reproduces
/// the salvage-free output byte-for-byte over the gold corpus.
#[test]
fn salvage_is_identity_at_noise_zero() {
    let corpus = CorpusBuilder::new().records(12).seed(2005).build();
    let with = Pipeline::with_default_schema();
    let without = Pipeline::with_default_schema().with_salvage(false);
    for record in &corpus.records {
        let a = serde_json::to_string(&with.extract(&record.text)).expect("serializes");
        let b = serde_json::to_string(&without.extract(&record.text)).expect("serializes");
        assert_eq!(
            a, b,
            "salvage changed clean output for {}",
            record.patient_id
        );
    }
}
