//! # cmr-bench — the reproduction harness
//!
//! One runner per table/figure of the paper plus the ablations listed in
//! DESIGN.md §4. The `repro` binary renders the reports; Criterion benches
//! measure the substrate costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod chaos;
pub mod experiments;
pub mod iofaults;
pub mod loadtest;
pub mod perf;

pub use chaos::{
    parse_levels, run_chaos, run_chaos_with, ChaosConfig, ChaosLevelReport, ChaosReport,
};
pub use experiments::*;
pub use iofaults::{run_io_faults, IoFaultConfig, IoFaultReport, ScheduleReport};
pub use loadtest::{check_latency_regression, run_loadtest, LoadConfig, LoadReport};

/// `println!` that survives a closed stdout: `repro figure1 | head` closes
/// the pipe early, and the report must end quietly instead of panicking.
#[macro_export]
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

/// [`outln!`] for stderr.
#[macro_export]
macro_rules! errln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stderr(), $($arg)*);
    }};
}
