//! The end-to-end pipeline: record in, structured information out.
//!
//! Mirrors Figure 2 of the paper: tokenization/splitting/tagging
//! (cmr-text/cmr-postag for GATE), the link grammar parser, the morphology
//! engine (cmr-lexicon for WordNet), the ontology (cmr-ontology for UMLS),
//! and the extractors of this crate; the output is a structured record
//! (serde-serializable, standing in for the paper's Access database).

use crate::numeric::{AssociationMethod, NumericExtractor, NumericHit};
use crate::schema::Schema;
use crate::terms::MedicalTermExtractor;
use cmr_ontology::{Ontology, ValueSet};
use cmr_text::{NumberValue, Record};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Structured information extracted from one record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExtractedRecord {
    /// Patient identifier from the `Patient:` section.
    pub patient_id: Option<String>,
    /// Numeric attributes by name.
    pub numeric: BTreeMap<String, NumberValue>,
    /// How each numeric attribute was associated (same keys as `numeric`).
    pub numeric_methods: BTreeMap<String, crate::numeric::MethodUsed>,
    /// Predefined past-medical-history terms (concept preferred names).
    pub predefined_medical: Vec<String>,
    /// Other past-medical-history terms.
    pub other_medical: Vec<String>,
    /// Predefined past-surgical-history terms.
    pub predefined_surgical: Vec<String>,
    /// Other past-surgical-history terms.
    pub other_surgical: Vec<String>,
}

impl ExtractedRecord {
    /// Convenience accessor for a numeric attribute.
    pub fn numeric(&self, name: &str) -> Option<NumberValue> {
        self.numeric.get(name).copied()
    }
}

/// The extraction pipeline (numeric + medical terms; categorical fields
/// need training data and live in [`crate::CategoricalExtractor`]).
pub struct Pipeline {
    schema: Schema,
    numeric: NumericExtractor,
    terms: MedicalTermExtractor,
    predefined_medical: ValueSet,
    predefined_surgical: ValueSet,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::with_default_schema()
    }
}

impl Pipeline {
    /// Paper schema, full ontology, link-grammar association with pattern
    /// fallback.
    pub fn with_default_schema() -> Pipeline {
        Pipeline::new(Schema::paper(), Ontology::full(), AssociationMethod::LinkWithFallback)
    }

    /// Fully configured pipeline.
    pub fn new(schema: Schema, ontology: Ontology, method: AssociationMethod) -> Pipeline {
        Pipeline {
            schema,
            numeric: NumericExtractor::with_method(method),
            terms: MedicalTermExtractor::new(ontology),
            predefined_medical: ValueSet::predefined_medical_history(),
            predefined_surgical: ValueSet::predefined_surgical_history(),
        }
    }

    /// Selects the medical-term pattern inventory (the paper's four
    /// patterns by default; see [`crate::PatternSet`]).
    pub fn with_term_patterns(mut self, patterns: crate::PatternSet) -> Pipeline {
        self.terms.set_patterns(patterns);
        self
    }

    /// The schema in use.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Extracts everything the untrained pipeline can from one record.
    pub fn extract(&self, text: &str) -> ExtractedRecord {
        let record = Record::parse(text);
        let mut out = ExtractedRecord {
            patient_id: record.patient_id.clone(),
            ..ExtractedRecord::default()
        };

        // Numeric attributes.
        for NumericHit { field, value, method } in
            self.numeric.extract_record(text, &self.schema.numeric)
        {
            out.numeric.insert(field.clone(), value);
            out.numeric_methods.insert(field, method);
        }

        // Medical-term attributes.
        for term_field in &self.schema.terms {
            let (predefined_set, slots) = match term_field.name.as_str() {
                "past_medical_history" => (
                    &self.predefined_medical,
                    (&mut out.predefined_medical, &mut out.other_medical),
                ),
                "past_surgical_history" => (
                    &self.predefined_surgical,
                    (&mut out.predefined_surgical, &mut out.other_surgical),
                ),
                _ => continue,
            };
            for section_name in &term_field.sections {
                let Some(section) = record.section(section_name) else { continue };
                let (pre, other) = self
                    .terms
                    .extract_partitioned(&section.body, predefined_set);
                for hit in pre {
                    let name = hit.concept.preferred.to_string();
                    if !slots.0.contains(&name) {
                        slots.0.push(name);
                    }
                }
                for hit in other {
                    let name = hit.concept.preferred.to_string();
                    if !slots.1.contains(&name) {
                        slots.1.push(name);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_corpus::APPENDIX_RECORD;

    #[test]
    fn appendix_record_end_to_end() {
        let p = Pipeline::with_default_schema();
        let out = p.extract(APPENDIX_RECORD);
        assert_eq!(out.patient_id.as_deref(), Some("2"));
        assert_eq!(out.numeric("blood_pressure"), Some(NumberValue::Ratio(142, 78)));
        assert_eq!(out.numeric("pulse"), Some(NumberValue::Int(96)));
        assert_eq!(out.numeric("weight"), Some(NumberValue::Int(211)));
        assert_eq!(out.numeric("menarche_age"), Some(NumberValue::Int(10)));
        assert_eq!(out.numeric("gravida"), Some(NumberValue::Int(4)));
        assert_eq!(out.numeric("para"), Some(NumberValue::Int(3)));
        assert_eq!(out.numeric("first_birth_age"), Some(NumberValue::Int(18)));
        assert_eq!(out.numeric("age"), Some(NumberValue::Int(50)));
        // The Appendix vitals line has no temperature.
        assert_eq!(out.numeric("temperature"), None);
        // PMH: diabetes, heart disease, high blood pressure (→ hypertension),
        // hypercholesterolemia, bronchitis, arrhythmia, depression.
        assert!(out.predefined_medical.contains(&"diabetes".to_string()));
        assert!(out.predefined_medical.contains(&"hypertension".to_string()));
        assert!(out.predefined_medical.contains(&"arrhythmia".to_string()));
        assert!(out.other_medical.contains(&"bronchitis".to_string()));
        // PSH: cervical laminectomy → laminectomy (not predefined).
        assert!(out.other_surgical.contains(&"laminectomy".to_string()), "{:?}", out.other_surgical);
        assert!(out.predefined_surgical.is_empty());
    }

    #[test]
    fn serializes_to_json() {
        let p = Pipeline::with_default_schema();
        let out = p.extract(APPENDIX_RECORD);
        let json = serde_json::to_string_pretty(&out).expect("serializes");
        assert!(json.contains("blood_pressure"));
        let back: ExtractedRecord = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.numeric("pulse"), out.numeric("pulse"));
    }

    #[test]
    fn empty_record() {
        let p = Pipeline::with_default_schema();
        let out = p.extract("");
        assert!(out.numeric.is_empty());
        assert!(out.predefined_medical.is_empty());
    }
}
