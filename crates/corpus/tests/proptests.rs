//! Property tests for the noise injector: determinism, identity at level
//! zero, and no panics on arbitrary (including non-ASCII) input.

use cmr_corpus::{CorpusBuilder, NoiseInjector};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same (seed, level, text) → byte-identical corruption, regardless of
    /// which injector instance produces it.
    #[test]
    fn injector_is_deterministic(
        seed in 0u64..u64::MAX,
        level in 0u32..=100,
        text in "[a-zA-Z0-9 .,:/\n()°é¶-]{0,200}",
    ) {
        let level = f64::from(level) / 100.0;
        let a = NoiseInjector::from_level(level, seed).corrupt(&text);
        let b = NoiseInjector::from_level(level, seed).corrupt(&text);
        prop_assert_eq!(a, b);
    }

    /// Level 0 is the identity on any text.
    #[test]
    fn level_zero_is_identity(
        seed in 0u64..u64::MAX,
        text in "[a-zA-Z0-9 .,:/\n()°é¶µß§-]{0,200}",
    ) {
        let out = NoiseInjector::from_level(0.0, seed).corrupt(&text);
        prop_assert_eq!(out, text);
    }

    /// Corruption never panics and always yields valid UTF-8 (guaranteed by
    /// `String`, exercised here across levels and messy input).
    #[test]
    fn corrupt_never_panics(
        seed in 0u64..u64::MAX,
        level in 0u32..=100,
        text in "[a-zA-Z0-9 \t.,:;/\n()\0°é¶µß§温-]{0,300}",
    ) {
        let level = f64::from(level) / 100.0;
        let out = NoiseInjector::from_level(level, seed).corrupt(&text);
        // Truncation is the only channel allowed to shorten the record
        // drastically; everything else is local. Just sanity-bound growth:
        // stray bytes add at most one char per line.
        let lines = text.split('\n').count();
        prop_assert!(out.chars().count() <= text.chars().count() * 2 + lines + 1);
    }

    /// Corrupting generated gold notes never panics at any level, and the
    /// result still parses as a record (possibly with fewer sections).
    #[test]
    fn gold_notes_survive_corruption(
        seed in 0u64..u64::MAX,
        level in 0u32..=100,
    ) {
        let corpus = CorpusBuilder::new().records(3).seed(2005).build();
        let injector = NoiseInjector::from_level(f64::from(level) / 100.0, seed);
        for record in &corpus.records {
            let noisy = injector.corrupt(&record.text);
            let parsed = cmr_text::Record::parse(&noisy);
            prop_assert!(parsed.sections.len() <= 32);
        }
    }
}
