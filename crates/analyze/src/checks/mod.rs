//! The ordered battery of asset checks.
//!
//! Each module exposes table-taking functions (so regression tests can
//! replay pre-fix asset states) plus a `check(out)` adapter bound to the
//! committed assets.

pub mod dict;
pub mod lexicon;
pub mod ml;
pub mod ontology;
pub mod source;
pub mod specs;
