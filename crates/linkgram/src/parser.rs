//! The link grammar parser.
//!
//! A memoized top-down region parser in the style of Sleator & Temperley's
//! O(n³) algorithm. A *region* `(L, R, l, r)` is the span of words strictly
//! between positions `L` and `R`, together with the still-unsatisfied
//! right-pointing connectors `l` of `L` and left-pointing connectors `r` of
//! `R` that must link into the region. Connector lists are kept
//! **farthest-first** internally (dictionary syntax is nearest-first and is
//! reversed at load): the head of `l` is the connector that links to the
//! farthest (and therefore first-chosen) word `W`.
//!
//! The case split on each region is the classic one:
//!
//! * `l` non-empty → `W` is the word `l`'s head links to; `W`'s farthest
//!   left connector must match it; `W` may additionally link to `R`.
//! * `l` empty, `r` non-empty → `W` is the word `r`'s head links to, via
//!   `W`'s farthest right connector.
//! * both empty → the region must contain no words (anything inside would
//!   be disconnected from the rest of the linkage).
//!
//! Planarity and connectivity are consequences of this decomposition, which
//! is exactly the published argument. Costs are minimized instead of
//! linkages counted: disjunct costs plus a small per-link length penalty, so
//! the parser prefers close attachments.

use crate::connector::Connector;
use crate::dict::{Dictionary, WordShape};
use crate::linkage::{Link, Linkage};
use cmr_postag::{PosTagger, TaggedToken};
use cmr_sync::{TrackedMutex, TrackedMutexGuard};
use cmr_text::{tokenize, Sym};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-link length penalty: breaks cost ties toward close attachment
/// without overriding whole-number disjunct costs.
const LENGTH_PENALTY: f64 = 0.01;

/// Hard limit on sentence length (words incl. wall); longer inputs fail the
/// parse (and flow to the pattern fallback) rather than taking unbounded
/// time.
const MAX_WORDS: usize = 48;

/// Maximum cached parse structures before the cache resets.
const PARSE_CACHE_CAP: usize = 4096;

/// The parser, holding a compiled [`Dictionary`] and a structure cache.
///
/// The cache exploits a structural fact: a linkage depends only on each
/// word's *class key* (explicit word-table entry, or POS-tag class), never
/// on open-vocabulary spellings or number values. Re-parsing "pulse of 84"
/// after "pulse of 96" is a lookup. The cache makes the parser `!Sync`;
/// clone it per thread instead (the dictionary is shared behavior, the
/// cache mere memory).
///
/// A pool of per-thread parsers can additionally attach one
/// [`SharedParseCache`]: each parser still answers from its lock-free local
/// cache first, and only consults (and feeds) the shared map on a local
/// miss — so a sentence shape is parsed once per *pool*, not once per
/// worker, at the cost of one mutex lock per locally-unseen shape.
#[derive(Debug, Clone, Default)]
pub struct LinkParser {
    dict: Dictionary,
    cache: std::cell::RefCell<ShapeCache>,
    shared: Option<SharedParseCache>,
    stats: std::cell::Cell<ParserStats>,
    /// Reused buffer for building cache signatures (interned class keys).
    sig_scratch: std::cell::RefCell<Vec<Sym>>,
    /// Reused memo/arena/bitmap storage for uncached parses.
    scratch: std::cell::RefCell<ParseScratch>,
    /// Cooperative-cancellation flag: when set, the region search bails
    /// out with [`ParseFailure::Cancelled`] at its next fuel check.
    cancel: Option<Arc<AtomicBool>>,
}

/// Why a parse produced no linkage.
///
/// Failure is a value, not a panic: batch drivers count these per record
/// (see `cmr-core`'s `DegradationReport`) and fall through to cheaper
/// association tiers instead of dropping the sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseFailure {
    /// No words remained after stripping sentence-final punctuation.
    Empty,
    /// The sentence exceeds the parser's hard word limit.
    TooLong {
        /// Words in the sentence, including the left wall.
        words: usize,
        /// The limit the parser enforces (`MAX_WORDS`).
        max: usize,
    },
    /// Some word has no surviving disjuncts (stray punctuation, symbols the
    /// dictionary cannot link): detected before the O(n³) search starts.
    NoDisjuncts,
    /// The region parser exhausted the search space without finding a
    /// linkage — the classic fragment case (`"Blood pressure: 144/90"`).
    NoLinkage,
    /// An external deadline flag (see [`LinkParser::set_cancel_flag`])
    /// was raised mid-search; the parse was abandoned, not exhausted.
    Cancelled,
}

impl std::fmt::Display for ParseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseFailure::Empty => write!(f, "empty sentence"),
            ParseFailure::TooLong { words, max } => {
                write!(f, "sentence too long ({words} words, limit {max})")
            }
            ParseFailure::NoDisjuncts => write!(f, "a word has no usable disjuncts"),
            ParseFailure::NoLinkage => write!(f, "no linkage found"),
            ParseFailure::Cancelled => write!(f, "parse cancelled"),
        }
    }
}

impl std::error::Error for ParseFailure {}

/// One cached outcome: sentence shape (interned word-class sequence) →
/// parse structure or typed failure. Failures are cached too, so a shape
/// that cannot parse is rejected once, not once per sighting.
type ShapeEntry = Result<CachedParse, ParseFailure>;

/// A bounded shape → parse map with two-generation (second-chance)
/// eviction. New and re-touched entries live in the *hot* generation; when
/// it fills, the previous (*cold*) generation is discarded and hot becomes
/// cold. An entry is therefore only evicted after a full generation passes
/// without it being touched — a steady-state working set smaller than half
/// the capacity is never evicted, unlike the old wholesale `clear()` which
/// dropped the working set along with the strays that filled the map.
#[derive(Debug, Clone)]
struct ShapeCache {
    hot: HashMap<Arc<[Sym]>, ShapeEntry, FxBuild>,
    cold: HashMap<Arc<[Sym]>, ShapeEntry, FxBuild>,
    /// Per-generation capacity: half the configured total.
    gen_cap: usize,
    /// Entries discarded by generation rotation since construction.
    evictions: u64,
}

impl Default for ShapeCache {
    fn default() -> Self {
        ShapeCache::with_limit(PARSE_CACHE_CAP)
    }
}

impl ShapeCache {
    fn with_limit(cap: usize) -> ShapeCache {
        ShapeCache {
            hot: HashMap::default(),
            cold: HashMap::default(),
            gen_cap: (cap / 2).max(1),
            evictions: 0,
        }
    }

    fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// Looks up a shape, promoting a cold hit into the hot generation (the
    /// second chance). Returns a clone: entries are an `Arc` + `f64`, or a
    /// `Copy` failure, so this is cheap.
    fn get(&mut self, sig: &[Sym]) -> Option<ShapeEntry> {
        if let Some(entry) = self.hot.get(sig) {
            return Some(entry.clone());
        }
        let (key, entry) = self.cold.remove_entry(sig)?;
        self.store(key, entry.clone());
        Some(entry)
    }

    fn insert(&mut self, sig: Arc<[Sym]>, entry: ShapeEntry) {
        // Drop any cold duplicate so rotation cannot resurrect a shadowed
        // entry and `len` stays honest.
        self.cold.remove(&sig);
        self.store(sig, entry);
    }

    fn store(&mut self, sig: Arc<[Sym]>, entry: ShapeEntry) {
        if self.hot.len() >= self.gen_cap && !self.hot.contains_key(&sig) {
            self.evictions += self.cold.len() as u64;
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(sig, entry);
    }

    fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
    }
}

/// Default number of lock stripes in a [`SharedParseCache`] (a power of
/// two). Eight stripes keep the worst case at jobs=8 near one worker per
/// lock while costing only a few empty maps when the pool is small.
const SHARED_CACHE_SHARDS: usize = 8;

/// A parse-structure cache shared between parser instances across threads,
/// lock-striped by signature hash. Cloning the handle shares the shards;
/// each shard is bounded by the same two-generation eviction scheme as
/// each parser's local cache.
///
/// The stripe for a shape is a pure function of its signature, so workers
/// racing on *one* cold shape still serialize on one stripe — preserving
/// the no-double-parse property — while lookups of distinct shapes usually
/// land on distinct stripes and proceed in parallel. Stripe locks are
/// taken `try_lock`-first; an acquisition that would block is counted in
/// [`SharedCacheStats::contention`] before falling back to a blocking
/// lock, so the engine can report real contention rather than guess.
#[derive(Debug, Clone)]
pub struct SharedParseCache {
    inner: Arc<SharedShards>,
}

#[derive(Debug)]
struct SharedShards {
    shards: Box<[TrackedMutex<ShapeCache>]>,
    /// `shards.len() - 1`; the stripe count is always a power of two.
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    contention: AtomicU64,
}

/// Counter snapshot of a [`SharedParseCache`] (see
/// [`SharedParseCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Number of lock stripes.
    pub shards: usize,
    /// Cached sentence shapes, summed over stripes.
    pub entries: usize,
    /// Entries discarded by generation rotation, summed over stripes.
    pub evictions: u64,
    /// Lookups answered from the shared map.
    pub hits: u64,
    /// Lookups that fell through to the O(n³) parser.
    pub misses: u64,
    /// Stripe-lock acquisitions that found the stripe already held.
    pub contention: u64,
}

impl Default for SharedParseCache {
    fn default() -> Self {
        SharedParseCache::with_capacity(PARSE_CACHE_CAP)
    }
}

impl SharedParseCache {
    /// An empty shared cache with the default capacity and stripe count.
    pub fn new() -> SharedParseCache {
        SharedParseCache::default()
    }

    /// An empty shared cache bounded to roughly `cap` cached shapes,
    /// striped across [`SHARED_CACHE_SHARDS`] locks.
    pub fn with_capacity(cap: usize) -> SharedParseCache {
        SharedParseCache::with_shards(cap, SHARED_CACHE_SHARDS)
    }

    /// An empty shared cache with an explicit stripe count, rounded up to
    /// a power of two. `shards == 1` reproduces the old single-lock cache
    /// exactly — the sharded-vs-single-lock equivalence proptest pins the
    /// two configurations to identical parse results.
    pub fn with_shards(cap: usize, shards: usize) -> SharedParseCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = cap.div_ceil(n).max(2);
        SharedParseCache {
            inner: Arc::new(SharedShards {
                shards: (0..n)
                    .map(|_| {
                        TrackedMutex::new("linkgram.parse_shard", ShapeCache::with_limit(per_shard))
                    })
                    .collect(),
                mask: (n - 1) as u64,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                contention: AtomicU64::new(0),
            }),
        }
    }

    /// The stripe responsible for `sig`. Shard bits come from the middle
    /// of the signature hash: hashbrown derives bucket indexes from the
    /// low bits and its control tag from the top seven, so neither loses
    /// distribution inside a shard's map.
    fn shard_for(&self, sig: &[Sym]) -> &TrackedMutex<ShapeCache> {
        use std::hash::BuildHasher;
        let h = FxBuild::default().hash_one(sig);
        &self.inner.shards[((h >> 32) & self.inner.mask) as usize]
    }

    /// Locks one stripe, counting acquisitions that had to block. A
    /// poisoned stripe is recovered, not propagated: the map holds plain
    /// data, valid at every unlock point, so a worker that panicked
    /// mid-extraction cannot invalidate the cache for the rest of the
    /// pool.
    fn lock_shard<'a>(
        &'a self,
        shard: &'a TrackedMutex<ShapeCache>,
    ) -> TrackedMutexGuard<'a, ShapeCache> {
        match shard.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poison)) => poison.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.inner.contention.fetch_add(1, Ordering::Relaxed);
                shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Entries discarded by the shared cache's generation rotation.
    pub fn evictions(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .evictions
            })
            .sum()
    }

    /// Number of cached sentence shapes across all stripes.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// True when no shapes are cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot: stripe count, entries, evictions, pool-wide
    /// hit/miss totals, and blocked stripe-lock acquisitions.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            shards: self.shard_count(),
            entries: self.len(),
            evictions: self.evictions(),
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            contention: self.inner.contention.load(Ordering::Relaxed),
        }
    }
}

/// Structure-cache and timing counters for one parser instance, cumulative
/// since construction (or the last [`LinkParser::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParserStats {
    /// Parses answered from the structure cache.
    pub cache_hits: u64,
    /// The subset of `cache_hits` answered by the pool-wide shared cache
    /// (a locally-unseen shape another worker had already parsed).
    pub shared_hits: u64,
    /// Parses that ran the O(n³) region parser.
    pub cache_misses: u64,
    /// Wall time spent in uncached parses, in nanoseconds.
    pub parse_nanos: u64,
    /// Entries discarded from the local structure cache by generation
    /// rotation (see the cap on the cache).
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct CachedParse {
    links: Arc<Vec<Link>>,
    cost: f64,
}

impl LinkParser {
    /// Creates a parser over the built-in clinical-English dictionary.
    pub fn new() -> LinkParser {
        LinkParser {
            dict: Dictionary::clinical_english(),
            cache: std::cell::RefCell::new(ShapeCache::default()),
            shared: None,
            stats: std::cell::Cell::new(ParserStats::default()),
            sig_scratch: std::cell::RefCell::new(Vec::new()),
            scratch: std::cell::RefCell::new(ParseScratch::default()),
            cancel: None,
        }
    }

    /// Installs a cooperative-cancellation flag. While the flag is `true`,
    /// in-flight and future region searches abandon work and return
    /// [`ParseFailure::Cancelled`]; cancelled outcomes are never cached,
    /// so clearing the flag restores normal (deterministic) behaviour.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Rebounds the local structure cache to roughly `cap` shapes,
    /// discarding current entries (tests, memory tuning).
    pub fn set_cache_capacity(&mut self, cap: usize) {
        *self.cache.borrow_mut() = ShapeCache::with_limit(cap);
    }

    /// Attaches a pool-wide structure cache, consulted (and fed) on
    /// local-cache misses. A shared-cache hit counts as a cache hit in
    /// [`ParserStats`].
    pub fn set_shared_cache(&mut self, cache: SharedParseCache) {
        self.shared = Some(cache);
    }

    /// Parses raw sentence text (tokenizing and tagging internally).
    /// Returns `None` when no linkage exists — e.g. for fragments like
    /// `"blood pressure: 144/90"`, matching the original parser's behaviour
    /// that motivates the paper's pattern fallback.
    pub fn parse_sentence(&self, text: &str) -> Option<Linkage> {
        let tokens = tokenize(text);
        let tagged = PosTagger::new().tag(&tokens);
        self.parse(&tagged)
    }

    /// Parses a tagged token sequence. `None` folds away the failure
    /// reason; use [`LinkParser::try_parse`] to observe it.
    pub fn parse(&self, tagged: &[TaggedToken]) -> Option<Linkage> {
        self.try_parse(tagged).ok()
    }

    /// Parses a tagged token sequence, reporting *why* when no linkage
    /// exists. Failure reasons are cached alongside successful structures,
    /// so a repeated unparseable shape replays its reason from the cache.
    pub fn try_parse(&self, tagged: &[TaggedToken]) -> Result<Linkage, ParseFailure> {
        // Strip sentence-final punctuation (it carries no connectors).
        let mut end = tagged.len();
        while end > 0 && tagged[end - 1].tag == cmr_postag::Tag::PUNCT {
            end -= 1;
        }
        let tagged = &tagged[..end];
        if tagged.is_empty() {
            return Err(ParseFailure::Empty);
        }
        if tagged.len() + 1 > MAX_WORDS {
            return Err(ParseFailure::TooLong {
                words: tagged.len() + 1,
                max: MAX_WORDS,
            });
        }

        // Structure cache: identical class-key sequences share a linkage.
        // The signature is a sequence of interned symbols built in a reused
        // buffer, so the probe hashes `u32`s and allocates nothing.
        let mut sig = self.sig_scratch.borrow_mut();
        sig.clear();
        sig.extend(tagged.iter().map(|t| self.dict.class_key_sym(t)));
        if let Some(cached) = self.cache.borrow_mut().get(&sig) {
            drop(sig);
            self.count_hit();
            return match cached {
                Ok(c) => Ok(self.rebuild(tagged, &c)),
                Err(f) => Err(f),
            };
        }
        // A miss materializes the signature exactly once; the shared and
        // local inserts below share it by cloning the cheap `Arc`.
        let signature: Arc<[Sym]> = Arc::from(&sig[..]);
        drop(sig);
        // Local miss: another parser in the pool may have seen this shape.
        // The shape's stripe lock is held ACROSS the fallback parse on a
        // shared miss, deliberately: when a pool starts cold, every worker
        // hits the same few shapes at once, and lookup-then-parse-then-
        // insert would let all of them run the O(n³) parser on the same
        // shape concurrently (duplicating exactly the work the cache
        // exists to avoid). Racers on one shape hash to one stripe, so
        // cold parses of a shape serialize; distinct shapes take distinct
        // stripes and parse in parallel. Steady state is absorbed by the
        // lock-free local cache above.
        if let Some(shared) = &self.shared {
            let shard = shared.shard_for(&signature);
            let mut map = shared.lock_shard(shard);
            if let Some(cached) = map.get(&signature[..]) {
                drop(map);
                shared.inner.hits.fetch_add(1, Ordering::Relaxed);
                self.count_shared_hit();
                let result = match &cached {
                    Ok(c) => Ok(self.rebuild(tagged, c)),
                    Err(f) => Err(*f),
                };
                self.cache.borrow_mut().insert(signature, cached);
                return result;
            }
            shared.inner.misses.fetch_add(1, Ordering::Relaxed);
            let result = self.parse_and_count(tagged);
            // A cancelled search is an artifact of the deadline, not a
            // property of the shape: caching it would make one timed-out
            // record poison every later sighting of the same shape.
            if matches!(result, Err(ParseFailure::Cancelled)) {
                return result;
            }
            let entry = cache_entry(&result);
            map.insert(Arc::clone(&signature), entry.clone());
            drop(map);
            self.cache.borrow_mut().insert(signature, entry);
            return result;
        }
        let result = self.parse_and_count(tagged);
        if matches!(result, Err(ParseFailure::Cancelled)) {
            return result;
        }
        self.cache
            .borrow_mut()
            .insert(signature, cache_entry(&result));
        result
    }

    /// Charges one cache hit to the stats counters.
    fn count_hit(&self) {
        let mut stats = self.stats.get();
        stats.cache_hits += 1;
        self.stats.set(stats);
    }

    /// Charges one hit served by the pool-wide shared cache (counted both
    /// as a plain hit and in the shared-hit subset).
    fn count_shared_hit(&self) {
        let mut stats = self.stats.get();
        stats.cache_hits += 1;
        stats.shared_hits += 1;
        self.stats.set(stats);
    }

    /// Runs the uncached parser, charging the miss and wall time to stats.
    fn parse_and_count(&self, tagged: &[TaggedToken]) -> Result<Linkage, ParseFailure> {
        let started = std::time::Instant::now();
        let result = self.parse_uncached(tagged);
        let mut stats = self.stats.get();
        stats.cache_misses += 1;
        stats.parse_nanos += started.elapsed().as_nanos() as u64;
        self.stats.set(stats);
        result
    }

    /// Reconstructs a linkage for `tagged` from a cached structure. The
    /// links are shared with the cache entry (`Arc`), not deep-copied.
    fn rebuild(&self, tagged: &[TaggedToken], cached: &CachedParse) -> Linkage {
        let mut words = vec!["LEFT-WALL".to_string()];
        words.extend(tagged.iter().map(|t| t.token.text.clone()));
        let token_map: Vec<Option<usize>> = std::iter::once(None)
            .chain((0..tagged.len()).map(Some))
            .collect();
        Linkage {
            words,
            token_map,
            links: Arc::clone(&cached.links),
            cost: cached.cost,
        }
    }

    fn parse_uncached(&self, tagged: &[TaggedToken]) -> Result<Linkage, ParseFailure> {
        // An already-raised deadline cancels before any search work; the
        // in-search fuel checks below only catch flags raised mid-parse.
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(ParseFailure::Cancelled);
            }
        }
        // Word 0 is the LEFT-WALL; words 1..=n are the sentence tokens.
        // Shapes (normalized, sorted, deduped, head-indexed disjunct tables)
        // are compiled once per dictionary; the only per-parse disjunct
        // state is the live bitmap maintained by `prune`.
        let mut shapes: Vec<&WordShape> = Vec::with_capacity(tagged.len() + 1);
        shapes.push(self.dict.wall_shape());
        for t in tagged {
            // A word with no disjuncts can never link: fail fast.
            match self.dict.shape_of(t) {
                Some(s) if !s.disjuncts.is_empty() => shapes.push(s),
                _ => return Err(ParseFailure::NoDisjuncts),
            }
        }
        let n = shapes.len();
        let mut scratch = self.scratch.borrow_mut();
        let ParseScratch { memo, arena, live } = &mut *scratch;
        if !prune(&shapes, live) {
            return Err(ParseFailure::NoDisjuncts);
        }
        memo.clear();
        arena.clear();
        let mut ctx = Ctx {
            shapes: &shapes,
            live: &*live,
            memo,
            arena,
            cancel: self.cancel.as_deref(),
            fuel: CANCEL_FUEL,
            cancelled: false,
        };
        // Top level: the wall's right connectors must cover the sentence;
        // the virtual right boundary at index n has no connectors.
        let mut best: Option<Sol> = None;
        for (di, d) in shapes[0].disjuncts.iter().enumerate() {
            if !ctx.live[0][di] || !d.left.is_empty() {
                continue;
            }
            let lref = ctx.list(0, di, Side::Right, 0);
            if let Some(sol) = ctx.best(0, n as u16, lref, ListRef::EMPTY) {
                let cost = sol.cost + d.cost;
                if better(&best, cost) {
                    best = Some(Sol {
                        cost,
                        links: sol.links,
                    });
                }
            }
        }
        if ctx.cancelled {
            return Err(ParseFailure::Cancelled);
        }
        let sol = best.ok_or(ParseFailure::NoLinkage)?;
        let mut links: Vec<Link> = Vec::new();
        flatten(ctx.arena, ctx.shapes, sol.links, &mut links);
        links.sort_by_key(|l| (l.left, l.right));
        let mut words = vec!["LEFT-WALL".to_string()];
        words.extend(tagged.iter().map(|t| t.token.text.clone()));
        let token_map: Vec<Option<usize>> = std::iter::once(None)
            .chain((0..tagged.len()).map(Some))
            .collect();
        Ok(Linkage {
            words,
            token_map,
            links: Arc::new(links),
            cost: sol.cost,
        })
    }

    /// Access the dictionary (diagnostics, tests).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Drops all cached parse structures (benchmarking, memory pressure).
    pub fn clear_cache(&self) {
        self.cache.borrow_mut().clear();
    }

    /// Number of cached parse structures.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Cache and timing counters since construction or the last reset.
    pub fn stats(&self) -> ParserStats {
        let mut stats = self.stats.get();
        stats.evictions = self.cache.borrow().evictions;
        stats
    }

    /// Zeroes the [`ParserStats`] counters (the cache itself is kept).
    pub fn reset_stats(&self) {
        self.stats.set(ParserStats::default());
        self.cache.borrow_mut().evictions = 0;
    }

    /// Null-link parsing (the original parser's "panic mode"): when no
    /// complete linkage exists, retry with up to `max_nulls` words left out
    /// of the linkage. Returns the best linkage over the *kept* words plus
    /// the token indices that went null. Fewer nulls always wins; ties break
    /// on linkage cost.
    ///
    /// Complexity is `C(n, k)` parses, so keep `max_nulls` small (1–2).
    pub fn parse_with_nulls(
        &self,
        tagged: &[TaggedToken],
        max_nulls: usize,
    ) -> Option<(Linkage, Vec<usize>)> {
        if let Some(linkage) = self.parse(tagged) {
            return Some((linkage, Vec::new()));
        }
        // Strip trailing punctuation once, as parse() does, so nulls are
        // spent on real words.
        let mut end = tagged.len();
        while end > 0 && tagged[end - 1].tag == cmr_postag::Tag::PUNCT {
            end -= 1;
        }
        let tagged = &tagged[..end];
        let n = tagged.len();
        for k in 1..=max_nulls.min(n.saturating_sub(1)) {
            let mut best: Option<(Linkage, Vec<usize>)> = None;
            let mut chosen = vec![0usize; k];
            combinations(n, k, &mut chosen, 0, 0, &mut |nulls: &[usize]| {
                let kept: Vec<TaggedToken> = tagged
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.contains(i))
                    .map(|(_, t)| t.clone())
                    .collect();
                let kept_idx: Vec<usize> = (0..n).filter(|i| !nulls.contains(i)).collect();
                if let Some(mut linkage) = self.parse(&kept) {
                    // Remap token indices back to the original sequence.
                    for t in linkage.token_map.iter_mut().flatten() {
                        *t = kept_idx[*t];
                    }
                    if best
                        .as_ref()
                        .map(|(b, _)| linkage.cost < b.cost)
                        .unwrap_or(true)
                    {
                        best = Some((linkage, nulls.to_vec()));
                    }
                }
            });
            if best.is_some() {
                return best;
            }
        }
        None
    }
}

/// The shareable cache entry for one parse outcome; failures keep their
/// reason so replays report the same [`ParseFailure`].
fn cache_entry(result: &Result<Linkage, ParseFailure>) -> ShapeEntry {
    match result {
        Ok(l) => Ok(CachedParse {
            links: Arc::clone(&l.links),
            cost: l.cost,
        }),
        Err(f) => Err(*f),
    }
}

/// Enumerates k-combinations of `0..n` into `chosen`, invoking `f` on each.
fn combinations(
    n: usize,
    k: usize,
    chosen: &mut Vec<usize>,
    depth: usize,
    start: usize,
    f: &mut impl FnMut(&[usize]),
) {
    if depth == k {
        f(chosen);
        return;
    }
    for i in start..n {
        chosen[depth] = i;
        combinations(n, k, chosen, depth + 1, i + 1, f);
    }
}

/// First-found-wins tie break: a candidate replaces the best only when
/// strictly cheaper (matching the original parser's `consider`).
fn better(best: &Option<Sol>, cost: f64) -> bool {
    best.as_ref().map(|b| cost < b.cost).unwrap_or(true)
}

/// Capacity + iterative pruning over the precompiled shapes, recorded in a
/// reusable live-disjunct bitmap (the shapes themselves are shared and
/// never copied). Capacity first: a word at position i has only i words to
/// its left and (n-1-i) to its right; disjuncts demanding more can never
/// complete. Then to fixpoint: kill any disjunct with a connector that no
/// live disjunct on the proper side could ever match. Returns `false` when
/// some word has no live disjunct left.
fn prune(shapes: &[&WordShape], live: &mut Vec<Vec<bool>>) -> bool {
    let n = shapes.len();
    if live.len() < n {
        live.resize_with(n, Vec::new);
    }
    for (i, shape) in shapes.iter().enumerate() {
        let row = &mut live[i];
        row.clear();
        row.extend(
            shape
                .disjuncts
                .iter()
                .map(|d| d.left.len() <= i && d.right.len() <= n - 1 - i),
        );
    }
    // Unique connectors available on each side, kept as one monotone list
    // per direction with per-word prefix cuts: word i sees right-pointing
    // connectors of words < i as `acc_r[..cut_r[i]]`, and left-pointing
    // ones of words > i as `acc_l[..cut_l[i]]`. Two flat vectors replace
    // the per-word accumulator clones of the previous implementation.
    let mut acc_r: Vec<&Connector> = Vec::new();
    let mut acc_l: Vec<&Connector> = Vec::new();
    let mut cut_r: Vec<usize> = vec![0; n];
    let mut cut_l: Vec<usize> = vec![0; n];
    loop {
        acc_r.clear();
        for (i, shape) in shapes.iter().enumerate() {
            cut_r[i] = acc_r.len();
            for (di, d) in shape.disjuncts.iter().enumerate() {
                if !live[i][di] {
                    continue;
                }
                for c in &d.right {
                    if !acc_r.contains(&c) {
                        acc_r.push(c);
                    }
                }
            }
        }
        acc_l.clear();
        for (i, shape) in shapes.iter().enumerate().rev() {
            cut_l[i] = acc_l.len();
            for (di, d) in shape.disjuncts.iter().enumerate() {
                if !live[i][di] {
                    continue;
                }
                for c in &d.left {
                    if !acc_l.contains(&c) {
                        acc_l.push(c);
                    }
                }
            }
        }
        let mut changed = false;
        for (i, shape) in shapes.iter().enumerate() {
            let right_avail = &acc_r[..cut_r[i]];
            let left_avail = &acc_l[..cut_l[i]];
            for (di, d) in shape.disjuncts.iter().enumerate() {
                if !live[i][di] {
                    continue;
                }
                let ok = d
                    .left
                    .iter()
                    .all(|c| right_avail.iter().any(|rc| rc.matches(c)))
                    && d.right
                        .iter()
                        .all(|c| left_avail.iter().any(|lc| c.matches(lc)));
                if !ok {
                    live[i][di] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    live[..n].iter().all(|row| row.iter().any(|&b| b))
}

/// Which side of a disjunct a list reference points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Side {
    Left,
    Right,
}

/// A reference to a suffix of one disjunct's connector list, packed for memo
/// keys. `EMPTY` is the canonical empty list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ListRef(u64);

impl ListRef {
    const EMPTY: ListRef = ListRef(u64::MAX);

    fn pack(word: u16, disj: u16, side: Side, offset: u8) -> ListRef {
        let s = match side {
            Side::Left => 0u64,
            Side::Right => 1u64,
        };
        ListRef((word as u64) << 32 | (disj as u64) << 16 | s << 8 | offset as u64)
    }

    fn unpack(self) -> (usize, usize, Side, usize) {
        let w = (self.0 >> 32) as usize & 0xFFFF;
        let d = (self.0 >> 16) as usize & 0xFFFF;
        let side = if (self.0 >> 8) & 1 == 0 {
            Side::Left
        } else {
            Side::Right
        };
        let off = (self.0 & 0xFF) as usize;
        (w, d, side, off)
    }
}

/// Sentinel for "no links" in the arena (the empty leaf region).
const NIL: u32 = u32::MAX;

/// Cost-and-links solution for a region. Links are a node index into the
/// per-parse arena, so combining sub-solutions is an arena push and a `Sol`
/// is `Copy` — the memo stores and returns plain values.
#[derive(Debug, Clone, Copy)]
struct Sol {
    cost: f64,
    links: u32,
}

/// Arena node for the link set of a partial solution. A `Leaf` records the
/// two connector-list heads that matched; the label string is resolved from
/// them at flatten time, only for the winning solution — candidate links
/// that lose the cost race never allocate a label.
#[derive(Debug, Clone, Copy)]
enum ANode {
    Leaf {
        left: u16,
        right: u16,
        /// Right-pointing list on the left word; its head names the link.
        a: ListRef,
        /// Left-pointing list on the right word.
        b: ListRef,
    },
    Cat(u32, u32),
}

fn flatten(arena: &[ANode], shapes: &[&WordShape], idx: u32, out: &mut Vec<Link>) {
    if idx == NIL {
        return;
    }
    match arena[idx as usize] {
        ANode::Leaf { left, right, a, b } => {
            let ca = head_of(shapes, a).expect("leaf stores a matched head");
            let cb = head_of(shapes, b).expect("leaf stores a matched head");
            out.push(Link {
                left: left as usize,
                right: right as usize,
                label: ca.link_label(cb),
            });
        }
        ANode::Cat(x, y) => {
            flatten(arena, shapes, x, out);
            flatten(arena, shapes, y, out);
        }
    }
}

/// A minimal Fx-style hasher for the memo: the keys are already
/// well-mixed packed integers, and SipHash dominates the profile otherwise.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(K);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// Reusable per-parser storage for uncached parses: the region memo, the
/// link arena, and the live-disjunct bitmap. Cleared (capacity kept) at the
/// start of each parse, so steady-state parsing stops allocating.
#[derive(Debug, Clone, Default)]
struct ParseScratch {
    memo: HashMap<(u16, u16, ListRef, ListRef), Option<Sol>, FxBuild>,
    arena: Vec<ANode>,
    live: Vec<Vec<bool>>,
}

struct Ctx<'a> {
    shapes: &'a [&'a WordShape],
    live: &'a [Vec<bool>],
    memo: &'a mut HashMap<(u16, u16, ListRef, ListRef), Option<Sol>, FxBuild>,
    arena: &'a mut Vec<ANode>,
    /// External cancellation flag, polled every `CANCEL_FUEL` region calls.
    cancel: Option<&'a AtomicBool>,
    /// Countdown to the next `cancel` poll (atomic loads in the inner
    /// recursion would cost more than the search step itself).
    fuel: u32,
    /// Latched once the flag is observed: the search unwinds returning
    /// `None` everywhere, and the caller maps that to `Cancelled`.
    cancelled: bool,
}

/// Region-search calls between cancellation polls.
const CANCEL_FUEL: u32 = 1024;

impl<'a> Ctx<'a> {
    /// Builds a list reference, canonicalizing empties.
    fn list(&self, word: usize, disj: usize, side: Side, offset: usize) -> ListRef {
        let d = &self.shapes[word].disjuncts[disj];
        let len = match side {
            Side::Left => d.left.len(),
            Side::Right => d.right.len(),
        };
        if offset >= len {
            ListRef::EMPTY
        } else {
            ListRef::pack(word as u16, disj as u16, side, offset as u8)
        }
    }

    /// Head connector of a list reference. The returned borrow is tied to
    /// the shape tables (`'a`), not to `self`, so it survives `&mut self`
    /// recursion.
    fn head(&self, r: ListRef) -> Option<&'a Connector> {
        head_of(self.shapes, r)
    }

    fn node(&mut self, node: ANode) -> u32 {
        self.arena.push(node);
        (self.arena.len() - 1) as u32
    }

    fn leaf(&mut self, left: u16, right: u16, a: ListRef, b: ListRef) -> u32 {
        self.node(ANode::Leaf { left, right, a, b })
    }

    fn cat(&mut self, x: u32, y: u32) -> u32 {
        self.node(ANode::Cat(x, y))
    }

    fn cat3(&mut self, a: u32, b: u32, c: u32) -> u32 {
        let bc = self.cat(b, c);
        self.cat(a, bc)
    }

    fn cat4(&mut self, a: u32, b: u32, c: u32, d: u32) -> u32 {
        let ab = self.cat(a, b);
        let cd = self.cat(c, d);
        self.cat(ab, cd)
    }

    /// The list minus its head.
    fn advance(&self, r: ListRef) -> ListRef {
        debug_assert_ne!(r, ListRef::EMPTY);
        let (w, d, side, off) = r.unpack();
        self.list(w, d, side, off + 1)
    }

    /// Successor options after the head matched once: always the advanced
    /// list; additionally the unchanged list when the head is a
    /// multi-connector (it may match again, necessarily nearer).
    fn successors(&self, r: ListRef) -> [Option<ListRef>; 2] {
        let multi = self.head(r).map(|c| c.multi).unwrap_or(false);
        [Some(self.advance(r)), if multi { Some(r) } else { None }]
    }

    /// Minimum-cost solution for the region `(L, R, l, r)`, or `None` if no
    /// linkage completes it.
    fn best(&mut self, left: u16, right: u16, l: ListRef, r: ListRef) -> Option<Sol> {
        if self.cancelled {
            return None;
        }
        if let Some(flag) = self.cancel {
            self.fuel -= 1;
            if self.fuel == 0 {
                self.fuel = CANCEL_FUEL;
                if flag.load(Ordering::Relaxed) {
                    self.cancelled = true;
                    return None;
                }
            }
        }
        if left + 1 == right {
            return if l == ListRef::EMPTY && r == ListRef::EMPTY {
                Some(Sol {
                    cost: 0.0,
                    links: NIL,
                })
            } else {
                None
            };
        }
        if l == ListRef::EMPTY && r == ListRef::EMPTY {
            // Words remain inside but nothing connects them to L or R.
            return None;
        }
        let key = (left, right, l, r);
        if let Some(cached) = self.memo.get(&key) {
            return *cached;
        }
        // Reserve the slot to guard against accidental re-entry (the
        // recursion strictly shrinks regions, so true cycles are impossible).
        self.memo.insert(key, None);

        let mut best: Option<Sol> = None;
        let shapes = self.shapes;
        let live = self.live;
        if l != ListRef::EMPTY {
            let head_base = self.head(l).expect("non-empty list").base_sym();
            for w in (left + 1)..right {
                let Some(cands) = shapes[w as usize].by_left_head.get(&head_base) else {
                    continue;
                };
                for &di in cands {
                    if !live[w as usize][di as usize] {
                        continue;
                    }
                    self.try_left_anchored(left, right, l, r, w, di as usize, &mut best);
                }
            }
        } else {
            let head_base = self.head(r).expect("non-empty list").base_sym();
            for w in (left + 1)..right {
                let Some(cands) = shapes[w as usize].by_right_head.get(&head_base) else {
                    continue;
                };
                for &di in cands {
                    if !live[w as usize][di as usize] {
                        continue;
                    }
                    self.try_right_anchored(left, right, r, w, di as usize, &mut best);
                }
            }
        }
        self.memo.insert(key, best);
        best
    }

    /// Case: `l` non-empty. `W` is the word `l`'s head links to; the link
    /// uses `W`'s farthest-left connector. `W` may additionally link to `R`.
    #[allow(clippy::too_many_arguments)]
    fn try_left_anchored(
        &mut self,
        left: u16,
        right: u16,
        l: ListRef,
        r: ListRef,
        w: u16,
        di: usize,
        best: &mut Option<Sol>,
    ) {
        let dl = self.list(w as usize, di, Side::Left, 0);
        let linkable = match (self.head(l), self.head(dl)) {
            (Some(a), Some(b)) => a.matches(b),
            _ => false,
        };
        if !linkable {
            return;
        }
        let d_cost = self.shapes[w as usize].disjuncts[di].cost;
        let link_lw_cost = (w - left) as f64 * LENGTH_PENALTY;
        let dr = self.list(w as usize, di, Side::Right, 0);

        for l_next in self.successors(l).into_iter().flatten() {
            for dl_next in self.successors(dl).into_iter().flatten() {
                let Some(inner_left) = self.best(left, w, l_next, dl_next) else {
                    continue;
                };
                // Sub-case A: W does not link directly to R.
                if let Some(inner_right) = self.best(w, right, dr, r) {
                    let cost = d_cost + link_lw_cost + inner_left.cost + inner_right.cost;
                    if better(best, cost) {
                        let lw = self.leaf(left, w, l, dl);
                        let links = self.cat3(lw, inner_left.links, inner_right.links);
                        *best = Some(Sol { cost, links });
                    }
                }
                // Sub-case B: W also links to R.
                let wr_linkable = match (self.head(dr), self.head(r)) {
                    (Some(a), Some(b)) => a.matches(b),
                    _ => false,
                };
                if !wr_linkable {
                    continue;
                }
                let link_wr_cost = (right - w) as f64 * LENGTH_PENALTY;
                for dr_next in self.successors(dr).into_iter().flatten() {
                    for r_next in self.successors(r).into_iter().flatten() {
                        let Some(inner_right) = self.best(w, right, dr_next, r_next) else {
                            continue;
                        };
                        let cost = d_cost
                            + link_lw_cost
                            + link_wr_cost
                            + inner_left.cost
                            + inner_right.cost;
                        if better(best, cost) {
                            let lw = self.leaf(left, w, l, dl);
                            let wr = self.leaf(w, right, dr, r);
                            let links = self.cat4(lw, wr, inner_left.links, inner_right.links);
                            *best = Some(Sol { cost, links });
                        }
                    }
                }
            }
        }
    }

    /// Case: `l` empty, `r` non-empty. `W` is the word `r`'s head links to,
    /// via `W`'s farthest-right connector; `W` cannot link to `L`.
    fn try_right_anchored(
        &mut self,
        left: u16,
        right: u16,
        r: ListRef,
        w: u16,
        di: usize,
        best: &mut Option<Sol>,
    ) {
        let dr = self.list(w as usize, di, Side::Right, 0);
        let linkable = match (self.head(dr), self.head(r)) {
            (Some(a), Some(b)) => a.matches(b),
            _ => false,
        };
        if !linkable {
            return;
        }
        let d_cost = self.shapes[w as usize].disjuncts[di].cost;
        let link_wr_cost = (right - w) as f64 * LENGTH_PENALTY;
        let dl = self.list(w as usize, di, Side::Left, 0);

        for dr_next in self.successors(dr).into_iter().flatten() {
            for r_next in self.successors(r).into_iter().flatten() {
                let Some(inner_right) = self.best(w, right, dr_next, r_next) else {
                    continue;
                };
                let Some(inner_left) = self.best(left, w, ListRef::EMPTY, dl) else {
                    continue;
                };
                let cost = d_cost + link_wr_cost + inner_left.cost + inner_right.cost;
                if better(best, cost) {
                    let wr = self.leaf(w, right, dr, r);
                    let links = self.cat3(wr, inner_left.links, inner_right.links);
                    *best = Some(Sol { cost, links });
                }
            }
        }
    }
}

/// Head connector of a list reference, resolved against the shape tables.
fn head_of<'a>(shapes: &[&'a WordShape], r: ListRef) -> Option<&'a Connector> {
    if r == ListRef::EMPTY {
        return None;
    }
    let (w, d, side, off) = r.unpack();
    let disjunct = &shapes[w].disjuncts[d];
    let list = match side {
        Side::Left => &disjunct.left,
        Side::Right => &disjunct.right,
    };
    list.get(off)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Option<Linkage> {
        LinkParser::new().parse_sentence(text)
    }

    fn try_parse_text(parser: &LinkParser, text: &str) -> Result<Linkage, ParseFailure> {
        let tokens = tokenize(text);
        let tagged = PosTagger::new().tag(&tokens);
        parser.try_parse(&tagged)
    }

    #[test]
    fn failure_reasons_are_typed() {
        let parser = LinkParser::new();
        assert_eq!(try_parse_text(&parser, "").err(), Some(ParseFailure::Empty));
        assert_eq!(
            try_parse_text(&parser, "...").err(),
            Some(ParseFailure::Empty),
            "punctuation-only sentences strip to empty"
        );
        let long = "pulse and ".repeat(30);
        assert!(matches!(
            try_parse_text(&parser, &long),
            Err(ParseFailure::TooLong { words, max })
                if words > max && max == MAX_WORDS
        ));
        // A colon has no disjuncts: the fragment case of the paper.
        assert_eq!(
            try_parse_text(&parser, "Blood pressure: 144/90").err(),
            Some(ParseFailure::NoDisjuncts)
        );
    }

    #[test]
    fn raised_cancel_flag_aborts_parse_and_skips_caches() {
        let mut parser = LinkParser::new();
        let flag = Arc::new(AtomicBool::new(true));
        parser.set_cancel_flag(Arc::clone(&flag));
        let text = "The patient is a smoker.";
        assert_eq!(
            try_parse_text(&parser, text).err(),
            Some(ParseFailure::Cancelled)
        );
        assert_eq!(
            parser.cache_len(),
            0,
            "cancelled outcomes must not be cached"
        );
        // Clearing the flag restores normal behaviour for the same shape.
        flag.store(false, Ordering::Relaxed);
        assert!(try_parse_text(&parser, text).is_ok());
        assert_eq!(parser.cache_len(), 1);
    }

    #[test]
    fn cancelled_never_enters_the_shared_cache() {
        let shared = SharedParseCache::new();
        let mut parser = LinkParser::new();
        parser.set_shared_cache(shared.clone());
        let flag = Arc::new(AtomicBool::new(true));
        parser.set_cancel_flag(Arc::clone(&flag));
        let text = "The patient is a smoker.";
        assert_eq!(
            try_parse_text(&parser, text).err(),
            Some(ParseFailure::Cancelled)
        );
        flag.store(false, Ordering::Relaxed);
        // A second worker sharing the cache must parse fresh, not replay
        // the cancellation.
        let mut peer = LinkParser::new();
        peer.set_shared_cache(shared);
        assert!(try_parse_text(&peer, text).is_ok());
    }

    #[test]
    fn failure_reason_survives_the_caches() {
        let parser = LinkParser::new();
        let shared = SharedParseCache::new();
        let mut warm = LinkParser::new();
        warm.set_shared_cache(shared.clone());

        for p in [&parser, &warm] {
            let first = try_parse_text(p, "Blood pressure: 144/90").err();
            let replay = try_parse_text(p, "Blood pressure: 150/95").err();
            assert_eq!(first, Some(ParseFailure::NoDisjuncts));
            assert_eq!(replay, first, "cached replay keeps the reason");
        }
        // The second parser's negative entry reached the shared map too.
        assert!(!shared.is_empty());
    }

    fn labels(linkage: &Linkage) -> Vec<String> {
        linkage.links.iter().map(|l| base_label(&l.label)).collect()
    }

    fn base_label(label: &str) -> String {
        label
            .chars()
            .take_while(|c| c.is_ascii_uppercase())
            .collect()
    }

    /// Every linkage must be planar, connected, and cover every word.
    fn check_invariants(linkage: &Linkage) {
        let n = linkage.words.len();
        // Planarity: no two links cross.
        for (i, a) in linkage.links.iter().enumerate() {
            for b in &linkage.links[i + 1..] {
                let crossing = a.left < b.left && b.left < a.right && a.right < b.right
                    || b.left < a.left && a.left < b.right && b.right < a.right;
                assert!(!crossing, "crossing links {a:?} {b:?}");
            }
        }
        // Connectivity over all words.
        let mut adj = vec![Vec::new(); n];
        for l in linkage.links.iter() {
            assert!(l.left < l.right && l.right < n, "link bounds {l:?}");
            adj[l.left].push(l.right);
            adj[l.right].push(l.left);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "disconnected words in {:?}",
            linkage.words
        );
    }

    #[test]
    fn figure1_sentence_parses() {
        // The paper's Figure 1 example (first clause).
        let linkage = parse("Blood pressure is 144/90.").expect("parses");
        check_invariants(&linkage);
        let lbl = labels(&linkage);
        assert!(lbl.contains(&"S".to_string()), "subject link in {lbl:?}");
        assert!(lbl.contains(&"O".to_string()), "object link in {lbl:?}");
        assert!(lbl.contains(&"AN".to_string()), "compound link in {lbl:?}");
        // Wall + AN + S + O = 4 links, as the paper counts.
        assert_eq!(linkage.links.len(), 4);
    }

    #[test]
    fn full_vitals_sentence_parses() {
        let linkage = parse(
            "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.",
        )
        .expect("parses");
        check_invariants(&linkage);
    }

    #[test]
    fn quit_smoking_parses() {
        let linkage = parse("She quit smoking five years ago.").expect("parses");
        check_invariants(&linkage);
        let lbl = labels(&linkage);
        assert!(lbl.contains(&"S".to_string()));
    }

    #[test]
    fn never_smoked_parses() {
        let linkage = parse("She has never smoked.").expect("parses");
        check_invariants(&linkage);
        let lbl = labels(&linkage);
        assert!(
            lbl.contains(&"T".to_string()),
            "have-participle link in {lbl:?}"
        );
    }

    #[test]
    fn currently_a_smoker_parses() {
        let linkage = parse("She is currently a smoker.").expect("parses");
        check_invariants(&linkage);
    }

    #[test]
    fn fragment_with_colon_fails() {
        // The paper's canonical fallback trigger.
        assert!(parse("Blood pressure: 144/90.").is_none());
    }

    #[test]
    fn nominal_fragment_parses_via_wn() {
        let linkage = parse("Menarche at age 10.").expect("parses");
        check_invariants(&linkage);
        let full: Vec<&str> = linkage.links.iter().map(|l| l.label.as_str()).collect();
        assert!(full.contains(&"Wn"), "{full:?}");
    }

    #[test]
    fn empty_input_fails() {
        assert!(parse("").is_none());
        assert!(parse(".").is_none());
    }

    #[test]
    fn word_salad_fails() {
        assert!(parse("of of of the the.").is_none());
    }

    #[test]
    fn relative_clause_parses() {
        let linkage = parse("She is a woman who underwent a mammogram.").expect("parses");
        check_invariants(&linkage);
    }

    #[test]
    fn coordination_parses() {
        let linkage = parse("She has diabetes and hypertension.").expect("parses");
        check_invariants(&linkage);
        let lbl = labels(&linkage);
        assert!(lbl.contains(&"MX".to_string()), "{lbl:?}");
    }

    #[test]
    fn linkage_words_include_wall() {
        let linkage = parse("She smokes.").expect("parses");
        assert_eq!(linkage.words[0], "LEFT-WALL");
        assert_eq!(linkage.token_map[0], None);
        assert_eq!(linkage.token_map[1], Some(0));
    }

    #[test]
    fn costs_prefer_declarative_over_fragment() {
        let l = parse("She smokes.").expect("parses");
        let full: Vec<&str> = l.links.iter().map(|x| x.label.as_str()).collect();
        assert!(full.contains(&"Wd"), "{full:?}");
    }

    #[test]
    fn null_parsing_zero_nulls_when_parseable() {
        let parser = LinkParser::new();
        let tokens = cmr_text::tokenize("She smokes.");
        let tagged = cmr_postag::PosTagger::new().tag(&tokens);
        let (linkage, nulls) = parser.parse_with_nulls(&tagged, 2).expect("parses");
        assert!(nulls.is_empty());
        assert_eq!(linkage.words[1], "She");
    }

    #[test]
    fn null_parsing_skips_the_blocking_token() {
        // The colon has no disjuncts; with one null allowed, the rest links.
        let parser = LinkParser::new();
        let tokens = cmr_text::tokenize("Vitals : blood pressure is 144/90.");
        let tagged = cmr_postag::PosTagger::new().tag(&tokens);
        assert!(
            parser.parse(&tagged).is_none(),
            "full sequence cannot parse"
        );
        let (linkage, nulls) = parser
            .parse_with_nulls(&tagged, 2)
            .expect("null parse succeeds");
        check_invariants(&linkage);
        // The colon (token index 1) must be among the nulls.
        assert!(nulls.contains(&1), "{nulls:?}");
        // Token indices in the linkage refer to the original sequence.
        let word_tokens: Vec<usize> = linkage.token_map.iter().flatten().copied().collect();
        assert!(word_tokens.contains(&3), "pressure kept");
        assert!(!word_tokens.contains(&1), "colon not in linkage");
    }

    #[test]
    fn shared_cache_spares_the_second_parser_the_parse() {
        let shared = SharedParseCache::new();
        let mut a = LinkParser::new();
        a.set_shared_cache(shared.clone());
        let mut b = LinkParser::new();
        b.set_shared_cache(shared.clone());

        let first = a
            .parse_sentence("Blood pressure is 144/90.")
            .expect("parses");
        assert_eq!(a.stats().cache_misses, 1);
        assert_eq!(shared.len(), 1);

        // Same shape, different values: the second parser answers from the
        // shared map without running the region parser.
        let second = b
            .parse_sentence("Blood pressure is 120/80.")
            .expect("parses");
        assert_eq!(b.stats().cache_misses, 0);
        assert_eq!(b.stats().cache_hits, 1);
        assert_eq!(first.links, second.links);

        // The shared hit seeded b's local cache: the next lookup stays local.
        b.parse_sentence("Blood pressure is 118/76.")
            .expect("parses");
        assert_eq!(b.stats().cache_hits, 2);
        assert_eq!(b.cache_len(), 1);

        // Failed parses are shared too (same shape, different values).
        assert!(a.parse_sentence("Blood pressure: 144/90.").is_none());
        assert!(b.parse_sentence("Blood pressure: 99/60.").is_none());
        assert_eq!(b.stats().cache_misses, 0, "negative entry shared");
    }

    #[test]
    fn shared_cache_is_send_and_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedParseCache>();
    }

    #[test]
    fn panic_while_holding_a_shard_leaves_the_cache_usable() {
        // A worker unwinding mid-extraction with a stripe guard in hand
        // poisons that stripe's mutex. `lock_shard` recovers (the map is
        // plain data, valid at every unlock point), so the surviving
        // workers keep reading and writing the same stripe — and in
        // lockcheck builds the recovery is not itself a violation.
        let shared = SharedParseCache::with_shards(64, 1); // one stripe: the poisoned one
        let sig: Arc<[Sym]> = Arc::from(vec![cmr_text::intern("\u{1}poison-test")].as_slice());

        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.lock_shard(shared.shard_for(&sig));
            panic!("worker died mid-extraction");
        }));
        assert!(unwound.is_err());

        // Writes still land…
        shared
            .lock_shard(shared.shard_for(&sig))
            .insert(Arc::clone(&sig), Err(ParseFailure::NoLinkage));
        // …and later lookups (and a full parse through the poisoned
        // stripe) still answer.
        assert!(shared
            .lock_shard(shared.shard_for(&sig))
            .get(&sig[..])
            .is_some());
        let mut parser = LinkParser::new();
        parser.set_shared_cache(shared.clone());
        assert!(parser.parse_sentence("Blood pressure is 144/90.").is_some());

        #[cfg(feature = "lockcheck")]
        {
            cmr_sync::lockcheck::set_mode(cmr_sync::lockcheck::Mode::Record);
            assert!(
                cmr_sync::lockcheck::take_violations().is_empty(),
                "poison recovery must be silent at the S-layer"
            );
        }
    }

    #[test]
    fn null_parsing_gives_up_beyond_budget() {
        let parser = LinkParser::new();
        let tokens = cmr_text::tokenize(": ; : ;");
        let tagged = cmr_postag::PosTagger::new().tag(&tokens);
        assert!(parser.parse_with_nulls(&tagged, 1).is_none());
    }

    #[test]
    fn shape_cache_second_chance_eviction() {
        fn key(n: usize) -> Sym {
            cmr_text::intern(&format!("\u{1}shape-cache-test-{n}"))
        }
        fn sig(n: usize) -> Arc<[Sym]> {
            Arc::from(vec![key(n)].as_slice())
        }
        let entry: ShapeEntry = Err(ParseFailure::NoLinkage);
        let mut cache = ShapeCache::with_limit(4); // gen_cap = 2
        cache.insert(sig(0), entry.clone());
        cache.insert(sig(1), entry.clone());
        // Hot is full; the next insert rotates (empty cold, no evictions).
        cache.insert(sig(2), entry.clone());
        assert_eq!(cache.evictions, 0);
        // A cold hit gets its second chance: promoted back into hot.
        assert!(cache.get(&[key(0)]).is_some());
        // Hot is full again ({s2, s0}); this rotation discards the cold
        // leftover s1, which was never re-touched.
        cache.insert(sig(3), entry);
        assert_eq!(cache.evictions, 1);
        assert!(cache.get(&[key(1)]).is_none(), "s1 evicted");
        assert!(
            cache.get(&[key(0)]).is_some(),
            "promoted entry survives the rotation"
        );
        assert!(cache.len() <= 4);
    }

    /// Acceptance gate: a steady-state working set that fits in half the
    /// cache keeps hitting (>90%) while a stream of one-off shapes churns
    /// past — the old wholesale `clear()` dropped the working set whenever
    /// the strays filled the map.
    #[test]
    fn eviction_keeps_steady_state_working_set() {
        let tagger = PosTagger::new();
        let mut parser = LinkParser::new();
        parser.set_cache_capacity(16); // gen_cap = 8
        let hot: Vec<Vec<TaggedToken>> = (1..=6)
            .map(|k| tagger.tag(&tokenize(&"of ".repeat(k))))
            .collect();
        for shape in &hot {
            let _ = parser.try_parse(shape); // warm the working set
        }
        let mut hot_lookups = 0u64;
        let mut hot_hits = 0u64;
        for round in 0..30usize {
            // One never-repeated shape per round churns the cache.
            let cold = tagger.tag(&tokenize(&"the ".repeat(round + 1)));
            let _ = parser.try_parse(&cold);
            let before = parser.stats().cache_hits;
            for shape in &hot {
                let _ = parser.try_parse(shape);
            }
            hot_lookups += hot.len() as u64;
            hot_hits += parser.stats().cache_hits - before;
        }
        let rate = hot_hits as f64 / hot_lookups as f64;
        assert!(rate > 0.9, "hot working-set hit rate {rate} <= 0.9");
        assert!(parser.stats().evictions > 0, "churn must evict strays");
        assert!(parser.cache_len() <= 16, "cache bounded by its capacity");
    }
}

/// Concurrency model for the shared parse cache, built only under
/// `RUSTFLAGS="--cfg loom"` (the CI loom job). Three properties of the
/// engine's pool-wide lock-striped cache are modeled:
///
/// 1. **No double parse**: the shape's stripe lock is held across the
///    fallback parse on a shared miss (see `try_parse`), and a shape's
///    stripe is a pure function of its signature — so N workers racing
///    on a cold shape run the O(n³) parser exactly once.
/// 2. **No lost publication across shards**: an insert on any stripe is
///    visible to every later lookup from any worker, regardless of which
///    shards the two workers touched in between.
/// 3. **Bounded, lossless accounting**: under concurrent inserts each
///    two-generation shard never exceeds its capacity, and every entry is
///    either still cached or counted by the eviction counter — rotation
///    cannot silently lose an insert.
#[cfg(all(test, loom))]
mod loom_model {
    use super::*;
    use loom::sync::atomic::{AtomicUsize, Ordering};
    use loom::thread;

    fn sig(test: &str, n: usize) -> Arc<[Sym]> {
        // The \u{1} prefix keeps model keys out of any real class symbol.
        let sym = cmr_text::intern(&format!("\u{1}loom-{test}-{n}"));
        Arc::from(vec![sym].as_slice())
    }

    /// The engine's shared-miss path, reduced to its locking skeleton:
    /// pick the shape's stripe, then look up and (on a miss) parse +
    /// insert under one stripe-lock acquisition.
    fn lookup_or_parse(shared: &SharedParseCache, sig: Arc<[Sym]>, parses: &AtomicUsize) {
        let shard = shared.shard_for(&sig);
        let mut map = shared.lock_shard(shard);
        if map.get(&sig[..]).is_some() {
            shared.inner.hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        parses.fetch_add(1, Ordering::SeqCst); // "the O(n³) parse"
        map.insert(sig, Err(ParseFailure::NoLinkage));
    }

    #[test]
    fn cold_start_parses_each_shape_exactly_once() {
        loom::model(|| {
            const SHAPES: usize = 3;
            let shared = SharedParseCache::with_capacity(1024);
            let parses: Arc<[AtomicUsize]> =
                Arc::from((0..SHAPES).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let shared = shared.clone();
                    let parses = Arc::clone(&parses);
                    thread::spawn(move || {
                        for n in 0..SHAPES {
                            lookup_or_parse(&shared, sig("once", n), &parses[n]);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("model worker");
            }
            for (n, count) in parses.iter().enumerate() {
                assert_eq!(count.load(Ordering::SeqCst), 1, "shape {n} parsed twice");
            }
            assert_eq!(shared.len(), SHAPES);
        });
    }

    #[test]
    fn no_lost_publication_across_shards() {
        loom::model(|| {
            // Enough distinct shapes to land on several of the stripes.
            const SHAPES: usize = 5;
            let shared = SharedParseCache::with_capacity(1024);
            let parses: Arc<[AtomicUsize]> =
                Arc::from((0..SHAPES).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
            // Worker A publishes shapes in ascending order, worker B in
            // descending order, so the two cross on different shards in
            // every interleaving. Every publication must be observed:
            // exactly-once parsing plus a full final map means no insert
            // was lost between stripes.
            let workers: Vec<_> = [false, true]
                .into_iter()
                .map(|reverse| {
                    let shared = shared.clone();
                    let parses = Arc::clone(&parses);
                    thread::spawn(move || {
                        for i in 0..SHAPES {
                            let n = if reverse { SHAPES - 1 - i } else { i };
                            lookup_or_parse(&shared, sig("publish", n), &parses[n]);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("model worker");
            }
            for (n, count) in parses.iter().enumerate() {
                assert_eq!(count.load(Ordering::SeqCst), 1, "shape {n} parsed twice");
            }
            assert_eq!(shared.len(), SHAPES, "a publication was lost");
        });
    }

    #[test]
    fn concurrent_inserts_stay_bounded_and_accounted() {
        loom::model(|| {
            const PER_WORKER: usize = 8;
            // One stripe: the bound under test is the two-generation
            // shard map itself, so pin all keys onto a single shard.
            let shared = SharedParseCache::with_shards(4, 1); // gen_cap = 2
            let workers: Vec<_> = (0..2)
                .map(|w| {
                    let shared = shared.clone();
                    thread::spawn(move || {
                        for n in 0..PER_WORKER {
                            let key = sig("bound", w * PER_WORKER + n);
                            lookup_or_parse(&shared, Arc::clone(&key), &AtomicUsize::new(0));
                            // Re-touching promotes; must never panic or lose.
                            let shard = shared.shard_for(&key);
                            let _ = shared.lock_shard(shard).get(&key[..]);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("model worker");
            }
            let len = shared.len() as u64;
            assert!(len <= 4, "two-generation map exceeded its capacity: {len}");
            // Every distinct insert is cached or counted as evicted.
            assert_eq!(
                shared.evictions() + len,
                (2 * PER_WORKER) as u64,
                "rotation lost an insert"
            );
        });
    }
}
