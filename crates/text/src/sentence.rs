//! Sentence splitting.
//!
//! Dictated clinical notes are prose with clinical abbreviations (`Dr.`,
//! `Ms.`, `p.o.`) and decimal numbers (`98.3`); a naive split on `.` breaks
//! both. The splitter works on raw text and returns spans, so sentence
//! boundaries always map back to source offsets.

use crate::span::Span;

/// A sentence: its span in the source and the trimmed text slice bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Span of the sentence in the source, excluding surrounding whitespace.
    pub span: Span,
}

impl Sentence {
    /// The sentence text.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        self.span.slice(source)
    }
}

/// Abbreviations whose trailing period does not end a sentence.
/// Lower-cased, without the final period.
const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "st", "jr", "sr", "vs", "etc", "e.g", "i.e", "approx", "dept",
    "min", "hr", "wk", "mo", "yr", "fig", "no", "pt", "q.d", "b.i.d", "t.i.d", "p.o", "a.m", "p.m",
];

fn is_abbreviation(text: &str, period_idx: usize) -> bool {
    // Walk back over the word (letters and internal periods) preceding the
    // period at `period_idx`.
    let bytes = text.as_bytes();
    let mut start = period_idx;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_ascii_alphabetic() || c == '.' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == period_idx {
        return false;
    }
    let word = text[start..period_idx].to_lowercase();
    ABBREVIATIONS.contains(&word.as_str())
        // Single capital letter initials: "Ari D. Brooks".
        || (period_idx - start == 1 && (bytes[start] as char).is_ascii_uppercase())
}

/// Splits `text` into sentences, returning their spans.
///
/// A sentence ends at `.`, `!` or `?` when the terminator is
///
/// * not inside a decimal number (`98.3`),
/// * not attached to a known abbreviation or single-letter initial,
/// * followed by whitespace-then-uppercase/digit, or end of input.
///
/// Newlines that separate obviously distinct lines (e.g. the one-line
/// sections of a semi-structured record) also split when the line does not
/// end in a continuation character.
pub fn split_sentences(text: &str) -> Vec<Sentence> {
    let bytes = text.as_bytes();
    let mut sentences = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let mut boundary = false;
        match c {
            '.' => {
                let prev_digit = i > 0 && bytes[i - 1].is_ascii_digit();
                let next_digit = i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit();
                let decimal = prev_digit && next_digit;
                if !decimal && !is_abbreviation(text, i) && followed_by_break(bytes, i) {
                    boundary = true;
                }
            }
            '!' | '?' if followed_by_break(bytes, i) => {
                boundary = true;
            }
            '\n' => {
                // Hard line break: treat as a boundary if the line has content.
                boundary = true;
            }
            _ => {}
        }
        if boundary {
            let end = i + if c == '\n' { 0 } else { 1 };
            push_trimmed(text, start, end, &mut sentences);
            start = i + 1;
        }
        i += 1;
    }
    push_trimmed(text, start, bytes.len(), &mut sentences);
    sentences
}

/// True when the terminator at `i` is followed by whitespace + an
/// uppercase/digit start, or ends the input. This keeps "q.d. dosing"
/// unsplit while splitting "distress.  Vitals".
fn followed_by_break(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j >= bytes.len() {
        return true;
    }
    if !(bytes[j] as char).is_ascii_whitespace() {
        return false;
    }
    while j < bytes.len() && (bytes[j] as char).is_ascii_whitespace() {
        j += 1;
    }
    if j >= bytes.len() {
        return true;
    }
    let c = bytes[j] as char;
    c.is_ascii_uppercase() || c.is_ascii_digit()
}

fn push_trimmed(text: &str, start: usize, end: usize, out: &mut Vec<Sentence>) {
    if start >= end {
        return;
    }
    let slice = &text[start..end];
    let trimmed_start = start + (slice.len() - slice.trim_start().len());
    let trimmed_end = end - (slice.len() - slice.trim_end().len());
    if trimmed_start < trimmed_end {
        out.push(Sentence {
            span: Span::new(trimmed_start, trimmed_end),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<&str> {
        split_sentences(src).iter().map(|s| s.text(src)).collect()
    }

    #[test]
    fn basic_split() {
        let src = "She quit smoking five years ago. She denies alcohol use.";
        assert_eq!(
            texts(src),
            vec![
                "She quit smoking five years ago.",
                "She denies alcohol use."
            ]
        );
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        let src = "Temperature of 98.3, and weight of 154 pounds.";
        assert_eq!(texts(src).len(), 1);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let src = "Seen by Dr. Brooks today. Follow up next week.";
        assert_eq!(
            texts(src),
            vec!["Seen by Dr. Brooks today.", "Follow up next week."]
        );
    }

    #[test]
    fn initials_do_not_split() {
        let src = "Referred by Ari D. Brooks for evaluation.";
        assert_eq!(texts(src).len(), 1);
    }

    #[test]
    fn newlines_split() {
        let src = "Menarche at age 10\nGravida 4, para 3";
        assert_eq!(texts(src), vec!["Menarche at age 10", "Gravida 4, para 3"]);
    }

    #[test]
    fn question_and_exclamation() {
        let src = "Any pain? None reported!";
        assert_eq!(texts(src), vec!["Any pain?", "None reported!"]);
    }

    #[test]
    fn terminal_sentence_without_period() {
        let src = "No known allergies";
        assert_eq!(texts(src), vec!["No known allergies"]);
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        // A period followed by a lowercase word is dictation noise, not a
        // boundary.
        let src = "taking aspirin q.d. for prophylaxis.";
        assert_eq!(texts(src).len(), 1);
    }

    #[test]
    fn spans_are_source_relative() {
        let src = "First one here. Second one there.";
        let sents = split_sentences(src);
        assert_eq!(sents[0].span.slice(src), "First one here.");
        assert_eq!(sents[1].span.slice(src), "Second one there.");
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n  ").is_empty());
    }

    #[test]
    fn multiple_spaces_between_sentences() {
        let src = "Reveals an overweight woman in no apparent distress.  Vitals as below.";
        assert_eq!(texts(src).len(), 2);
    }
}
