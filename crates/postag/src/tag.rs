//! Penn-Treebank-style part-of-speech tags.

use std::fmt;

/// Part-of-speech tag (Penn Treebank subset sufficient for clinical prose).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are the standard PTB mnemonics
pub enum Tag {
    /// Singular or mass noun ("pressure").
    NN,
    /// Plural noun ("pregnancies").
    NNS,
    /// Proper noun ("Lipitor").
    NNP,
    /// Adjective ("surgical").
    JJ,
    /// Comparative adjective ("larger").
    JJR,
    /// Superlative adjective ("largest").
    JJS,
    /// Verb, base form ("deny").
    VB,
    /// Verb, past tense ("denied").
    VBD,
    /// Verb, gerund/present participle ("smoking").
    VBG,
    /// Verb, past participle ("undergone").
    VBN,
    /// Verb, non-3rd-person singular present ("deny").
    VBP,
    /// Verb, 3rd-person singular present ("denies").
    VBZ,
    /// Modal ("may", "will").
    MD,
    /// Adverb ("currently").
    RB,
    /// Comparative adverb.
    RBR,
    /// Superlative adverb.
    RBS,
    /// Cardinal number ("84", "seventeen").
    CD,
    /// Determiner ("the", "a", "no").
    DT,
    /// Preposition or subordinating conjunction ("of", "with").
    IN,
    /// Coordinating conjunction ("and", "or").
    CC,
    /// Personal pronoun ("she").
    PRP,
    /// Possessive pronoun ("her").
    PRPS,
    /// "to" as infinitive marker.
    TO,
    /// Existential "there".
    EX,
    /// Wh-determiner ("which").
    WDT,
    /// Wh-pronoun ("who").
    WP,
    /// Wh-adverb ("when").
    WRB,
    /// Possessive ending ("'s").
    POS,
    /// Interjection.
    UH,
    /// Symbol.
    SYM,
    /// Punctuation.
    PUNCT,
}

impl Tag {
    /// True for any noun tag (`NN`, `NNS`, `NNP`).
    pub fn is_noun(&self) -> bool {
        matches!(self, Tag::NN | Tag::NNS | Tag::NNP)
    }

    /// True for any adjective tag (`JJ`, `JJR`, `JJS`).
    pub fn is_adjective(&self) -> bool {
        matches!(self, Tag::JJ | Tag::JJR | Tag::JJS)
    }

    /// True for any verb tag (`VB*`), excluding modals.
    pub fn is_verb(&self) -> bool {
        matches!(
            self,
            Tag::VB | Tag::VBD | Tag::VBG | Tag::VBN | Tag::VBP | Tag::VBZ
        )
    }

    /// True for any adverb tag (`RB*`).
    pub fn is_adverb(&self) -> bool {
        matches!(self, Tag::RB | Tag::RBR | Tag::RBS)
    }

    /// The PTB mnemonic string.
    pub fn as_str(&self) -> &'static str {
        match self {
            Tag::NN => "NN",
            Tag::NNS => "NNS",
            Tag::NNP => "NNP",
            Tag::JJ => "JJ",
            Tag::JJR => "JJR",
            Tag::JJS => "JJS",
            Tag::VB => "VB",
            Tag::VBD => "VBD",
            Tag::VBG => "VBG",
            Tag::VBN => "VBN",
            Tag::VBP => "VBP",
            Tag::VBZ => "VBZ",
            Tag::MD => "MD",
            Tag::RB => "RB",
            Tag::RBR => "RBR",
            Tag::RBS => "RBS",
            Tag::CD => "CD",
            Tag::DT => "DT",
            Tag::IN => "IN",
            Tag::CC => "CC",
            Tag::PRP => "PRP",
            Tag::PRPS => "PRP$",
            Tag::TO => "TO",
            Tag::EX => "EX",
            Tag::WDT => "WDT",
            Tag::WP => "WP",
            Tag::WRB => "WRB",
            Tag::POS => "POS",
            Tag::UH => "UH",
            Tag::SYM => "SYM",
            Tag::PUNCT => "PUNCT",
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(Tag::NN.is_noun());
        assert!(Tag::NNS.is_noun());
        assert!(!Tag::JJ.is_noun());
        assert!(Tag::JJR.is_adjective());
        assert!(Tag::VBZ.is_verb());
        assert!(!Tag::MD.is_verb());
        assert!(Tag::RB.is_adverb());
    }

    #[test]
    fn display_mnemonics() {
        assert_eq!(Tag::PRPS.to_string(), "PRP$");
        assert_eq!(Tag::NN.to_string(), "NN");
    }
}
