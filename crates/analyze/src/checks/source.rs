//! Source-level concurrency-soundness checks (the `CMR-S0xx` series).
//!
//! The same compiler-front-end philosophy as the asset checks, pointed at
//! the workspace's own `.rs` files: a small hand-rolled scanner (no
//! syntax tree, no new dependencies) cleans comments and string literals
//! out of each file, tracks brace depth and a few interesting regions
//! (`#[cfg(test)]` items, `impl Drop for` bodies, `extern "C" fn` signal
//! handlers, `#[allow(clippy::unwrap_used)]` spans), then runs
//! line-oriented pattern checks:
//!
//! * **CMR-S001** — a `Mutex`/`RwLock` guard held across `.send()`,
//!   `.recv()`, or file/socket I/O in the same block;
//! * **CMR-S002** — `.unwrap()` (warning) or `.expect(` (note) outside
//!   `#[cfg(test)]` in a crate that denies `clippy::unwrap_used`;
//! * **CMR-S003** — allocation or panic-capable calls inside an
//!   `extern "C" fn` body (the signal-handler region);
//! * **CMR-S004** — panic-capable calls inside `impl Drop for` bodies
//!   (a panic in drop during unwind is an abort);
//! * **CMR-S005** — a raw `std::sync` primitive constructed in a file
//!   where the tracked wrappers (`cmr_sync`) are mandated;
//! * **CMR-S006** — `.lock().unwrap()`-style poison propagation where
//!   the workspace convention is poison *recovery*;
//! * **CMR-S007** — `let _ = ….lock()`, which drops the guard
//!   immediately (almost always a lost critical section);
//! * **CMR-S008** — `thread::sleep` while a guard is live.
//!
//! Deliberate exceptions are annotated in the source with
//! `// cmr:allow(S001) -- reason`, which downgrades the finding on the
//! same or the following line to `Note` — still visible in every report,
//! never failing `--deny warnings`. This mirrors how the asset checks
//! treat deliberate-but-suspicious patterns.
//!
//! The runtime half of the S series (`CMR-S100`–`S102`) is emitted by
//! `cmr_sync`'s lockcheck layer, not by this pass; the codes are
//! registered here so SARIF consumers see one rule table for the family.

use crate::{Diagnostic, Severity};
use std::path::{Path, PathBuf};

/// One source file presented to the checks. Tests feed synthetic files;
/// [`workspace_sources`] loads the real tree.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// Files where raw `std::sync::Mutex`/`RwLock`/`Condvar` construction is
/// a finding: the shared state in these files is exactly what the
/// tracked wrappers exist for.
const TRACKED_MANDATED: &[&str] = &[
    "crates/linkgram/src/parser.rs",
    "crates/engine/src/engine.rs",
    "crates/engine/src/metrics.rs",
    "crates/engine/src/pool.rs",
    "crates/engine/src/service.rs",
    "crates/serve/src/server.rs",
];

/// Channel and I/O calls that must not run under a lock guard (S001).
const GUARD_HAZARDS: &[&str] = &[
    ".send(",
    ".recv(",
    ".recv_timeout(",
    ".write_all(",
    ".write_fmt(",
    ".flush(",
    ".read_line(",
    ".read_to_string(",
    ".read_to_end(",
    ".read_exact(",
    ".accept(",
    ".connect(",
    "write!(",
    "writeln!(",
];

/// Panic-capable tokens (S003 in signal handlers, S004 in Drop bodies).
const PANIC_TOKENS: &[&str] = &[
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
    ".unwrap()",
    ".expect(",
];

/// Allocation-capable tokens (S003 only: the signal context cannot
/// safely enter the allocator).
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "Box::new(",
    "String::new(",
    "String::from(",
    "String::with_capacity(",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "format!(",
    "println!(",
    "eprintln!(",
];

/// One cleaned line plus everything the checks need to know about it.
struct LineInfo {
    /// 1-based line number.
    no: usize,
    /// Brace depth at the start of the line.
    start_depth: usize,
    /// Brace depth after the line's braces are processed.
    end_depth: usize,
    /// Line text with comments and literal contents removed.
    text: String,
    /// Inside a `#[cfg(…test…)]`/`#[test]` item.
    in_test: bool,
    /// Inside an `#[allow(clippy::unwrap_used)]` (or `expect_used`) item.
    in_allow_unwrap: bool,
    /// Inside an `impl Drop for` item.
    in_drop: bool,
    /// Inside an `extern "C" fn` body.
    in_signal: bool,
    /// Codes this line's (or the previous line's) `cmr:allow` pragma
    /// covers, as full `CMR-Sxxx` strings.
    allow: Vec<String>,
}

/// Loads every first-party `.rs` file in the workspace, sorted by path.
/// Vendored shims, build output, integration tests and benches are out of
/// scope: the S series is about the shipped library/binary code.
pub fn workspace_sources() -> Vec<SourceFile> {
    let root = workspace_root();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            roots.push(entry.path().join("src"));
        }
    }
    let mut files = Vec::new();
    for dir in roots {
        collect_rs(&dir, &mut files);
    }
    let mut out: Vec<SourceFile> = files
        .into_iter()
        .filter_map(|p| {
            let text = std::fs::read_to_string(&p).ok()?;
            let rel = p.strip_prefix(&root).unwrap_or(&p);
            Some(SourceFile {
                path: rel.to_string_lossy().replace('\\', "/"),
                text,
            })
        })
        .collect();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

fn workspace_root() -> PathBuf {
    // crates/analyze/ -> crates/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs every source check over `files`, appending findings to `out`.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let deny_unwrap = deny_unwrap_map(files);
    for file in files {
        let lines = scan(&file.text);
        let asset: &'static str = Box::leak(file.path.clone().into_boxed_str());
        let ctx = Ctx {
            asset,
            denies_unwrap: crate_denies_unwrap(&file.path, &deny_unwrap, &file.text),
            mandated: TRACKED_MANDATED.iter().any(|m| file.path == *m),
            lines: &lines,
        };
        check_guard_windows(&ctx, out); // S001, S007, S008
        check_unwrap_expect(&ctx, out); // S002, S006
        check_regions(&ctx, out); // S003, S004
        check_untracked(&ctx, out); // S005
    }
}

struct Ctx<'a> {
    asset: &'static str,
    denies_unwrap: bool,
    mandated: bool,
    lines: &'a [LineInfo],
}

impl Ctx<'_> {
    /// Is `code` (e.g. `"CMR-S001"`) pragma-allowed at `line_idx`? The
    /// pragma covers its own line and the next, so a comment directly
    /// above a statement or inline at the end of it both work.
    fn allowed(&self, code: &str, line_idx: usize) -> bool {
        self.lines[line_idx].allow.iter().any(|c| c == code)
    }

    fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        code: &'static str,
        severity: Severity,
        line_idx: usize,
        message: String,
    ) {
        let line = &self.lines[line_idx];
        let (severity, message) = if severity > Severity::Note && self.allowed(code, line_idx) {
            (Severity::Note, format!("{message} [cmr:allow]"))
        } else {
            (severity, message)
        };
        out.push(Diagnostic::new(
            code,
            severity,
            self.asset,
            format!("line {}", line.no),
            message,
        ));
    }
}

/// Which crate roots carry `#![deny(clippy::unwrap_used)]`.
fn deny_unwrap_map(files: &[SourceFile]) -> Vec<(String, bool)> {
    files
        .iter()
        .filter(|f| f.path.ends_with("/src/lib.rs") || f.path == "src/lib.rs")
        .map(|f| {
            let dir = f.path.trim_end_matches("lib.rs").to_string();
            (dir, f.text.contains("deny(clippy::unwrap_used"))
        })
        .collect()
}

fn crate_denies_unwrap(path: &str, map: &[(String, bool)], text: &str) -> bool {
    // Binary roots (src/bin/*.rs, src/main.rs) are their own crate: the
    // deny attribute must be in the file itself.
    if path.contains("/bin/") || path.ends_with("/main.rs") {
        return text.contains("deny(clippy::unwrap_used");
    }
    map.iter()
        .filter(|(dir, _)| path.starts_with(dir.as_str()))
        .max_by_key(|(dir, _)| dir.len())
        .is_some_and(|(_, denies)| *denies)
}

// ---------------------------------------------------------------------
// The scanner
// ---------------------------------------------------------------------

/// Cleans the source (comments and literal contents removed, line
/// structure preserved), computes brace depths, region membership, and
/// `cmr:allow` pragmas.
fn scan(text: &str) -> Vec<LineInfo> {
    let cleaned = clean(text);
    let mut lines: Vec<LineInfo> = Vec::new();
    // Regions open as (kind, depth_after_opening_brace).
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Test,
        AllowUnwrap,
        DropImpl,
        Signal,
    }
    let mut regions: Vec<(Kind, usize)> = Vec::new();
    let mut pending: Vec<Kind> = Vec::new();
    let mut depth = 0usize;
    let mut prev_allow: Vec<String> = Vec::new();

    for (idx, raw) in cleaned.lines.iter().enumerate() {
        let start_depth = depth;
        let text = raw.clone();
        let at_start = |k: Kind, regions: &[(Kind, usize)]| regions.iter().any(|(rk, _)| *rk == k);
        let started = (
            at_start(Kind::Test, &regions),
            at_start(Kind::AllowUnwrap, &regions),
            at_start(Kind::DropImpl, &regions),
            at_start(Kind::Signal, &regions),
        );

        // Attribute / item-head markers that open a region at the next
        // brace. `#[cfg(…test…)]` covers `#[cfg(test)]` and
        // `#[cfg(all(test, loom))]` alike.
        if (text.contains("#[cfg(") && text.contains("test")) || text.contains("#[test]") {
            pending.push(Kind::Test);
        }
        if text.contains("#[allow(clippy::unwrap_used")
            || text.contains("#[allow(clippy::expect_used")
        {
            pending.push(Kind::AllowUnwrap);
        }
        if text.contains("impl") && text.contains(" Drop for ") {
            pending.push(Kind::DropImpl);
        }
        // String contents are stripped by `clean`, so `extern "C" fn`
        // appears here as `extern "" fn`.
        if text.contains("extern \"\" fn") {
            pending.push(Kind::Signal);
        }

        for ch in text.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    for kind in pending.drain(..) {
                        regions.push((kind, depth));
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    regions.retain(|(_, open)| *open <= depth);
                }
                // An attribute that ended up on a braceless item (e.g.
                // `#[cfg(test)] use …;`) applies to that item only.
                ';' if !pending.is_empty() && depth == start_depth => pending.clear(),
                _ => {}
            }
        }

        let ended = (
            at_start(Kind::Test, &regions),
            at_start(Kind::AllowUnwrap, &regions),
            at_start(Kind::DropImpl, &regions),
            at_start(Kind::Signal, &regions),
        );
        let mut allow: Vec<String> = cleaned.pragmas.get(idx).cloned().unwrap_or_default();
        allow.extend(prev_allow.iter().cloned());
        prev_allow = cleaned.pragmas.get(idx).cloned().unwrap_or_default();

        lines.push(LineInfo {
            no: idx + 1,
            start_depth,
            end_depth: depth,
            text,
            in_test: started.0 || ended.0,
            in_allow_unwrap: started.1 || ended.1,
            in_drop: started.2 || ended.2,
            in_signal: started.3 || ended.3,
            allow,
        });
    }
    lines
}

struct Cleaned {
    lines: Vec<String>,
    /// Pragma codes per line index, as full `CMR-Sxxx` strings.
    pragmas: Vec<Vec<String>>,
}

/// Removes comments and the contents of string/char literals while
/// preserving line boundaries, and harvests `cmr:allow(...)` pragmas
/// from the removed comments.
fn clean(text: &str) -> Cleaned {
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut pragmas_at: Vec<(usize, Vec<String>)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment: harvest pragma, drop the rest.
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let comment: String = bytes[start..i].iter().collect();
                if let Some(codes) = parse_pragma(&comment) {
                    pragmas_at.push((line, codes));
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                // Block comment (nesting ignored: none in this tree).
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        out.push('\n');
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '"' => {
                // String literal: keep the quotes, drop the contents.
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => {
                            // A `\<newline>` continuation still ends a
                            // source line — keep the count aligned.
                            if bytes.get(i + 1) == Some(&'\n') {
                                out.push('\n');
                                line += 1;
                            }
                            i += 2;
                        }
                        '"' => break,
                        '\n' => {
                            out.push('\n');
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.push('"');
                i += 1;
            }
            'r' if bytes.get(i + 1) == Some(&'"')
                || (bytes.get(i + 1) == Some(&'#') && bytes.get(i + 2) == Some(&'"')) =>
            {
                // Raw string r"…" / r#"…"# (one hash covers this tree).
                let hashes = usize::from(bytes.get(i + 1) == Some(&'#'));
                i += 2 + hashes;
                out.push('"');
                while i < bytes.len() {
                    if bytes[i] == '"' && (hashes == 0 || bytes.get(i + 1) == Some(&'#')) {
                        i += 1 + hashes;
                        break;
                    }
                    if bytes[i] == '\n' {
                        out.push('\n');
                        line += 1;
                    }
                    i += 1;
                }
                out.push('"');
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a
                // couple of chars (`'x'`, `'\n'`, `'\u{..}'`).
                let closing = (1..=10).find(|d| bytes.get(i + d) == Some(&'\''));
                let is_escape = bytes.get(i + 1) == Some(&'\\');
                if is_escape || matches!(closing, Some(2)) {
                    let end = closing.unwrap_or(1);
                    out.push('\'');
                    out.push('\'');
                    i += end + 1;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    let lines: Vec<String> = out.lines().map(str::to_string).collect();
    let mut pragmas = vec![Vec::new(); lines.len().max(1)];
    for (at, codes) in pragmas_at {
        if at < pragmas.len() {
            pragmas[at].extend(codes);
        }
    }
    Cleaned { lines, pragmas }
}

/// Parses `cmr:allow(S001)` / `cmr:allow(S001, S008)` out of a comment.
fn parse_pragma(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("cmr:allow(")?;
    let rest = &comment[at + "cmr:allow(".len()..];
    let close = rest.find(')')?;
    let codes: Vec<String> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .map(|c| {
            if c.starts_with("CMR-") {
                c.to_string()
            } else {
                format!("CMR-{c}")
            }
        })
        .collect();
    (!codes.is_empty()).then_some(codes)
}

// ---------------------------------------------------------------------
// S001 / S007 / S008 — guard-window checks
// ---------------------------------------------------------------------

/// Does `text` acquire a guard? Returns the matched acquisition token.
fn acquisition(text: &str) -> Option<&'static str> {
    // `.read()`/`.write()` are the zero-argument RwLock forms;
    // `.read(buf)`-style I/O never matches these exact strings.
    [".lock(", ".try_lock(", ".read()", ".write()"]
        .into_iter()
        .find(|pat| {
            text.match_indices(pat).any(|(pos, _)| {
                // Std stream handles (`stdout.lock()`, `stdin.lock()`)
                // exist to be held across their own I/O — the guard IS
                // the I/O serialization, not shared state. Exclude them.
                let recv = text[..pos].trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
                let ident = &text[recv.len()..pos];
                !matches!(ident, "stdout" | "stderr" | "stdin")
                    && !recv.ends_with("stdout()")
                    && !recv.ends_with("stderr()")
                    && !recv.ends_with("stdin()")
            })
        })
}

/// The `let` binding name on this line, if the line binds one
/// (handles `let x`, `let mut x`, `let Ok(x)`, `if let Ok(mut x)`).
fn let_binding(text: &str) -> Option<&str> {
    let at = text.find("let ")?;
    let mut rest = text[at + 4..].trim_start();
    for strip in ["Ok(", "Some(", "mut "] {
        // Peel pattern wrappers in any order (`Ok(mut x)`).
        loop {
            let trimmed = rest.trim_start();
            if let Some(s) = trimmed.strip_prefix(strip) {
                rest = s;
            } else {
                rest = trimmed;
                break;
            }
        }
    }
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

fn check_guard_windows(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let lines = ctx.lines;
    for i in 0..lines.len() {
        let line = &lines[i];
        if line.in_test {
            continue;
        }
        let Some(acq) = acquisition(&line.text) else {
            continue;
        };
        // A `.lock()` on a chain continuation line still binds the guard
        // if the statement started with a `let` a few lines up.
        let mut binding = let_binding(&line.text);
        let mut binding_line = i;
        if binding.is_none() {
            for j in (i.saturating_sub(4)..i).rev() {
                if lines[j].text.contains(';') {
                    break;
                }
                if let Some(name) = let_binding(&lines[j].text) {
                    binding = Some(name);
                    binding_line = j;
                    break;
                }
            }
        }

        // `let _ = x.lock()` drops the guard before the next statement.
        if binding == Some("_") {
            ctx.emit(
                out,
                "CMR-S007",
                Severity::Warning,
                i,
                format!(
                    "`let _ = …{acq})` drops the guard immediately — the critical \
                     section is empty; bind it to a name or drop it explicitly"
                ),
            );
            continue;
        }

        // The guard's live window: a named binding lives to the end of
        // its block; an unbound chain lives to the end of the statement.
        // Using the line's *end* depth bounds `if let …lock() {` windows
        // to the if-block and plain `let` windows to the enclosing block.
        let window_end = match binding {
            Some(name) => {
                let min_depth = lines[binding_line].end_depth;
                let mut end = i;
                while end + 1 < lines.len() && lines[end + 1].start_depth >= min_depth {
                    end += 1;
                    if lines[end].text.contains("drop(") && lines[end].text.contains(name) {
                        break;
                    }
                }
                end
            }
            None => {
                let mut end = i;
                while !lines[end].text.trim_end().ends_with(';') && end + 1 < lines.len() {
                    end += 1;
                    if end - i > 8 {
                        break;
                    }
                }
                end
            }
        };

        let mut flagged_io = false;
        let mut flagged_sleep = false;
        let window_last = window_end.min(lines.len() - 1);
        for held in &lines[i..=window_last] {
            let t = &held.text;
            if !flagged_io {
                if let Some(hazard) = GUARD_HAZARDS.iter().find(|h| t.contains(*h)) {
                    flagged_io = true;
                    ctx.emit(
                        out,
                        "CMR-S001",
                        Severity::Warning,
                        i,
                        format!(
                            "guard acquired via `{acq})` is held across `{}…)` (line {}); \
                             channel or I/O calls under a lock serialize every other \
                             acquirer behind this one",
                            hazard.trim_end_matches('('),
                            held.no
                        ),
                    );
                }
            }
            if !flagged_sleep && (t.contains("thread::sleep") || t.contains("::sleep(")) {
                flagged_sleep = true;
                ctx.emit(
                    out,
                    "CMR-S008",
                    Severity::Warning,
                    i,
                    format!(
                        "guard acquired via `{acq})` is held across a sleep (line {}); \
                         sleeping under a lock stalls every waiter for the full duration",
                        held.no
                    ),
                );
            }
            if flagged_io && flagged_sleep {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// S002 / S006 — unwrap discipline
// ---------------------------------------------------------------------

fn check_unwrap_expect(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let lines = ctx.lines;
    for i in 0..lines.len() {
        let line = &lines[i];
        if line.in_test || line.in_allow_unwrap {
            continue;
        }
        // Join with the next line so rustfmt-split chains
        // (`.lock()\n.unwrap()`) still match — but a match living wholly
        // in the next line is that line's own finding, not this one's.
        let next_text = lines
            .get(i + 1)
            .filter(|n| !n.in_test)
            .map(|n| n.text.trim_start().to_string())
            .unwrap_or_default();
        let joined = format!("{}{next_text}", line.text);
        let lock_unwrap = [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"]
            .iter()
            .find(|p| line.text.contains(*p) || (joined.contains(*p) && !next_text.contains(*p)));
        if let Some(pat) = lock_unwrap {
            ctx.emit(
                out,
                "CMR-S006",
                Severity::Warning,
                i,
                format!(
                    "`{pat}` propagates lock poisoning as a panic; the workspace \
                     convention is recovery — use \
                     `.unwrap_or_else(std::sync::PoisonError::into_inner)` or handle \
                     the Err"
                ),
            );
            continue;
        }
        if !ctx.denies_unwrap {
            continue;
        }
        if line.text.contains(".unwrap()") {
            ctx.emit(
                out,
                "CMR-S002",
                Severity::Warning,
                i,
                "`.unwrap()` outside `#[cfg(test)]` in a crate that denies \
                 `clippy::unwrap_used`; return the error or document the invariant \
                 with `.expect(…)`"
                    .to_string(),
            );
        } else if line.text.contains(".expect(") {
            ctx.emit(
                out,
                "CMR-S002",
                Severity::Note,
                i,
                "`.expect(…)` outside `#[cfg(test)]`; fine when the message states \
                 an invariant, but prefer returning the error on fallible paths"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// S003 / S004 — restricted regions
// ---------------------------------------------------------------------

fn check_regions(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, line) in ctx.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.in_signal {
            for tok in PANIC_TOKENS.iter().chain(ALLOC_TOKENS) {
                if line.text.contains(tok) {
                    ctx.emit(
                        out,
                        "CMR-S003",
                        Severity::Warning,
                        i,
                        format!(
                            "`{tok}…` inside an `extern \"C\"` signal-handler region; \
                             only async-signal-safe operations (atomics, raw syscalls) \
                             are sound here"
                        ),
                    );
                    break;
                }
            }
        }
        if line.in_drop {
            for tok in PANIC_TOKENS {
                if line.text.contains(tok) {
                    ctx.emit(
                        out,
                        "CMR-S004",
                        Severity::Warning,
                        i,
                        format!(
                            "`{tok}…` inside an `impl Drop` body; a panic in drop \
                             during unwind aborts the process — make drop infallible"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// S005 — raw primitives where tracked wrappers are mandated
// ---------------------------------------------------------------------

fn check_untracked(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.mandated {
        return;
    }
    for (i, line) in ctx.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for raw in ["Mutex::new(", "RwLock::new(", "Condvar::new("] {
            let mut from = 0usize;
            while let Some(pos) = line.text[from..].find(raw) {
                let abs = from + pos;
                let preceded_by_ident = abs > 0
                    && line.text[..abs]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if !preceded_by_ident {
                    ctx.emit(
                        out,
                        "CMR-S005",
                        Severity::Warning,
                        i,
                        format!(
                            "raw `{}…)` in a file where the tracked wrappers are \
                             mandated; use `cmr_sync::Tracked{}` so lockcheck sees \
                             this lock",
                            raw.trim_end_matches('('),
                            raw.trim_end_matches("::new(")
                        ),
                    );
                    break;
                }
                from = abs + raw.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Report;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let files = vec![SourceFile {
            path: path.to_string(),
            text: src.to_string(),
        }];
        let mut out = Vec::new();
        check(&files, &mut out);
        Report::from_diagnostics(out).diagnostics
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn s001_guard_across_channel_io() {
        let src = r#"
fn f(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    tx.send(*g).ok();
}
"#;
        let diags = run("crates/x/src/a.rs", src);
        assert!(codes(&diags).contains(&"CMR-S001"), "{diags:?}");
    }

    #[test]
    fn s001_same_statement_chain() {
        let src = "
fn f(rx: &std::sync::Mutex<std::sync::mpsc::Receiver<u32>>) {
    let v = rx
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .recv();
    let _ = v;
}
";
        let diags = run("crates/x/src/a.rs", src);
        assert!(codes(&diags).contains(&"CMR-S001"), "{diags:?}");
    }

    #[test]
    fn s001_clean_after_guard_dropped() {
        let src = "
fn f(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let v = {
        let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g
    };
    tx.send(v).ok();
}
";
        let diags = run("crates/x/src/a.rs", src);
        assert!(!codes(&diags).contains(&"CMR-S001"), "{diags:?}");
    }

    #[test]
    fn s001_pragma_downgrades_to_note() {
        let src = "
fn f(rx: &std::sync::Mutex<std::sync::mpsc::Receiver<u32>>) {
    let v = rx
        .lock() // cmr:allow(S001) -- lock scope is exactly the recv
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .recv();
    let _ = v;
}
";
        let diags = run("crates/x/src/a.rs", src);
        let s001: Vec<_> = diags.iter().filter(|d| d.code == "CMR-S001").collect();
        assert_eq!(s001.len(), 1, "{diags:?}");
        assert_eq!(s001[0].severity, Severity::Note);
        assert!(s001[0].message.ends_with("[cmr:allow]"));
    }

    #[test]
    fn s002_unwrap_warning_expect_note_in_deny_crate() {
        let lib = "#![deny(clippy::unwrap_used)]\npub mod a;\n";
        let src = "
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}
pub fn g(v: Option<u32>) -> u32 {
    v.expect(\"caller guarantees Some\")
}
";
        let files = vec![
            SourceFile {
                path: "crates/x/src/lib.rs".into(),
                text: lib.into(),
            },
            SourceFile {
                path: "crates/x/src/a.rs".into(),
                text: src.into(),
            },
        ];
        let mut out = Vec::new();
        check(&files, &mut out);
        let s002: Vec<_> = out.iter().filter(|d| d.code == "CMR-S002").collect();
        assert_eq!(s002.len(), 2, "{out:?}");
        assert!(s002.iter().any(|d| d.severity == Severity::Warning));
        assert!(s002.iter().any(|d| d.severity == Severity::Note));
    }

    #[test]
    fn s002_silent_without_deny_and_in_tests() {
        let lib = "pub mod a;\n";
        let src = "
pub fn f(v: Option<u32>) -> u32 { v.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
        let files = vec![
            SourceFile {
                path: "crates/x/src/lib.rs".into(),
                text: lib.into(),
            },
            SourceFile {
                path: "crates/x/src/a.rs".into(),
                text: src.into(),
            },
        ];
        let mut out = Vec::new();
        check(&files, &mut out);
        assert!(
            !out.iter().any(|d| d.code == "CMR-S002"),
            "no deny, no finding: {out:?}"
        );
    }

    #[test]
    fn s003_alloc_in_signal_handler() {
        let src = "
extern \"C\" fn on_signal(sig: i32) {
    let msg = format!(\"got {sig}\");
    let _ = msg;
}
";
        let diags = run("crates/x/src/a.rs", src);
        assert!(codes(&diags).contains(&"CMR-S003"), "{diags:?}");
    }

    #[test]
    fn s003_atomics_are_fine() {
        let src = "
static FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
extern \"C\" fn on_signal(_sig: i32) {
    FLAG.store(true, std::sync::atomic::Ordering::SeqCst);
}
";
        let diags = run("crates/x/src/a.rs", src);
        assert!(!codes(&diags).contains(&"CMR-S003"), "{diags:?}");
    }

    #[test]
    fn s004_panic_in_drop() {
        let src = "
struct G(Option<u32>);
impl Drop for G {
    fn drop(&mut self) {
        self.0.take().unwrap();
    }
}
";
        let diags = run("crates/x/src/a.rs", src);
        assert!(codes(&diags).contains(&"CMR-S004"), "{diags:?}");
    }

    #[test]
    fn s005_raw_mutex_in_mandated_file_only() {
        let src = "
pub fn build() -> std::sync::Mutex<u32> {
    std::sync::Mutex::new(0)
}
";
        let mandated = run("crates/engine/src/pool.rs", src);
        assert!(codes(&mandated).contains(&"CMR-S005"), "{mandated:?}");
        let free = run("crates/x/src/a.rs", src);
        assert!(!codes(&free).contains(&"CMR-S005"), "{free:?}");
    }

    #[test]
    fn s005_tracked_wrapper_does_not_match() {
        let src = "
pub fn build() -> cmr_sync::TrackedMutex<u32> {
    cmr_sync::TrackedMutex::new(\"x\", 0)
}
";
        let diags = run("crates/engine/src/pool.rs", src);
        assert!(!codes(&diags).contains(&"CMR-S005"), "{diags:?}");
    }

    #[test]
    fn s006_lock_unwrap_even_across_lines() {
        let src = "
fn f(m: &std::sync::Mutex<u32>) -> u32 {
    let a = *m.lock().unwrap();
    let b = *m
        .lock()
        .unwrap();
    a + b
}
";
        let diags = run("crates/x/src/a.rs", src);
        let s006: Vec<_> = diags.iter().filter(|d| d.code == "CMR-S006").collect();
        assert_eq!(s006.len(), 2, "{diags:?}");
    }

    #[test]
    fn s007_discarded_guard() {
        let src = "
fn f(m: &std::sync::Mutex<u32>) {
    let _ = m.lock();
}
";
        let diags = run("crates/x/src/a.rs", src);
        assert!(codes(&diags).contains(&"CMR-S007"), "{diags:?}");
    }

    #[test]
    fn s008_sleep_under_guard() {
        let src = "
fn f(m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    std::thread::sleep(std::time::Duration::from_millis(5));
    drop(g);
}
";
        let diags = run("crates/x/src/a.rs", src);
        assert!(codes(&diags).contains(&"CMR-S008"), "{diags:?}");
    }

    #[test]
    fn strings_and_comments_do_not_trip_checks() {
        let src = "
fn f() -> &'static str {
    // this comment mentions .unwrap() and .send( and Mutex::new(
    \"a string with .unwrap() and .recv( inside\"
}
";
        let diags = run("crates/engine/src/pool.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn loom_cfg_test_regions_are_excluded() {
        let src = "
#[cfg(all(test, loom))]
mod loom_model {
    pub fn f(m: &std::sync::Mutex<u32>) {
        let _ = m.lock();
        std::sync::Mutex::new(7);
    }
}
";
        let diags = run("crates/engine/src/pool.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
