//! The tagger: lexicon analysis + contextual disambiguation.
//!
//! A two-pass design in the spirit of Brill's tagger: pass one proposes
//! candidate tags per token from the closed-class table, the morphology
//! engine and suffix heuristics; pass two walks left-to-right resolving
//! ambiguity from the already-chosen left context and a one-token lookahead.

use crate::closed::closed_class;
use crate::tag::Tag;
use cmr_lexicon::{
    is_known_adjective, is_known_adverb, is_known_noun, is_known_verb, Lemmatizer, WordClass,
};
use cmr_text::{intern, intern_lower, word_value, Sym, Token, TokenKind};

/// A token with its resolved tag and lemma.
///
/// `lower` and `lemma` are interned [`Sym`]s: downstream stages (dictionary
/// lookup, parse-cache signatures, phrase matching) compare and hash them as
/// `u32`s instead of allocating lowercase `String`s per token per stage.
/// Number tokens get the [`num_sentinel`] symbol for both — their spellings
/// are unbounded and must never grow the interner.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedToken {
    /// The underlying token.
    pub token: Token,
    /// Resolved part-of-speech tag.
    pub tag: Tag,
    /// Lemma under the resolved tag's word class (interned).
    pub lemma: Sym,
    /// Lower-cased surface form (interned; sentinel for number tokens).
    pub lower: Sym,
}

impl TaggedToken {
    /// Lower-cased surface form. For number tokens this is the interner
    /// sentinel, not the digits — numeric consumers read
    /// `token.text`/`token.kind` instead.
    pub fn lower(&self) -> &'static str {
        self.lower.as_str()
    }
}

/// The reserved symbol standing in for every number token's lower/lemma.
/// Contains a control character, so no tokenizer output can ever collide
/// with it.
pub fn num_sentinel() -> Sym {
    intern("\u{1}NUM")
}

/// Candidate analyses for one token before contextual resolution.
#[derive(Debug, Clone)]
struct Candidates {
    /// Fixed tag that context cannot change (numbers, punctuation).
    fixed: Option<Tag>,
    closed: Option<&'static [Tag]>,
    noun: Option<Tag>,
    verb: Option<Tag>,
    adj: Option<Tag>,
    adv: bool,
    /// Fallback when nothing else matched.
    default: Tag,
}

impl Default for Candidates {
    fn default() -> Self {
        Candidates {
            fixed: None,
            closed: None,
            noun: None,
            verb: None,
            adj: None,
            adv: false,
            default: Tag::NN,
        }
    }
}

/// The part-of-speech tagger.
///
/// ```
/// use cmr_postag::PosTagger;
/// use cmr_text::tokenize;
///
/// let tagger = PosTagger::new();
/// let tagged = tagger.tag(&tokenize("She denies alcohol use."));
/// let tags: Vec<&str> = tagged.iter().map(|t| t.tag.as_str()).collect();
/// assert_eq!(tags, ["PRP", "VBZ", "NN", "NN", "PUNCT"]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PosTagger {
    _private: (),
}

impl PosTagger {
    /// Creates a tagger (stateless; cheap).
    pub fn new() -> Self {
        PosTagger::default()
    }

    /// Tags a token sequence (typically one sentence), cloning the tokens.
    /// Callers that own their tokens should prefer
    /// [`PosTagger::tag_owned`], which moves them instead.
    pub fn tag(&self, tokens: &[Token]) -> Vec<TaggedToken> {
        self.tag_owned(tokens.to_vec())
    }

    /// Tags a token sequence, consuming it — the hot path: no per-token
    /// `Token` clone, one interner lookup per token instead of a lowercase
    /// `String` per stage, and O(1) left-context tracking instead of a
    /// backward scan per token.
    pub fn tag_owned(&self, tokens: Vec<Token>) -> Vec<TaggedToken> {
        let lem = Lemmatizer::new();
        let num = num_sentinel();
        let lowers: Vec<Sym> = tokens
            .iter()
            .map(|t| match t.kind {
                TokenKind::Number(_) => num,
                _ => intern_lower(&t.text),
            })
            .collect();
        let candidates: Vec<Candidates> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| analyze(t, lowers[i], i == 0 || is_boundary(&tokens, i), &lem))
            .collect();

        let mut out: Vec<TaggedToken> = Vec::with_capacity(tokens.len());
        // Effective left context skips adverbs so "has never smoked" still
        // sees the auxiliary.
        let mut prev: Option<(Tag, Sym)> = None;
        for (i, tok) in tokens.into_iter().enumerate() {
            let cand = &candidates[i];
            let next_is_nounish = candidates.get(i + 1).map(looks_nounish).unwrap_or(false);
            let tag = resolve(cand, prev, next_is_nounish);
            let lemma = lemma_for(lowers[i], tag, &lem);
            if !tag.is_adverb() {
                prev = Some((tag, lowers[i]));
            }
            out.push(TaggedToken {
                token: tok,
                tag,
                lemma,
                lower: lowers[i],
            });
        }
        out
    }
}

fn is_boundary(tokens: &[Token], i: usize) -> bool {
    i == 0
        || matches!(tokens.get(i - 1), Some(t) if t.kind == TokenKind::Punct
            && matches!(t.text.as_str(), "." | ":" | ";" | "!" | "?"))
}

fn looks_nounish(c: &Candidates) -> bool {
    if let Some(f) = c.fixed {
        return f.is_noun() || f == Tag::CD;
    }
    if let Some(tags) = c.closed {
        return tags.first().map(|t| t.is_noun()).unwrap_or(false);
    }
    c.noun.is_some() || c.adj.is_some() || c.default.is_noun()
}

/// Pass one: propose candidates for a single token. `lower_sym` is the
/// token's interned lowercase form (resolved once here; every lexicon probe
/// below shares the `&'static str`).
fn analyze(token: &Token, lower_sym: Sym, sentence_initial: bool, lem: &Lemmatizer) -> Candidates {
    let mut c = Candidates {
        default: Tag::NN,
        ..Candidates::default()
    };
    match token.kind {
        TokenKind::Number(_) => {
            c.fixed = Some(Tag::CD);
            return c;
        }
        TokenKind::Punct => {
            c.fixed = Some(Tag::PUNCT);
            return c;
        }
        TokenKind::Symbol => {
            c.fixed = Some(Tag::SYM);
            return c;
        }
        TokenKind::Word => {}
    }
    let lower = lower_sym.as_str();
    if let Some(tags) = closed_class(lower) {
        c.closed = Some(tags);
        return c;
    }
    if word_value(lower).is_some() {
        c.fixed = Some(Tag::CD);
        return c;
    }

    // Adverbs.
    if is_known_adverb(lower) || (lower.ends_with("ly") && lower.len() > 4) {
        c.adv = true;
    }
    // Verb readings.
    if is_known_verb(lower) {
        // Zero-derived pasts ("quit", "put", "set") prefer the past reading;
        // context can still demand VB after to/modals.
        c.verb = Some(if cmr_lexicon::verb_past(lower) == lower {
            Tag::VBD
        } else {
            Tag::VBP
        });
    } else {
        let vlemma = lem.lemma(lower, WordClass::Verb);
        if vlemma != lower && is_known_verb(&vlemma) {
            c.verb = Some(verb_form_tag(lower, &vlemma));
        }
    }
    // Adjective readings.
    if is_known_adjective(lower) {
        c.adj = Some(Tag::JJ);
    } else {
        let alemma = lem.lemma(lower, WordClass::Adjective);
        if alemma != lower && is_known_adjective(&alemma) {
            c.adj = Some(if lower.ends_with("est") {
                Tag::JJS
            } else {
                Tag::JJR
            });
        }
    }
    // Noun readings.
    if is_known_noun(lower) {
        c.noun = Some(Tag::NN);
    } else {
        let nlemma = lem.lemma(lower, WordClass::Noun);
        if nlemma != lower && is_known_noun(&nlemma) {
            c.noun = Some(Tag::NNS);
        }
    }

    // Unknown word: suffix heuristics, then capitalization.
    if c.noun.is_none() && c.verb.is_none() && c.adj.is_none() && !c.adv {
        c.default = guess_unknown(lower, &token.text, sentence_initial);
    }
    c
}

/// Tag for an inflected form of a known verb lemma.
fn verb_form_tag(surface: &str, lemma: &str) -> Tag {
    if surface.ends_with("ing") {
        return Tag::VBG;
    }
    // 3sg: surface is lemma+s-ish and ends in s.
    if surface.ends_with('s') && !surface.ends_with("ss") {
        return Tag::VBZ;
    }
    if surface.ends_with("ed") {
        return Tag::VBD; // VBD/VBN resolved contextually
    }
    // Irregular past or participle (e.g. "underwent", "undergone").
    if cmr_lexicon::verb_past_participle(lemma) == surface
        && cmr_lexicon::verb_past(lemma) != surface
    {
        return Tag::VBN;
    }
    Tag::VBD
}

/// Suffix + capitalization heuristics for out-of-lexicon words (mostly
/// medical vocabulary, which is noun-heavy).
fn guess_unknown(lower: &str, original: &str, sentence_initial: bool) -> Tag {
    const NOUN_SUFFIXES: &[&str] = &[
        "tion", "sion", "ment", "ness", "ity", "ance", "ence", "ism", "itis", "osis", "oma",
        "ectomy", "otomy", "ostomy", "plasty", "scopy", "gram", "graphy", "pathy", "emia", "uria",
        "algia", "ology", "age", "ist", "er", "or",
    ];
    const ADJ_SUFFIXES: &[&str] = &[
        "ous", "ive", "al", "ic", "ary", "able", "ible", "ful", "less", "oid", "atic",
    ];
    const VERB_SUFFIXES: &[&str] = &["ize", "ise", "ate", "ify"];

    // Mid-sentence capitalization marks a proper noun (drug and brand names
    // like "Lipitor") regardless of suffix shape.
    let capitalized = original
        .chars()
        .next()
        .map(char::is_uppercase)
        .unwrap_or(false);
    if capitalized && !sentence_initial {
        return Tag::NNP;
    }
    if lower.ends_with("ly") && lower.len() > 4 {
        return Tag::RB;
    }
    for s in NOUN_SUFFIXES {
        if lower.ends_with(s) && lower.len() > s.len() + 2 {
            return Tag::NN;
        }
    }
    for s in ADJ_SUFFIXES {
        if lower.ends_with(s) && lower.len() > s.len() + 2 {
            return Tag::JJ;
        }
    }
    for s in VERB_SUFFIXES {
        if lower.ends_with(s) && lower.len() > s.len() + 2 {
            return Tag::VB;
        }
    }
    if lower.ends_with("ing") && lower.len() > 5 {
        return Tag::VBG;
    }
    if lower.ends_with("ed") && lower.len() > 4 {
        return Tag::VBN;
    }
    if lower.ends_with('s')
        && !lower.ends_with("ss")
        && !lower.ends_with("us")
        && !lower.ends_with("is")
        && lower.len() > 3
    {
        return Tag::NNS;
    }
    Tag::NN
}

fn is_have(word: &str) -> bool {
    matches!(word, "have" | "has" | "had" | "having")
}

fn is_be(word: &str) -> bool {
    matches!(
        word,
        "be" | "am" | "is" | "are" | "was" | "were" | "been" | "being"
    )
}

fn is_do(word: &str) -> bool {
    matches!(word, "do" | "does" | "did")
}

/// Pass two: choose the final tag given left context and lookahead.
fn resolve(c: &Candidates, prev: Option<(Tag, Sym)>, next_is_nounish: bool) -> Tag {
    if let Some(tag) = c.fixed {
        return tag;
    }
    if let Some(tags) = c.closed {
        return resolve_closed(tags, prev, next_is_nounish);
    }
    let prev_tag = prev.map(|(t, _)| t);
    let prev_word = prev.map(|(_, w)| w.as_str()).unwrap_or("");

    // Nominal left context forces a nominal/adjectival reading.
    let nominal_left = matches!(
        prev_tag,
        Some(Tag::DT | Tag::PRPS | Tag::JJ | Tag::JJR | Tag::JJS | Tag::CD)
    );
    // Verbal left context prefers a verb reading.
    let after_to_or_md = matches!(prev_tag, Some(Tag::TO | Tag::MD));

    if after_to_or_md && c.verb.is_some() {
        return Tag::VB;
    }
    // Do-support: "does not smoke" takes the base form.
    if is_do(prev_word) && c.verb.is_some() {
        return Tag::VB;
    }
    if is_have(prev_word) {
        if let Some(v) = c.verb {
            // "has had", "had undergone": participial reading.
            return match v {
                Tag::VBD | Tag::VBN => Tag::VBN,
                other => other,
            };
        }
    }
    if is_be(prev_word) {
        if let Some(v) = c.verb {
            if v == Tag::VBG {
                return Tag::VBG;
            }
            if matches!(v, Tag::VBD | Tag::VBN) {
                // "was diagnosed": passive participle...
                if c.adj.is_some() && next_is_nounish {
                    return Tag::JJ;
                }
                return Tag::VBN;
            }
        }
        // "is negative", "is significant": predicative adjective.
        if let Some(a) = c.adj {
            return a;
        }
    }
    if nominal_left {
        // Adjective before a noun, otherwise noun.
        if let Some(a) = c.adj {
            if next_is_nounish || c.noun.is_none() {
                return a;
            }
        }
        if let Some(n) = c.noun {
            return n;
        }
        if let Some(a) = c.adj {
            return a;
        }
        if c.adv {
            return Tag::RB;
        }
        // A verb candidate after a determiner is a nominalization ("the use").
        if c.verb.is_some() {
            return Tag::NN;
        }
    }
    // Subject to the left: prefer a finite verb whose agreement fits.
    // A bare VBP after a singular noun ("alcohol use") is a noun-noun
    // compound, not a clause verb, so only pronouns/plurals license VBP.
    if let Some(v) = c.verb {
        let licensed = matches!(
            (prev_tag, v),
            (Some(Tag::PRP | Tag::EX), Tag::VBZ | Tag::VBD | Tag::VBP)
                | (Some(Tag::NN | Tag::NNP), Tag::VBZ | Tag::VBD)
                | (Some(Tag::NNS), Tag::VBP | Tag::VBD)
        );
        if licensed {
            return v;
        }
        // A gerund right after a verb is its complement ("quit smoking",
        // "denies drinking").
        if v == Tag::VBG && prev_tag.map(|t| t.is_verb()).unwrap_or(false) {
            return Tag::VBG;
        }
    }
    // Adverb context: adverbs mostly precede verbs/adjectives or follow them.
    if c.adv && c.noun.is_none() && c.verb.is_none() && c.adj.is_none() {
        return Tag::RB;
    }
    // A word with both adverb and adjective readings ("daily") is an
    // adverb unless it sits before a nominal.
    if c.adv && c.adj.is_some() && !next_is_nounish {
        return Tag::RB;
    }
    // Attributive adjective.
    if let Some(a) = c.adj {
        if next_is_nounish || c.noun.is_none() && c.verb.is_none() {
            return a;
        }
    }
    if let Some(n) = c.noun {
        return n;
    }
    if let Some(v) = c.verb {
        return v;
    }
    if let Some(a) = c.adj {
        return a;
    }
    if c.adv {
        return Tag::RB;
    }
    c.default
}

fn resolve_closed(tags: &'static [Tag], prev: Option<(Tag, Sym)>, next_is_nounish: bool) -> Tag {
    let first = tags[0];
    if tags.len() == 1 {
        return first;
    }
    // "her": possessive before a nominal, object pronoun otherwise.
    if tags.contains(&Tag::PRPS) && tags.contains(&Tag::PRP) {
        return if next_is_nounish { Tag::PRPS } else { Tag::PRP };
    }
    // "that": complementizer after a verb, determiner before a nominal.
    if first == Tag::DT && tags.contains(&Tag::IN) {
        if let Some((t, _)) = prev {
            if t.is_verb() {
                return Tag::IN;
            }
        }
        return Tag::DT;
    }
    // "there": existential at clause start, adverb otherwise.
    if first == Tag::EX {
        return if prev.is_none() { Tag::EX } else { Tag::RB };
    }
    first
}

/// Lemma under the chosen tag's class. Identity lemmas (the common case)
/// reuse the already-interned lowercase symbol without touching the
/// interner.
fn lemma_for(lower: Sym, tag: Tag, lem: &Lemmatizer) -> Sym {
    let class = if tag.is_verb() {
        WordClass::Verb
    } else if tag.is_noun() {
        WordClass::Noun
    } else if tag.is_adjective() {
        WordClass::Adjective
    } else {
        return lower;
    };
    let s = lower.as_str();
    let l = lem.lemma(s, class);
    if l == s {
        lower
    } else {
        intern(&l)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cmr_text::tokenize;

    fn tags(s: &str) -> Vec<String> {
        PosTagger::new()
            .tag(&tokenize(s))
            .iter()
            .map(|t| t.tag.to_string())
            .collect()
    }

    #[test]
    fn she_denies_alcohol_use() {
        assert_eq!(
            tags("She denies alcohol use."),
            vec!["PRP", "VBZ", "NN", "NN", "PUNCT"]
        );
    }

    #[test]
    fn vitals_sentence() {
        let t = tags("Blood pressure is 144/90, pulse of 84.");
        assert_eq!(
            t,
            vec!["NN", "NN", "VBZ", "CD", "PUNCT", "NN", "IN", "CD", "PUNCT"]
        );
    }

    #[test]
    fn past_medical_history_phrase() {
        // The paper's example: "a postoperative CVA after undergoing a
        // cholecystectomy and a midline hernia closure"
        let t = tags(
            "a postoperative CVA after undergoing a cholecystectomy and a midline hernia closure",
        );
        assert_eq!(
            t,
            vec!["DT", "JJ", "NNP", "IN", "VBG", "DT", "NN", "CC", "DT", "JJ", "NN", "NN"]
        );
    }

    #[test]
    fn quit_smoking_years_ago() {
        let t = tags("She quit smoking five years ago");
        assert_eq!(t, vec!["PRP", "VBD", "VBG", "CD", "NNS", "RB"]);
    }

    #[test]
    fn never_smoked() {
        assert_eq!(
            tags("She has never smoked"),
            vec!["PRP", "VBZ", "RB", "VBN"]
        );
    }

    #[test]
    fn currently_a_smoker() {
        assert_eq!(
            tags("She is currently a smoker"),
            vec!["PRP", "VBZ", "RB", "DT", "NN"]
        );
    }

    #[test]
    fn number_words_are_cd() {
        let t = tags("gravida four para three");
        assert_eq!(t[1], "CD");
        assert_eq!(t[3], "CD");
    }

    #[test]
    fn determiner_blocks_verb_reading() {
        // "use" after "alcohol"(NN)… and after a determiner.
        assert_eq!(tags("the use"), vec!["DT", "NN"]);
    }

    #[test]
    fn possessive_her_vs_object_her() {
        assert_eq!(tags("her breast history"), vec!["PRP$", "NN", "NN"]);
        let t = tags("We examined her");
        assert_eq!(*t.last().unwrap(), "PRP");
    }

    #[test]
    fn unknown_medical_nouns_default_nn() {
        let t = tags("significant for hydrochlorothiazide");
        assert_eq!(t, vec!["JJ", "IN", "NN"]);
    }

    #[test]
    fn capitalized_drug_is_nnp() {
        let t = tags("She takes Lipitor daily");
        assert_eq!(t[2], "NNP");
    }

    #[test]
    fn suffix_guesses() {
        assert_eq!(tags("lumpectomy")[0], "NN");
        assert_eq!(tags("mammographic findings")[0], "JJ");
        assert_eq!(tags("palpation shows nothing")[0], "NN");
    }

    #[test]
    fn was_diagnosed_participle() {
        let t = tags("She was diagnosed with cancer");
        assert_eq!(t, vec!["PRP", "VBD", "VBN", "IN", "NN"]);
    }

    #[test]
    fn modal_forces_base_verb() {
        let t = tags("She will quit");
        assert_eq!(t, vec!["PRP", "MD", "VB"]);
    }

    #[test]
    fn lemmas_follow_tags() {
        let tagged = PosTagger::new().tag(&tokenize("She denies pregnancies"));
        assert_eq!(tagged[1].lemma, "deny");
        assert_eq!(tagged[2].lemma, "pregnancy");
    }

    #[test]
    fn empty_input() {
        assert!(PosTagger::new().tag(&[]).is_empty());
    }
}
