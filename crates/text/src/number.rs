//! English number words.
//!
//! The paper notes that "numbers in patient records can be either digits
//! (e.g. 17) or English words (e.g., seventeen)". Digit numbers are handled
//! by the tokenizer; this module recognizes number *words* — including
//! hyphenated (`ninety-eight`) and multi-token (`one hundred fifty four`)
//! forms — and annotates them over the token stream.

use crate::span::Span;
use crate::token::{NumberValue, Token, TokenKind};

/// A number found in a token stream: either a digit token or a run of number
/// words, reduced to a single value.
#[derive(Debug, Clone, PartialEq)]
pub struct NumberAnnotation {
    /// Index of the first token of the number.
    pub first_token: usize,
    /// Index of the last token of the number (inclusive).
    pub last_token: usize,
    /// Span covering the whole number in the source text.
    pub span: Span,
    /// Parsed value.
    pub value: NumberValue,
}

/// Value of a single simple number word (`"seventeen"` → 17), if it is one.
/// Handles hyphenated tens-units compounds (`"ninety-eight"` → 98).
pub fn word_value(word: &str) -> Option<i64> {
    let w = word.to_lowercase();
    if let Some(v) = unit_value(&w) {
        return Some(v);
    }
    if let Some(v) = tens_value(&w) {
        return Some(v);
    }
    // Hyphenated compound: tens-unit, e.g. "ninety-eight".
    if let Some((tens, unit)) = w.split_once('-') {
        if let (Some(t), Some(u)) = (tens_value(tens), unit_value(unit)) {
            if (1..=9).contains(&u) {
                return Some(t + u);
            }
        }
    }
    scale_value(&w)
}

fn unit_value(w: &str) -> Option<i64> {
    Some(match w {
        "zero" => 0,
        "one" => 1,
        "two" => 2,
        "three" => 3,
        "four" => 4,
        "five" => 5,
        "six" => 6,
        "seven" => 7,
        "eight" => 8,
        "nine" => 9,
        "ten" => 10,
        "eleven" => 11,
        "twelve" => 12,
        "thirteen" => 13,
        "fourteen" => 14,
        "fifteen" => 15,
        "sixteen" => 16,
        "seventeen" => 17,
        "eighteen" => 18,
        "nineteen" => 19,
        _ => return None,
    })
}

fn tens_value(w: &str) -> Option<i64> {
    Some(match w {
        "twenty" => 20,
        "thirty" => 30,
        "forty" => 40,
        "fifty" => 50,
        "sixty" => 60,
        "seventy" => 70,
        "eighty" => 80,
        "ninety" => 90,
        _ => return None,
    })
}

fn scale_value(w: &str) -> Option<i64> {
    Some(match w {
        "hundred" => 100,
        "thousand" => 1000,
        _ => return None,
    })
}

fn is_scale(w: &str) -> bool {
    matches!(w, "hundred" | "thousand")
}

/// Parses a run of lower-cased number words (already split into words) into a
/// value, if the whole run forms a valid English number.
///
/// Accepts forms like `["seventeen"]`, `["ninety", "eight"]`,
/// `["one", "hundred", "fifty", "four"]`, `["two", "thousand"]`.
pub fn parse_word_run(words: &[&str]) -> Option<i64> {
    if words.is_empty() {
        return None;
    }
    let mut total: i64 = 0;
    let mut current: i64 = 0;
    let mut any = false;
    for &w in words {
        if is_scale(w) {
            let scale = scale_value(w)?;
            // "hundred" with no preceding unit means 1 hundred.
            let base = if current == 0 { 1 } else { current };
            if scale == 100 {
                current = base * 100;
            } else {
                total += base * scale;
                current = 0;
            }
            any = true;
        } else if let Some(v) = word_value(w) {
            // Reject sequences like "five three" that are two separate
            // numbers, not one: a unit may only follow a tens word or a
            // scale residue.
            let unit_after_tens = current % 100 != 0 && current % 10 == 0 && v < 10;
            if unit_after_tens || current % 100 == 0 {
                current += v;
            } else {
                return None;
            }
            any = true;
        } else {
            return None;
        }
    }
    if !any {
        return None;
    }
    Some(total + current)
}

/// Scans a token stream and returns every number — digit tokens as produced
/// by the tokenizer plus maximal runs of number words.
pub fn annotate_numbers(tokens: &[Token]) -> Vec<NumberAnnotation> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Number(value) => {
                out.push(NumberAnnotation {
                    first_token: i,
                    last_token: i,
                    span: tokens[i].span,
                    value,
                });
                i += 1;
            }
            TokenKind::Word => {
                // Greedily take the longest run of number words that parses.
                let lower: Vec<String> = tokens[i..]
                    .iter()
                    .take_while(|t| t.kind.is_word())
                    .map(|t| t.lower())
                    .collect();
                let mut best: Option<(usize, i64)> = None;
                let mut run: Vec<&str> = Vec::new();
                for (k, w) in lower.iter().enumerate() {
                    if word_value(w).is_none() && !is_scale(w) {
                        break;
                    }
                    run.push(w.as_str());
                    if let Some(v) = parse_word_run(&run) {
                        best = Some((k, v));
                    }
                }
                if let Some((k, v)) = best {
                    out.push(NumberAnnotation {
                        first_token: i,
                        last_token: i + k,
                        span: tokens[i].span.cover(&tokens[i + k].span),
                        value: NumberValue::Int(v),
                    });
                    i += k + 1;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn simple_word_values() {
        assert_eq!(word_value("seventeen"), Some(17));
        assert_eq!(word_value("Ninety"), Some(90));
        assert_eq!(word_value("ninety-eight"), Some(98));
        assert_eq!(word_value("pressure"), None);
        assert_eq!(word_value("ninety-teen"), None);
    }

    #[test]
    fn word_runs() {
        assert_eq!(parse_word_run(&["seventeen"]), Some(17));
        assert_eq!(parse_word_run(&["ninety", "eight"]), Some(98));
        assert_eq!(
            parse_word_run(&["one", "hundred", "fifty", "four"]),
            Some(154)
        );
        assert_eq!(parse_word_run(&["two", "thousand"]), Some(2000));
        assert_eq!(parse_word_run(&["hundred"]), Some(100));
        assert_eq!(
            parse_word_run(&["five", "three"]),
            None,
            "two separate numbers"
        );
        assert_eq!(parse_word_run(&[]), None);
        assert_eq!(parse_word_run(&["blood"]), None);
    }

    #[test]
    fn annotate_digit_numbers() {
        let toks = tokenize("pulse of 84, temperature of 98.3");
        let anns = annotate_numbers(&toks);
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].value, NumberValue::Int(84));
        assert_eq!(anns[1].value, NumberValue::Float(98.3));
    }

    #[test]
    fn annotate_word_numbers() {
        let toks = tokenize("menarche at age seventeen");
        let anns = annotate_numbers(&toks);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].value, NumberValue::Int(17));
        assert_eq!(anns[0].first_token, anns[0].last_token);
    }

    #[test]
    fn annotate_multiword_number() {
        let toks = tokenize("weight of one hundred fifty four pounds");
        let anns = annotate_numbers(&toks);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].value, NumberValue::Int(154));
        assert_eq!(anns[0].last_token - anns[0].first_token, 3);
    }

    #[test]
    fn annotate_hyphenated_word_number() {
        let toks = tokenize("She quit smoking twenty-five years ago");
        let anns = annotate_numbers(&toks);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].value, NumberValue::Int(25));
    }

    #[test]
    fn one_is_ambiguous_but_still_annotated() {
        // "one" as a determiner is a known over-trigger; association logic
        // downstream decides whether to use it. The annotator reports it.
        let toks = tokenize("one more thing");
        let anns = annotate_numbers(&toks);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].value, NumberValue::Int(1));
    }

    #[test]
    fn ratio_annotated() {
        let toks = tokenize("Blood pressure is 144/90.");
        let anns = annotate_numbers(&toks);
        assert_eq!(anns.len(), 1);
        assert!(anns[0].value.is_ratio());
    }

    #[test]
    fn span_covers_whole_word_number() {
        let src = "gravida four para three";
        let toks = tokenize(src);
        let anns = annotate_numbers(&toks);
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].span.slice(src), "four");
        assert_eq!(anns[1].span.slice(src), "three");
    }
}
