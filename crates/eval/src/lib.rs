//! # cmr-eval — evaluation metrics and report tables
//!
//! Implements exactly the measures of the paper's §5: precision/recall for
//! single-valued attributes, and the pooled per-subject formulas
//! (`P = Σ ETrueᵢ / Σ ETotalᵢ`, `R = Σ ETrueᵢ / Σ TInstᵢ`) for multi-valued
//! medical-term attributes, plus text-table rendering for the reproduction
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod bootstrap;
mod metrics;
mod table;

pub use bootstrap::{Interval, Metric};
pub use metrics::{MultiValueScore, PrecisionRecall};
pub use table::{pct, Table};
