//! The §3.1 story, end to end: how a vitals sentence becomes numbers.
//!
//! Shows the linkage diagram (the paper's Figure 1), the weighted graph
//! distances that drive feature–number association, and the pattern
//! fallback on a fragment the parser cannot handle.
//!
//! ```text
//! cargo run --example vitals_extraction
//! ```

use cmr::core::FeatureSpec;
use cmr::prelude::*;

fn main() {
    let parser = LinkParser::new();
    let weights = LinkWeights::default();
    let sentence =
        "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.";

    println!("sentence: {sentence}\n");
    let linkage = parser
        .parse_sentence(sentence)
        .expect("the paper's example parses");
    println!("{}", linkage.diagram());

    println!("weighted shortest distances (feature keyword → number):");
    for feature in ["pressure", "pulse", "temperature", "weight"] {
        let f = linkage
            .words
            .iter()
            .position(|w| w == feature)
            .expect("word present");
        let d = linkage.distances_from(f, &weights);
        let mut pairs: Vec<(String, f64)> = ["144/90", "84", "98.3", "154"]
            .iter()
            .filter_map(|n| {
                linkage
                    .words
                    .iter()
                    .position(|w| w == n)
                    .map(|i| (n.to_string(), d[i]))
            })
            .collect();
        pairs.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = &pairs[0];
        println!(
            "  {feature:<12} nearest number: {:<8} (distance {:.2})  all: {:?}",
            best.0,
            best.1,
            pairs
                .iter()
                .map(|(n, d)| format!("{n}={d:.2}"))
                .collect::<Vec<_>>()
        );
    }

    // The extractor wraps this machinery, plus specs and type filtering.
    println!("\nnumeric extractor on the same sentence:");
    let schema = Schema::paper();
    let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
    let extractor = NumericExtractor::new();
    for hit in extractor.extract_sentence(sentence, &specs) {
        println!(
            "  {:<16} = {:<8} via {:?}",
            hit.field,
            hit.value.to_string(),
            hit.method
        );
    }

    // Fragments do not parse — the paper's pattern approach takes over.
    let fragment = "Blood pressure: 144/90.";
    println!("\nfragment: {fragment}");
    println!("  parses? {}", parser.parse_sentence(fragment).is_some());
    for hit in extractor.extract_sentence(fragment, &specs) {
        println!(
            "  {:<16} = {:<8} via {:?}",
            hit.field,
            hit.value.to_string(),
            hit.method
        );
    }
}
