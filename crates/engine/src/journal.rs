//! The write-ahead run journal: crash-recovery for batch extraction.
//!
//! Format — NDJSON, one flushed line per event:
//!
//! ```text
//! {"version":2,"config_fingerprint":"6c62…","asset_fingerprint":"a3f9…","corpus_hash":"08b1…","records":N}
//! {"entry":{"index":0,"output":{"Ok":{…extracted record…}}},"crc":"9f3a…"}
//! {"entry":{"index":1,"output":{"Err":{"Budget":{"sentences_done":4}}}},"crc":"08b1…"}
//! …
//! ```
//!
//! The first line is the [`RunManifest`]: fingerprints of everything that
//! determines the output bytes (engine config, rule assets, the corpus
//! itself), so a resume against a *different* run is rejected instead of
//! silently merging incompatible outputs. Each subsequent line is one
//! completed record, appended from the engine's ordered sink — the sink
//! runs strictly in input order, so a journal is always a contiguous
//! prefix `0..k` of the run. Every entry line carries a trailing FNV-1a
//! checksum of its serialized entry, so a line that *looks* complete but
//! was assembled from torn fragments (or rotted on disk) is caught, not
//! parsed.
//!
//! Crash tolerance: every line is written with a trailing `\n` in one
//! `write_all` followed by a flush, so a process killed mid-write leaves
//! at most one torn final line, which [`read_journal`] detects (no
//! trailing newline) and drops. The reported [`JournalRead::valid_len`]
//! is the byte offset of the last intact line; [`JournalWriter::append_to`]
//! truncates there before appending, so a resumed journal is
//! self-healing. A damaged line that is *not* final — or a complete
//! final line failing its checksum — is structural corruption and is
//! rejected as [`JournalError::Corrupt`] with the byte offset, never
//! silently skipped. Durability is against process death (the threat
//! model here), not OS crash — lines reach the page cache, no fsync per
//! record.
//!
//! Resume contract: replaying the journaled entries and processing the
//! remaining `k..n` records yields output byte-identical to an
//! uninterrupted run, because extraction is deterministic per record and
//! serialization is canonical.
//!
//! Fault injection: the write paths carry `journal::manifest`,
//! `journal::append`, and `journal::truncate` failpoints (see
//! cmr-failpoint; no-ops unless built with `--features failpoints`).

use crate::engine::{EngineConfig, EngineError};
use cmr_core::ExtractedRecord;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Journal format version; bumped on any incompatible layout change.
/// v2 added the per-line entry checksum.
pub const JOURNAL_VERSION: u32 = 2;

/// Identity of a run: everything that determines its output bytes.
///
/// The three fingerprints are stored as 16-digit hex strings, not JSON
/// numbers: a u64 hash routinely exceeds `i64::MAX`, which plain JSON
/// integers (and this workspace's serializer) cannot represent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Journal format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Fingerprint of the output-affecting engine configuration (hex).
    pub config_fingerprint: String,
    /// Fingerprint of the compiled-in rule assets (hex).
    pub asset_fingerprint: String,
    /// Hash of the input corpus (order-sensitive, length-prefixed; hex).
    pub corpus_hash: String,
    /// Number of records in the corpus.
    pub records: usize,
}

/// Formats a fingerprint the way [`RunManifest`] stores it.
fn hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

impl RunManifest {
    /// The manifest of a fresh run over `texts` with `cfg`.
    pub fn for_run(cfg: &EngineConfig, texts: &[String]) -> RunManifest {
        RunManifest {
            version: JOURNAL_VERSION,
            config_fingerprint: hex(config_fingerprint(cfg)),
            asset_fingerprint: hex(crate::engine::asset_fingerprint()),
            corpus_hash: hex(corpus_hash(texts)),
            records: texts.len(),
        }
    }

    /// Explains the first incompatibility with `current`, or `None` when a
    /// journal under `self` may be resumed as `current`.
    pub fn mismatch(&self, current: &RunManifest) -> Option<String> {
        if self.version != current.version {
            return Some(format!(
                "journal format v{} (this build writes v{})",
                self.version, current.version
            ));
        }
        if self.config_fingerprint != current.config_fingerprint {
            return Some("engine configuration changed since the journal was written".into());
        }
        if self.asset_fingerprint != current.asset_fingerprint {
            return Some("rule assets changed since the journal was written".into());
        }
        if self.records != current.records || self.corpus_hash != current.corpus_hash {
            return Some(format!(
                "input corpus changed ({} records then, {} now)",
                self.records, current.records
            ));
        }
        None
    }
}

/// One journaled record: its input index and its full outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Index in the input stream.
    pub index: usize,
    /// The record's outcome, exactly as the sink saw it.
    pub output: Result<ExtractedRecord, EngineError>,
}

/// On-disk shape of an entry line: the entry plus a trailing checksum of
/// its canonical serialization (16-hex-digit FNV-1a, like the manifest
/// fingerprints). Internal — the public API speaks [`JournalEntry`].
#[derive(Debug, Deserialize)]
struct JournalLine {
    entry: JournalEntry,
    crc: String,
}

/// The checksum a well-formed entry line carries for `entry_json`.
fn line_crc(entry_json: &str) -> String {
    hex(fnv1a(entry_json.as_bytes(), FNV_OFFSET))
}

/// Appends manifest and entry lines, one flushed `write_all` per line.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Starts a fresh journal at `path` (truncating), writing the manifest
    /// line immediately.
    pub fn create(path: &Path, manifest: &RunManifest) -> std::io::Result<JournalWriter> {
        let mut writer = JournalWriter {
            file: File::create(path)?,
        };
        let line = serde_json::to_string(manifest)
            .map_err(|e| std::io::Error::other(format!("journal serialization failed: {e:?}")))?;
        writer.write_line("journal::manifest", line)?;
        Ok(writer)
    }

    /// Reopens an existing journal for resume: truncates to `valid_len`
    /// (dropping a torn final line, see [`read_journal`]) and positions at
    /// the end for appending.
    pub fn append_to(path: &Path, valid_len: u64) -> std::io::Result<JournalWriter> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        if let Some(inj) = cmr_failpoint::io_inject("journal::truncate") {
            return Err(inj.into_io_error());
        }
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(JournalWriter { file })
    }

    /// Appends one completed record, checksummed.
    pub fn append(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        let entry_json = serde_json::to_string(entry)
            .map_err(|e| std::io::Error::other(format!("journal serialization failed: {e:?}")))?;
        let crc = line_crc(&entry_json);
        self.write_line(
            "journal::append",
            format!("{{\"entry\":{entry_json},\"crc\":\"{crc}\"}}"),
        )
    }

    fn write_line(&mut self, failpoint: &str, mut line: String) -> std::io::Result<()> {
        line.push('\n');
        if let Some(inj) = cmr_failpoint::io_inject(failpoint) {
            if let cmr_failpoint::IoInjection::Partial(n) = inj {
                // A torn write: the prefix lands on disk, then the
                // operation fails — exactly what a kill or a full disk
                // mid-`write` leaves behind.
                let cut = n.min(line.len());
                self.file.write_all(&line.as_bytes()[..cut])?;
                let _ = self.file.flush();
                return Err(cmr_failpoint::IoInjection::Partial(n).into_io_error());
            }
            return Err(inj.into_io_error());
        }
        // One unbuffered write per line: the OS sees whole lines or a
        // single torn tail, never interleaved fragments. The flush is a
        // no-op on `File` but keeps the write-then-flush contract explicit
        // for any buffered writer swapped in later.
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// A parsed journal: the manifest, the contiguous completed prefix, and
/// where the intact bytes end.
#[derive(Debug)]
pub struct JournalRead {
    /// The manifest from line one.
    pub manifest: RunManifest,
    /// Journaled outcomes for records `0..entries.len()`.
    pub entries: Vec<JournalEntry>,
    /// Byte offset just past the last intact line; a torn tail (kill
    /// mid-write) lies beyond it and is dropped on resume.
    pub valid_len: u64,
}

/// Why a journal could not be read.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// A structurally impossible journal: an unparseable or
    /// checksum-failing *complete* line, or a gap in the record indices.
    /// Only a torn *final* line (no trailing newline) is tolerated; a
    /// damaged line with intact lines after it is never skipped.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Byte offset where the offending line starts.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "cannot read journal: {e}"),
            JournalError::Corrupt {
                line,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "journal corrupt at line {line} (byte offset {offset}): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Reads and validates a journal. Tolerates exactly one torn trailing
/// line (no newline — a kill mid-write); rejects anything else malformed,
/// including checksum failures, with the byte offset of the damage (see
/// [`JournalError::Corrupt`]).
pub fn read_journal(path: &Path) -> Result<JournalRead, JournalError> {
    let data = std::fs::read(path)?;
    let mut manifest: Option<RunManifest> = None;
    let mut entries: Vec<JournalEntry> = Vec::new();
    let mut valid_len = 0u64;
    let mut line_no = 0usize;
    let mut offset = 0usize;
    while offset < data.len() {
        let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
            // No trailing newline: the writer was killed mid-line. Intact
            // lines end at `valid_len`; the tail is dropped, not an error.
            break;
        };
        line_no += 1;
        let line_end = offset + nl;
        let corrupt = |reason: String| JournalError::Corrupt {
            line: line_no,
            offset: offset as u64,
            reason,
        };
        let text = std::str::from_utf8(&data[offset..line_end])
            .map_err(|_| corrupt("complete line is not UTF-8".into()))?;
        if let Some(ref m) = manifest {
            // A journal written by a different format version has entry
            // lines this reader cannot judge; return just the manifest so
            // the caller's `mismatch` check reports the version cleanly
            // instead of a misleading corruption error.
            if m.version != JOURNAL_VERSION {
                break;
            }
            let parsed: JournalLine = serde_json::from_str(text)
                .map_err(|e| corrupt(format!("entry does not parse: {e:?}")))?;
            let entry_json = serde_json::to_string(&parsed.entry)
                .map_err(|e| corrupt(format!("entry does not reserialize: {e:?}")))?;
            let expected = line_crc(&entry_json);
            if parsed.crc != expected {
                return Err(corrupt(format!(
                    "entry checksum mismatch (line says {}, content hashes to {expected})",
                    parsed.crc
                )));
            }
            if parsed.entry.index != entries.len() {
                return Err(corrupt(format!(
                    "entry index {} where {} was expected (journal must be a contiguous prefix)",
                    parsed.entry.index,
                    entries.len()
                )));
            }
            entries.push(parsed.entry);
        } else {
            let m: RunManifest = serde_json::from_str(text)
                .map_err(|e| corrupt(format!("manifest does not parse: {e:?}")))?;
            manifest = Some(m);
        }
        offset = line_end + 1;
        valid_len = offset as u64;
    }
    let manifest = manifest.ok_or(JournalError::Corrupt {
        line: 1,
        offset: 0,
        reason: "no complete manifest line (journal truncated at birth)".into(),
    })?;
    if entries.len() > manifest.records {
        return Err(JournalError::Corrupt {
            line: line_no,
            offset: valid_len,
            reason: format!(
                "{} entries for a {}-record corpus",
                entries.len(),
                manifest.records
            ),
        });
    }
    Ok(JournalRead {
        manifest,
        entries,
        valid_len,
    })
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Order-sensitive FNV-1a hash of the corpus, with each text
/// length-prefixed so record boundaries are part of the identity.
pub fn corpus_hash(texts: &[String]) -> u64 {
    let mut h = FNV_OFFSET;
    for t in texts {
        h = fnv1a(&(t.len() as u64).to_le_bytes(), h);
        h = fnv1a(t.as_bytes(), h);
    }
    h
}

/// Fingerprint of the *output-affecting* engine configuration. Scheduling
/// knobs (`jobs`, `queue_depth`) are excluded by design: the engine
/// guarantees byte-identical output for any worker count, so resuming
/// with a different `--jobs` is sound and allowed.
pub fn config_fingerprint(cfg: &EngineConfig) -> u64 {
    let key = format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{}|{:?}",
        cfg.method,
        cfg.term_patterns,
        cfg.salvage,
        cfg.max_record_millis,
        cfg.max_record_sentences,
        cfg.fail_fast,
        cfg.retry,
    );
    fnv1a(key.as_bytes(), FNV_OFFSET)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn scratch_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cmr-journal-{name}-{}.ndjson", std::process::id()))
    }

    fn manifest() -> RunManifest {
        RunManifest {
            version: JOURNAL_VERSION,
            config_fingerprint: hex(11),
            asset_fingerprint: hex(22),
            corpus_hash: hex(33),
            records: 3,
        }
    }

    fn entry(index: usize) -> JournalEntry {
        JournalEntry {
            index,
            output: Err(EngineError::Budget {
                sentences_done: index,
            }),
        }
    }

    #[test]
    fn write_then_read_roundtrips() {
        let path = scratch_path("roundtrip");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.manifest, manifest());
        assert_eq!(read.entries.len(), 2);
        assert_eq!(read.entries[1].index, 1);
        assert_eq!(
            read.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "fully intact journal is valid to its end"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_and_resume_heals_it() {
        let path = scratch_path("torn");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        drop(w);
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-write of entry 1.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"index\":1,\"outp").unwrap();
        drop(f);

        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 1, "torn line is not an entry");
        assert_eq!(read.valid_len, intact);

        // Resume truncates the tear and appends cleanly.
        let mut w = JournalWriter::append_to(&path, read.valid_len).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.entries.len(), 2);
        assert_eq!(healed.entries[1].index, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gap_in_indices_is_corrupt() {
        let path = scratch_path("gap");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(2)).unwrap();
        drop(w);
        assert!(matches!(
            read_journal(&path),
            Err(JournalError::Corrupt { line: 3, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_on_a_complete_line_is_corrupt() {
        let path = scratch_path("garbage");
        let w = JournalWriter::create(&path, &manifest()).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json\n").unwrap();
        drop(f);
        assert!(matches!(
            read_journal(&path),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_mismatch_reports_the_reason() {
        let a = manifest();
        assert_eq!(a.mismatch(&a), None);
        let mut b = a.clone();
        b.corpus_hash = hex(99);
        assert!(a.mismatch(&b).unwrap().contains("corpus"));
        let mut c = a.clone();
        c.config_fingerprint = hex(99);
        assert!(a.mismatch(&c).unwrap().contains("configuration"));
        let mut d = a.clone();
        d.version = 0;
        assert!(a.mismatch(&d).unwrap().contains("format"));

        // The hex encoding must survive values above i64::MAX, which JSON
        // integers cannot carry.
        let wide = hex(u64::MAX - 3);
        assert_eq!(wide, "fffffffffffffffc");
    }

    #[test]
    fn damaged_non_final_line_is_rejected_with_byte_offset() {
        let path = scratch_path("damaged-mid");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let manifest_end = data
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap();
        // Flip entry 0's index digit: the line still parses, but the
        // checksum no longer matches the content.
        let needle = b"\"index\":0";
        let pos = (manifest_end..data.len())
            .find(|&i| data[i..].starts_with(needle))
            .unwrap();
        data[pos + needle.len() - 1] = b'9';
        std::fs::write(&path, &data).unwrap();

        match read_journal(&path) {
            Err(JournalError::Corrupt {
                line: 2,
                offset,
                reason,
            }) => {
                assert_eq!(offset, manifest_end as u64, "offset names the damaged line");
                assert!(reason.contains("checksum"), "reason was: {reason}");
            }
            other => panic!("expected Corrupt at line 2, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_rot_on_a_complete_final_line_is_corrupt_not_dropped() {
        let path = scratch_path("rot-final");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let needle = b"\"sentences_done\":0";
        let pos = (0..data.len())
            .find(|&i| data[i..].starts_with(needle))
            .unwrap();
        data[pos + needle.len() - 1] = b'7';
        std::fs::write(&path, &data).unwrap();
        assert!(
            matches!(
                read_journal(&path),
                Err(JournalError::Corrupt { line: 2, .. })
            ),
            "a complete line failing its checksum is corruption even at the tail"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn old_format_version_surfaces_via_manifest_mismatch_not_corruption() {
        let path = scratch_path("v1");
        // A v1 journal: no per-line checksums, version 1 in the manifest.
        std::fs::write(
            &path,
            concat!(
                "{\"version\":1,\"config_fingerprint\":\"000000000000000b\",",
                "\"asset_fingerprint\":\"0000000000000016\",",
                "\"corpus_hash\":\"0000000000000021\",\"records\":3}\n",
                "{\"index\":0,\"output\":{\"Err\":{\"Budget\":{\"sentences_done\":0}}}}\n",
            ),
        )
        .unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 0, "old entries are not interpreted");
        let why = read.manifest.mismatch(&manifest()).unwrap();
        assert!(why.contains("format"), "mismatch was: {why}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corpus_hash_is_order_and_boundary_sensitive() {
        let ab = corpus_hash(&["ab".into(), "c".into()]);
        let a_bc = corpus_hash(&["a".into(), "bc".into()]);
        let reversed = corpus_hash(&["c".into(), "ab".into()]);
        assert_ne!(ab, a_bc, "length prefix separates boundaries");
        assert_ne!(ab, reversed, "order matters");
        assert_eq!(ab, corpus_hash(&["ab".into(), "c".into()]));
    }
}
