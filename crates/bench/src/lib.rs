//! # cmr-bench — the reproduction harness
//!
//! One runner per table/figure of the paper plus the ablations listed in
//! DESIGN.md §4. The `repro` binary renders the reports; Criterion benches
//! measure the substrate costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod perf;

pub use chaos::{parse_levels, run_chaos, ChaosConfig, ChaosLevelReport, ChaosReport};
pub use experiments::*;
