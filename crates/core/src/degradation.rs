//! Degradation accounting: which extraction tier served which field, and
//! what the parser failed on along the way.
//!
//! Every [`crate::ExtractedRecord`] carries a [`DegradationReport`] so
//! batch drivers (and their operators) can see *how* a record was
//! extracted, not just *what* was extracted: a record whose fields all
//! came from the link grammar is trustworthy in a way one stitched
//! together by the tier-3 salvage scanner is not.

use serde::{Deserialize, Serialize};

/// The extraction tier that produced a field value, ordered from most to
/// least linguistically informed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Tier 1: link-grammar graph distance over a full parse.
    LinkGrammar,
    /// Tier 2: linguistic patterns (including the `{N}-year-old` pattern
    /// and the proximity ablation baseline).
    Pattern,
    /// Tier 3: the raw-text salvage scanner — keyword-plus-number scan
    /// with OCR-confusion folding, no linguistic structure at all.
    Salvage,
}

impl Tier {
    /// Maps an association method to its tier.
    pub fn of_method(method: crate::MethodUsed) -> Tier {
        match method {
            crate::MethodUsed::LinkGrammar => Tier::LinkGrammar,
            crate::MethodUsed::Pattern
            | crate::MethodUsed::YearOld
            | crate::MethodUsed::Proximity => Tier::Pattern,
            crate::MethodUsed::Salvage => Tier::Salvage,
        }
    }
}

/// Where one extracted field came from and how much to trust it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldProvenance {
    /// The tier that produced the value.
    pub tier: Tier,
    /// A fixed per-mechanism confidence in `(0, 1]` — a prior on the
    /// mechanism, not a calibrated posterior on the value.
    pub confidence: f64,
}

impl FieldProvenance {
    /// Provenance for a numeric hit by its association method.
    pub fn of_method(method: crate::MethodUsed) -> FieldProvenance {
        let confidence = match method {
            crate::MethodUsed::LinkGrammar => 0.95,
            crate::MethodUsed::YearOld => 0.9,
            crate::MethodUsed::Pattern => 0.8,
            crate::MethodUsed::Proximity => 0.6,
            crate::MethodUsed::Salvage => 0.5,
        };
        FieldProvenance {
            tier: Tier::of_method(method),
            confidence,
        }
    }

    /// Provenance for a term field extracted by the POS-pattern stage.
    pub fn term_pattern() -> FieldProvenance {
        FieldProvenance {
            tier: Tier::Pattern,
            confidence: 0.8,
        }
    }

    /// Provenance for a term field recovered by whole-text salvage.
    pub fn term_salvage() -> FieldProvenance {
        FieldProvenance {
            tier: Tier::Salvage,
            confidence: 0.5,
        }
    }
}

/// Why a sentence failed to link-parse — the serializable mirror of
/// [`cmr_linkgram::ParseFailure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseFailureKind {
    /// No words after punctuation stripping.
    Empty,
    /// More words than the parser's `MAX_WORDS` window.
    TooLong,
    /// Some word has no disjunct that could ever link.
    NoDisjuncts,
    /// Disjuncts exist but no planar connected linkage does.
    NoLinkage,
    /// The search was abandoned by an external deadline (engine watchdog),
    /// not exhausted.
    Cancelled,
}

impl From<cmr_linkgram::ParseFailure> for ParseFailureKind {
    fn from(failure: cmr_linkgram::ParseFailure) -> ParseFailureKind {
        match failure {
            cmr_linkgram::ParseFailure::Empty => ParseFailureKind::Empty,
            cmr_linkgram::ParseFailure::TooLong { .. } => ParseFailureKind::TooLong,
            cmr_linkgram::ParseFailure::NoDisjuncts => ParseFailureKind::NoDisjuncts,
            cmr_linkgram::ParseFailure::NoLinkage => ParseFailureKind::NoLinkage,
            cmr_linkgram::ParseFailure::Cancelled => ParseFailureKind::Cancelled,
        }
    }
}

/// Link-parse failures observed during one record's extraction, by reason.
/// Only sentences that *mattered* are counted — ones with both a feature
/// mention and an unfilled spec — so the counts measure lost extraction
/// opportunities, not prose the parser was never going to help with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseFailureCounts {
    /// Sentences empty after punctuation stripping.
    pub empty: u32,
    /// Sentences longer than the parser window.
    pub too_long: u32,
    /// Sentences with an unlinkable word.
    pub no_disjuncts: u32,
    /// Sentences with no planar connected linkage.
    pub no_linkage: u32,
}

impl ParseFailureCounts {
    /// Records one failure.
    pub fn record(&mut self, kind: ParseFailureKind) {
        match kind {
            ParseFailureKind::Empty => self.empty += 1,
            ParseFailureKind::TooLong => self.too_long += 1,
            ParseFailureKind::NoDisjuncts => self.no_disjuncts += 1,
            ParseFailureKind::NoLinkage => self.no_linkage += 1,
            // Not a counter: a cancelled parse belongs to a record the
            // engine then fails wholesale as a timeout, so its (discarded)
            // report must keep the serialized shape of successful records.
            ParseFailureKind::Cancelled => {}
        }
    }

    /// Total failures across reasons.
    pub fn total(&self) -> u32 {
        self.empty + self.too_long + self.no_disjuncts + self.no_linkage
    }
}

/// How many extracted values each tier served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierFieldCounts {
    /// Values from the link-grammar tier.
    pub link_grammar: u32,
    /// Values from the pattern tier.
    pub pattern: u32,
    /// Values from the salvage tier.
    pub salvage: u32,
}

impl TierFieldCounts {
    /// Records one extracted value.
    pub fn record(&mut self, tier: Tier) {
        match tier {
            Tier::LinkGrammar => self.link_grammar += 1,
            Tier::Pattern => self.pattern += 1,
            Tier::Salvage => self.salvage += 1,
        }
    }

    /// Total values across tiers.
    pub fn total(&self) -> u32 {
        self.link_grammar + self.pattern + self.salvage
    }
}

/// The degradation story of one extraction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Extracted values by serving tier.
    pub tiers: TierFieldCounts,
    /// Link-parse failures on sentences that carried an extraction
    /// opportunity.
    pub parse_failures: ParseFailureCounts,
    /// Field names whose value came from the salvage tier.
    pub salvaged_fields: Vec<String>,
    /// True when any field needed the salvage tier. Parse failures alone do
    /// not set this: fragments fail to link-parse even on pristine input,
    /// and the pattern tier is the system's designed answer to them.
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MethodUsed;

    #[test]
    fn methods_map_to_tiers() {
        assert_eq!(Tier::of_method(MethodUsed::LinkGrammar), Tier::LinkGrammar);
        assert_eq!(Tier::of_method(MethodUsed::Pattern), Tier::Pattern);
        assert_eq!(Tier::of_method(MethodUsed::YearOld), Tier::Pattern);
        assert_eq!(Tier::of_method(MethodUsed::Proximity), Tier::Pattern);
        assert_eq!(Tier::of_method(MethodUsed::Salvage), Tier::Salvage);
    }

    #[test]
    fn confidence_is_monotone_in_tier_quality() {
        let lg = FieldProvenance::of_method(MethodUsed::LinkGrammar).confidence;
        let pat = FieldProvenance::of_method(MethodUsed::Pattern).confidence;
        let sal = FieldProvenance::of_method(MethodUsed::Salvage).confidence;
        assert!(lg > pat && pat > sal);
    }

    #[test]
    fn counts_tally() {
        let mut tiers = TierFieldCounts::default();
        tiers.record(Tier::LinkGrammar);
        tiers.record(Tier::Salvage);
        tiers.record(Tier::Salvage);
        assert_eq!(tiers.total(), 3);
        assert_eq!(tiers.salvage, 2);

        let mut failures = ParseFailureCounts::default();
        failures.record(ParseFailureKind::NoDisjuncts);
        failures.record(ParseFailureKind::TooLong);
        assert_eq!(failures.total(), 2);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = DegradationReport {
            tiers: TierFieldCounts {
                link_grammar: 4,
                pattern: 2,
                salvage: 1,
            },
            parse_failures: ParseFailureCounts {
                no_disjuncts: 3,
                ..ParseFailureCounts::default()
            },
            salvaged_fields: vec!["pulse".to_string()],
            degraded: true,
        };
        let json = serde_json::to_string(&report).expect("serializes");
        let back: DegradationReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, report);
    }
}
