//! # cmr — Clinical Medical Record information extraction
//!
//! A production-quality Rust reproduction of *"Converting Semi-structured
//! Clinical Medical Records into Information and Knowledge"* (Zhou, Han,
//! Chankai, Prestrud & Brooks, ICDE 2005).
//!
//! The paper extracts three kinds of information from dictated clinical
//! consultation notes:
//!
//! * **numeric fields** — associated with their feature keywords through the
//!   shortest path in a weighted [link-grammar](cmr_linkgram) linkage graph,
//!   with a linguistic-pattern fallback;
//! * **medical terms** — POS-pattern candidates normalized and looked up in a
//!   medical ontology ([`cmr_ontology`]);
//! * **categorical fields** — boolean NLP features classified by an
//!   [ID3 decision tree](cmr_ml).
//!
//! This facade crate re-exports every sub-crate of the workspace so that a
//! downstream user can depend on `cmr` alone.
//!
//! ## Quickstart
//!
//! ```
//! use cmr::prelude::*;
//!
//! // Generate a small synthetic corpus in the paper's Appendix format.
//! let corpus = CorpusBuilder::new().records(5).seed(7).build();
//!
//! // Run the full extraction pipeline on one record.
//! let pipeline = Pipeline::with_default_schema();
//! let extracted = pipeline.extract(&corpus.records[0].text);
//! assert!(extracted.numeric("pulse").is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

pub use cmr_analyze as analyze;
pub use cmr_bench as bench;
pub use cmr_core as core;
pub use cmr_corpus as corpus;
pub use cmr_engine as engine;
pub use cmr_eval as eval;
pub use cmr_knowledge as knowledge;
pub use cmr_lexicon as lexicon;
pub use cmr_linkgram as linkgram;
pub use cmr_ml as ml;
pub use cmr_ontology as ontology;
pub use cmr_postag as postag;
pub use cmr_serve as serve;
pub use cmr_text as text;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use cmr_analyze::{analyze_assets, Diagnostic, Report, Severity};
    pub use cmr_bench::{parse_levels, run_chaos, run_chaos_with, ChaosConfig, ChaosReport};
    pub use cmr_core::{
        CategoricalExtractor, CmrError, DegradationReport, ExtractedRecord, FeatureOptions,
        FeatureSpec, FieldProvenance, MedicalTermExtractor, NumericExtractor, Pipeline, Schema,
        Tier,
    };
    pub use cmr_corpus::{CorpusBuilder, GoldRecord, NoiseConfig, NoiseInjector, SmokingStatus};
    pub use cmr_engine::{
        read_journal, read_quarantine, BatchOutput, DegradationTotals, Engine, EngineConfig,
        EngineError, EngineMetrics, JournalEntry, JournalWriter, QuarantineFile, RetryPolicy,
        RunManifest,
    };
    pub use cmr_eval::{MultiValueScore, PrecisionRecall};
    pub use cmr_lexicon::Lemmatizer;
    pub use cmr_linkgram::{LinkParser, LinkWeights, Linkage};
    pub use cmr_ml::{CrossValidation, Dataset, Id3Tree};
    pub use cmr_ontology::{Ontology, OntologyProfile};
    pub use cmr_postag::PosTagger;
    pub use cmr_serve::{ServeConfig, ServeError, ServeSummary, Server};
    pub use cmr_text::{split_sentences, tokenize, Record, Token};
}
