//! Semi-structured record model: sections with fixed headers.
//!
//! Per the paper (§5): "One record is comprised of multiple sections, each of
//! which begins with a fixed string. Therefore, it is easy to split the whole
//! record into sections. Each section is written in natural language."

use crate::sentence::{split_sentences, Sentence};
use crate::span::Span;
use serde::{Deserialize, Serialize};

/// One section of a record, e.g. `Past Medical History:` with its body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Section header as written, without the trailing colon
    /// (`"Past Medical History"`).
    pub name: String,
    /// Section body text (everything after the colon, including
    /// continuation lines), trimmed.
    pub body: String,
    /// Span of the body within the record source.
    pub span: Span,
}

impl Section {
    /// Canonical lower-cased header used for matching.
    pub fn key(&self) -> String {
        self.name.trim().to_lowercase()
    }

    /// Sentences of the body (spans relative to the *body* string).
    pub fn sentences(&self) -> Vec<Sentence> {
        split_sentences(&self.body)
    }
}

/// A parsed semi-structured clinical record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Patient identifier from the `Patient:` section, when present.
    pub patient_id: Option<String>,
    /// Sections in document order.
    pub sections: Vec<Section>,
}

impl Record {
    /// Parses a record from raw text.
    ///
    /// A section starts on a line matching `Header: body`, where the header
    /// is 1–6 words beginning with an uppercase letter; subsequent lines that
    /// do not start a new section are appended to the current body.
    pub fn parse(text: &str) -> Record {
        let mut sections: Vec<Section> = Vec::new();
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            let line_start = offset;
            offset += line.len();
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.trim().is_empty() {
                continue;
            }
            match split_header(trimmed) {
                Some((name, body_start_in_line)) => {
                    let body = trimmed[body_start_in_line..].trim();
                    let body_off = line_start
                        + body_start_in_line
                        + leading_ws(&trimmed[body_start_in_line..]);
                    sections.push(Section {
                        name: name.to_string(),
                        body: body.to_string(),
                        span: Span::new(body_off, body_off + body.len()),
                    });
                }
                None => {
                    // Continuation line: extend the current section.
                    if let Some(last) = sections.last_mut() {
                        let cont = trimmed.trim();
                        if !last.body.is_empty() {
                            last.body.push(' ');
                        }
                        last.body.push_str(cont);
                        let cont_off = line_start + leading_ws(trimmed);
                        last.span = last.span.cover(&Span::new(cont_off, cont_off + cont.len()));
                    } else {
                        // Preamble before any header: keep it as an unnamed
                        // section so no text is silently dropped.
                        let cont = trimmed.trim();
                        let cont_off = line_start + leading_ws(trimmed);
                        sections.push(Section {
                            name: String::new(),
                            body: cont.to_string(),
                            span: Span::new(cont_off, cont_off + cont.len()),
                        });
                    }
                }
            }
        }
        let patient_id = sections
            .iter()
            .find(|s| s.key() == "patient")
            .map(|s| s.body.trim().to_string())
            .filter(|s| !s.is_empty());
        Record {
            patient_id,
            sections,
        }
    }

    /// Finds a section by case-insensitive header name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        let key = name.to_lowercase();
        self.sections.iter().find(|s| s.key() == key)
    }

    /// Headers of all sections in order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }
}

fn leading_ws(s: &str) -> usize {
    s.len() - s.trim_start().len()
}

/// If `line` begins a section, returns the header name and the byte index
/// where the body starts (just after the colon).
fn split_header(line: &str) -> Option<(&str, usize)> {
    let colon = line.find(':')?;
    let header = &line[..colon];
    let header_trimmed = header.trim();
    if header_trimmed.is_empty() || header_trimmed.len() > 60 {
        return None;
    }
    // Headers start with an uppercase letter and contain 1..=6 words of
    // letters/digits (e.g. "History of Present Illness", "GYN History",
    // "HEENT", "Patient").
    let mut words = 0;
    for w in header_trimmed.split_whitespace() {
        words += 1;
        if words > 6 {
            return None;
        }
        if !w
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '/' || c == '(' || c == ')')
        {
            return None;
        }
    }
    if words == 0 {
        return None;
    }
    let first = header_trimmed.chars().next().expect("non-empty header");
    if !first.is_ascii_uppercase() {
        return None;
    }
    Some((header_trimmed, colon + 1))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Patient:  2\n\
Chief Complaint:  Abnormal mammogram.\n\
History of Present Illness:  Ms. 2 is a 50-year-old woman who underwent a screening mammogram.\n\
She was referred for further management.\n\
GYN History:  Menarche at age 10, gravida 4, para 3.\n\
Vitals:  Blood pressure is 142/78, pulse of 96, and weight of 211.\n";

    #[test]
    fn parses_sections_in_order() {
        let rec = Record::parse(SAMPLE);
        assert_eq!(
            rec.section_names(),
            vec![
                "Patient",
                "Chief Complaint",
                "History of Present Illness",
                "GYN History",
                "Vitals"
            ]
        );
    }

    #[test]
    fn patient_id_extracted() {
        let rec = Record::parse(SAMPLE);
        assert_eq!(rec.patient_id.as_deref(), Some("2"));
    }

    #[test]
    fn continuation_lines_append() {
        let rec = Record::parse(SAMPLE);
        let hpi = rec.section("History of Present Illness").unwrap();
        assert!(hpi.body.ends_with("referred for further management."));
        assert!(hpi.body.starts_with("Ms. 2 is"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let rec = Record::parse(SAMPLE);
        assert!(rec.section("gyn history").is_some());
        assert!(rec.section("GYN HISTORY").is_some());
        assert!(rec.section("Nonexistent").is_none());
    }

    #[test]
    fn section_sentences() {
        let rec = Record::parse(SAMPLE);
        let hpi = rec.section("History of Present Illness").unwrap();
        let sents = hpi.sentences();
        assert_eq!(sents.len(), 2);
    }

    #[test]
    fn section_spans_point_into_source() {
        let rec = Record::parse(SAMPLE);
        let vitals = rec.section("Vitals").unwrap();
        let sliced = vitals.span.slice(SAMPLE);
        assert!(sliced.contains("142/78"));
    }

    #[test]
    fn sentence_with_colon_mid_line_is_not_header() {
        // "the following: a, b" inside a body must not start a section; the
        // body words before the colon exceed header shape ("the" lowercase).
        let text = "Notes: remarkable for the following: a and b\n";
        let rec = Record::parse(text);
        assert_eq!(rec.sections.len(), 1);
        assert!(rec.sections[0].body.contains("the following: a and b"));
    }

    #[test]
    fn preamble_preserved_as_unnamed_section() {
        let text = "Dictated note follows\nVitals: pulse of 80.\n";
        let rec = Record::parse(text);
        assert_eq!(rec.sections.len(), 2);
        assert_eq!(rec.sections[0].name, "");
        assert_eq!(rec.sections[0].body, "Dictated note follows");
    }

    #[test]
    fn empty_record() {
        let rec = Record::parse("");
        assert!(rec.sections.is_empty());
        assert!(rec.patient_id.is_none());
    }

    #[test]
    fn windows_line_endings() {
        let rec = Record::parse("Patient: 7\r\nVitals: pulse of 80.\r\n");
        assert_eq!(rec.patient_id.as_deref(), Some("7"));
        assert_eq!(rec.section("Vitals").unwrap().body, "pulse of 80.");
    }
}
