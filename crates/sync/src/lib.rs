//! # cmr-sync — tracked lock wrappers with order-inversion detection
//!
//! The workspace's concurrency bugs-in-waiting all share one shape: a
//! `std::sync::Mutex` acquired in one order on one thread and the
//! opposite order on another, or a guard held across something slow.
//! Neither is visible to the type system, and both are invisible in tests
//! until the scheduler happens to interleave the wrong way.
//!
//! [`TrackedMutex`], [`TrackedRwLock`], and [`TrackedCondvar`] are
//! drop-in wrappers over the std primitives. Without the `lockcheck`
//! cargo feature they compile to plain pass-throughs — no extra state, no
//! extra branches on the lock path, and no tracking strings in the binary
//! (CI greps a release build to prove it, exactly like the `failpoints`
//! feature). With `lockcheck` on, every acquisition:
//!
//! * pushes onto a **per-thread acquisition stack** (class name, call
//!   site, timestamp),
//! * records a **global lock-order graph** edge from every currently held
//!   class to the newly acquired one, keyed by class name with the first
//!   witnessed pair of call sites,
//! * checks the graph for a path in the *opposite* direction — a
//!   lock-order inversion, the static shape of a deadlock — and raises a
//!   `CMR-S100` diagnostic naming both acquisition sites,
//! * checks for same-class double acquisition on one thread (`CMR-S102`),
//! * and, on release, raises `CMR-S101` when the guard outlived the
//!   configurable hazard threshold.
//!
//! Lock *classes* are the unit of ordering: the eight shards of the
//! parse cache share one class, so "shard then collector" vs "collector
//! then shard" is an inversion no matter which shard instances were
//! involved.
//!
//! What a violation does is configurable ([`lockcheck::set_mode`]):
//! `Abort` (default — print the diagnostic, `std::process::abort()`),
//! `Panic`, or `Record` (accumulate for [`lockcheck::take_violations`],
//! the mode tests use). The hazard threshold and mode can also come from
//! the environment (`CMR_LOCKCHECK=abort|panic|record`,
//! `CMR_LOCKCHECK_HAZARD_MS=250`), read once at first use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

use std::fmt;
use std::ops::{Deref, DerefMut};
#[cfg(feature = "lockcheck")]
use std::panic::Location;
use std::sync::{Condvar, LockResult, Mutex, PoisonError, RwLock, TryLockError, TryLockResult};
use std::time::Duration;

/// A [`std::sync::Mutex`] that participates in lock-order tracking when
/// the `lockcheck` feature is on, and is a zero-cost pass-through when it
/// is off.
pub struct TrackedMutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    class: &'static str,
    inner: Mutex<T>,
}

/// A [`std::sync::RwLock`] that participates in lock-order tracking when
/// the `lockcheck` feature is on. Read acquisitions are tracked too: a
/// read-vs-write order inversion deadlocks exactly like a mutex pair.
pub struct TrackedRwLock<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    class: &'static str,
    inner: RwLock<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex. `class` names the *ordering class*: every
    /// lock that may be acquired interchangeably (e.g. cache shards)
    /// should share one class name.
    pub fn new(class: &'static str, value: T) -> TrackedMutex<T> {
        #[cfg(not(feature = "lockcheck"))]
        let _ = class;
        TrackedMutex {
            #[cfg(feature = "lockcheck")]
            class,
            inner: Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the lock, blocking. Mirrors [`Mutex::lock`], including
    /// poison reporting, so call sites keep their existing recovery
    /// idioms (`unwrap_or_else(PoisonError::into_inner)`).
    #[track_caller]
    pub fn lock(&self) -> LockResult<TrackedMutexGuard<'_, T>> {
        #[cfg(feature = "lockcheck")]
        imp::check_acquire(self.class, Location::caller());
        let result = self.inner.lock();
        #[cfg(feature = "lockcheck")]
        let token = Some(imp::acquired(self.class, Location::caller()));
        wrap_lock_result(result, |g| TrackedMutexGuard {
            inner: Some(g),
            #[cfg(feature = "lockcheck")]
            token,
        })
    }

    /// Attempts the lock without blocking. Mirrors [`Mutex::try_lock`].
    /// A successful try-acquisition establishes lock order exactly like a
    /// blocking one; a failed attempt establishes nothing.
    #[track_caller]
    pub fn try_lock(&self) -> TryLockResult<TrackedMutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => {
                #[cfg(feature = "lockcheck")]
                let token = {
                    let site = Location::caller();
                    imp::check_acquire(self.class, site);
                    Some(imp::acquired(self.class, site))
                };
                Ok(TrackedMutexGuard {
                    inner: Some(g),
                    #[cfg(feature = "lockcheck")]
                    token,
                })
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(p)) => {
                #[cfg(feature = "lockcheck")]
                let token = {
                    let site = Location::caller();
                    imp::check_acquire(self.class, site);
                    Some(imp::acquired(self.class, site))
                };
                Err(TryLockError::Poisoned(PoisonError::new(
                    TrackedMutexGuard {
                        inner: Some(p.into_inner()),
                        #[cfg(feature = "lockcheck")]
                        token,
                    },
                )))
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T: Default> Default for TrackedMutex<T> {
    fn default() -> TrackedMutex<T> {
        TrackedMutex::new("anonymous", T::default())
    }
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked reader-writer lock (see [`TrackedMutex::new`]
    /// for what `class` means).
    pub fn new(class: &'static str, value: T) -> TrackedRwLock<T> {
        #[cfg(not(feature = "lockcheck"))]
        let _ = class;
        TrackedRwLock {
            #[cfg(feature = "lockcheck")]
            class,
            inner: RwLock::new(value),
        }
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires shared read access. Mirrors [`RwLock::read`].
    #[track_caller]
    pub fn read(&self) -> LockResult<TrackedReadGuard<'_, T>> {
        #[cfg(feature = "lockcheck")]
        imp::check_acquire(self.class, Location::caller());
        let result = self.inner.read();
        #[cfg(feature = "lockcheck")]
        let token = Some(imp::acquired(self.class, Location::caller()));
        wrap_lock_result(result, |g| TrackedReadGuard {
            inner: g,
            #[cfg(feature = "lockcheck")]
            token,
        })
    }

    /// Acquires exclusive write access. Mirrors [`RwLock::write`].
    #[track_caller]
    pub fn write(&self) -> LockResult<TrackedWriteGuard<'_, T>> {
        #[cfg(feature = "lockcheck")]
        imp::check_acquire(self.class, Location::caller());
        let result = self.inner.write();
        #[cfg(feature = "lockcheck")]
        let token = Some(imp::acquired(self.class, Location::caller()));
        wrap_lock_result(result, |g| TrackedWriteGuard {
            inner: g,
            #[cfg(feature = "lockcheck")]
            token,
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Maps a `LockResult<G>` to a `LockResult<W>` preserving poison status.
fn wrap_lock_result<G, W>(result: LockResult<G>, wrap: impl FnOnce(G) -> W) -> LockResult<W> {
    match result {
        Ok(g) => Ok(wrap(g)),
        Err(p) => Err(PoisonError::new(wrap(p.into_inner()))),
    }
}

/// Guard for a [`TrackedMutex`]. Releasing it (drop) pops the per-thread
/// acquisition stack and runs the hazard-hold check under `lockcheck`.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    /// `None` only transiently inside [`TrackedCondvar::wait`], which
    /// consumes the guard by value — user code never observes it.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(feature = "lockcheck")]
    token: Option<imp::Token>,
}

impl<T: ?Sized> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard emptied outside TrackedCondvar::wait"),
        }
    }
}

impl<T: ?Sized> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard emptied outside TrackedCondvar::wait"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TrackedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Read guard for a [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lockcheck")]
    token: Option<imp::Token>,
}

impl<T: ?Sized> Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Write guard for a [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lockcheck")]
    token: Option<imp::Token>,
}

impl<T: ?Sized> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockcheck")]
mod guard_release {
    use super::*;

    impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(token) = self.token.take() {
                imp::released(token);
            }
        }
    }
    impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(token) = self.token.take() {
                imp::released(token);
            }
        }
    }
    impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(token) = self.token.take() {
                imp::released(token);
            }
        }
    }
}

/// A [`std::sync::Condvar`] that understands [`TrackedMutexGuard`]:
/// waiting releases the tracked acquisition (the OS releases the lock
/// while parked) and re-registers it on wake, so the per-thread stack and
/// hazard timer reflect reality across the wait.
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// A new condition variable.
    pub fn new() -> TrackedCondvar {
        TrackedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Blocks until notified. Mirrors [`Condvar::wait`].
    #[track_caller]
    pub fn wait<'a, T>(
        &self,
        mut guard: TrackedMutexGuard<'a, T>,
    ) -> LockResult<TrackedMutexGuard<'a, T>> {
        #[cfg(feature = "lockcheck")]
        let (class, site) = {
            // The wait releases the lock: retire the tracked acquisition
            // now so a long park never reads as a hazard hold, and
            // re-register on wake (the wake re-acquires).
            let token = guard.token.take();
            let meta = token.as_ref().map(imp::token_class);
            if let Some(token) = token {
                imp::released(token);
            }
            (meta, Location::caller())
        };
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard emptied outside TrackedCondvar::wait"),
        };
        // `guard` is now empty; its drop does nothing.
        let result = self.inner.wait(inner);
        #[cfg(feature = "lockcheck")]
        let token = class.map(|c| {
            imp::check_acquire(c, site);
            imp::acquired(c, site)
        });
        wrap_lock_result(result, |g| TrackedMutexGuard {
            inner: Some(g),
            #[cfg(feature = "lockcheck")]
            token,
        })
    }

    /// Blocks until notified or timed out. Mirrors
    /// [`Condvar::wait_timeout`].
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: TrackedMutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(TrackedMutexGuard<'a, T>, std::sync::WaitTimeoutResult)> {
        #[cfg(feature = "lockcheck")]
        let (class, site) = {
            let token = guard.token.take();
            let meta = token.as_ref().map(imp::token_class);
            if let Some(token) = token {
                imp::released(token);
            }
            (meta, Location::caller())
        };
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard emptied outside TrackedCondvar::wait"),
        };
        let result = self.inner.wait_timeout(inner, dur);
        #[cfg(feature = "lockcheck")]
        let token = class.map(|c| {
            imp::check_acquire(c, site);
            imp::acquired(c, site)
        });
        match result {
            Ok((g, timed_out)) => Ok((
                TrackedMutexGuard {
                    inner: Some(g),
                    #[cfg(feature = "lockcheck")]
                    token,
                },
                timed_out,
            )),
            Err(p) => {
                let (g, timed_out) = p.into_inner();
                Err(PoisonError::new((
                    TrackedMutexGuard {
                        inner: Some(g),
                        #[cfg(feature = "lockcheck")]
                        token,
                    },
                    timed_out,
                )))
            }
        }
    }

    /// Wakes one waiter. Mirrors [`Condvar::notify_one`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter. Mirrors [`Condvar::notify_all`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for TrackedCondvar {
    fn default() -> TrackedCondvar {
        TrackedCondvar::new()
    }
}

impl fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedCondvar").finish()
    }
}

/// What the tracking layer does when it detects a violation, and how to
/// read what it found. Every function is a no-op (and [`enabled`] is
/// `false`) unless the crate was built with the `lockcheck` feature.
///
/// [`enabled`]: lockcheck::enabled
pub mod lockcheck {
    use super::*;

    /// Whether this build includes the tracking layer.
    pub const fn enabled() -> bool {
        cfg!(feature = "lockcheck")
    }

    /// What a detected violation does.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        /// Print the diagnostic to stderr and `std::process::abort()`.
        /// The default: an order inversion in a live process is a
        /// deadlock that has not happened *yet*.
        Abort,
        /// Panic at the acquisition (or release) site.
        Panic,
        /// Accumulate silently for [`take_violations`].
        Record,
    }

    /// One detected violation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Violation {
        /// The stable diagnostic code (`"CMR-S100"`, `"CMR-S101"`,
        /// `"CMR-S102"`).
        pub code: &'static str,
        /// Full human-readable diagnostic naming the acquisition sites.
        pub message: String,
    }

    /// Sets the violation mode process-wide.
    pub fn set_mode(mode: Mode) {
        #[cfg(feature = "lockcheck")]
        imp::set_mode(mode);
        #[cfg(not(feature = "lockcheck"))]
        let _ = mode;
    }

    /// Sets the guard-hold hazard threshold; `None` disables the check
    /// (the default, unless `CMR_LOCKCHECK_HAZARD_MS` is set).
    pub fn set_hazard_threshold(threshold: Option<Duration>) {
        #[cfg(feature = "lockcheck")]
        imp::set_hazard(threshold);
        #[cfg(not(feature = "lockcheck"))]
        let _ = threshold;
    }

    /// Drains and returns the violations recorded so far (any mode —
    /// `Abort` and `Panic` record before raising).
    pub fn take_violations() -> Vec<Violation> {
        #[cfg(feature = "lockcheck")]
        {
            imp::take_violations()
        }
        #[cfg(not(feature = "lockcheck"))]
        {
            Vec::new()
        }
    }
}

#[cfg(feature = "lockcheck")]
mod imp {
    //! The tracking layer. Everything here — including every diagnostic
    //! string containing the `lockcheck:` marker — exists only under the
    //! feature, which is what the CI binary grep verifies.

    use super::lockcheck::{Mode, Violation};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::{Duration, Instant};

    /// One entry on a thread's acquisition stack.
    struct Held {
        class: &'static str,
        site: &'static Location<'static>,
        id: u64,
        since: Instant,
    }

    /// Handed to the guard; returning it to [`released`] pops the stack.
    pub(crate) struct Token {
        class: &'static str,
        site: &'static Location<'static>,
        id: u64,
    }

    /// The ordering class a token was acquired under (used by the condvar
    /// to re-register after a wait).
    pub(crate) fn token_class(token: &Token) -> &'static str {
        token.class
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// First-witnessed `from -> to` ordering edge: some thread acquired
    /// `to_class` at `to_site` while holding `from_class` at `from_site`.
    #[derive(Clone, Copy)]
    struct Edge {
        from_class: &'static str,
        from_site: &'static Location<'static>,
        to_class: &'static str,
        to_site: &'static Location<'static>,
    }

    #[derive(Default)]
    struct Graph {
        /// Keyed by `(from_class, to_class)`; the value remembers the
        /// first witnessed pair of call sites for that ordering.
        edges: HashMap<(&'static str, &'static str), Edge>,
    }

    impl Graph {
        /// Is `to` reachable from `from` along recorded edges? Returns
        /// the first edge of a witnessing path (for a direct edge, the
        /// edge itself — its sites are the ones named in the diagnostic).
        fn path(&self, from: &'static str, to: &'static str) -> Option<Edge> {
            if let Some(direct) = self.edges.get(&(from, to)) {
                return Some(*direct);
            }
            // DFS over transitive paths, remembering the first hop so the
            // diagnostic can name a concrete witnessed acquisition pair.
            let mut stack: Vec<(&'static str, Option<Edge>)> = vec![(from, None)];
            let mut seen = vec![from];
            while let Some((node, head)) = stack.pop() {
                for (&(a, b), edge) in &self.edges {
                    if a != node || seen.contains(&b) {
                        continue;
                    }
                    let head = Some(head.unwrap_or(*edge));
                    if b == to {
                        return head;
                    }
                    seen.push(b);
                    stack.push((b, head));
                }
            }
            None
        }
    }

    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    static VIOLATIONS: OnceLock<Mutex<Vec<Violation>>> = OnceLock::new();
    /// 0 = unread env, 1 = Abort, 2 = Panic, 3 = Record.
    static MODE: AtomicU8 = AtomicU8::new(0);
    /// Hazard threshold in nanoseconds; 0 = disabled, u64::MAX = unread.
    static HAZARD: AtomicU64 = AtomicU64::new(u64::MAX);

    fn graph() -> &'static Mutex<Graph> {
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    fn violations() -> &'static Mutex<Vec<Violation>> {
        VIOLATIONS.get_or_init(|| Mutex::new(Vec::new()))
    }

    pub(crate) fn set_mode(mode: Mode) {
        let v = match mode {
            Mode::Abort => 1,
            Mode::Panic => 2,
            Mode::Record => 3,
        };
        MODE.store(v, Ordering::SeqCst);
    }

    pub(crate) fn set_hazard(threshold: Option<Duration>) {
        HAZARD.store(
            threshold.map_or(0, |d| (d.as_nanos() as u64).max(1)),
            Ordering::SeqCst,
        );
    }

    pub(crate) fn take_violations() -> Vec<Violation> {
        std::mem::take(
            &mut *violations()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn mode() -> Mode {
        match MODE.load(Ordering::SeqCst) {
            0 => {
                let from_env = match std::env::var("CMR_LOCKCHECK").as_deref() {
                    Ok("panic") => Mode::Panic,
                    Ok("record") => Mode::Record,
                    _ => Mode::Abort,
                };
                set_mode(from_env);
                from_env
            }
            2 => Mode::Panic,
            3 => Mode::Record,
            _ => Mode::Abort,
        }
    }

    fn hazard_nanos() -> u64 {
        match HAZARD.load(Ordering::SeqCst) {
            u64::MAX => {
                let nanos = std::env::var("CMR_LOCKCHECK_HAZARD_MS")
                    .ok()
                    .and_then(|v| v.parse::<u64>().ok())
                    .map_or(0, |ms| ms.saturating_mul(1_000_000).max(1));
                HAZARD.store(nanos, Ordering::SeqCst);
                nanos
            }
            n => n,
        }
    }

    /// Raises a violation per the active mode. Called with no internal
    /// lock held, so `Panic` unwinds cleanly.
    // cmr:allow(S004) -- raising the configured violation is this
    // function's entire job; Panic mode panics by contract.
    fn raise(code: &'static str, message: String) {
        {
            let mut v = violations()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            v.push(Violation {
                code,
                message: message.clone(),
            });
        }
        match mode() {
            Mode::Record => {}
            Mode::Panic => panic!("{message}"),
            Mode::Abort => {
                eprintln!("{message}");
                std::process::abort();
            }
        }
    }

    /// Order check for acquiring `class` at `site`, run *before* blocking
    /// on the lock: an inversion is reported even when the acquisition
    /// would deadlock.
    pub(crate) fn check_acquire(class: &'static str, site: &'static Location<'static>) {
        let mut found: Vec<(&'static str, String)> = Vec::new();
        HELD.with(|held| {
            let held = held.borrow();
            // One graph lock per acquisition: the reverse-path check and
            // the forward edge inserts are atomic as a unit.
            let mut g = graph()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for h in held.iter() {
                if h.class == class {
                    found.push((
                        "CMR-S102",
                        format!(
                            "lockcheck: CMR-S102 same-class double acquisition: \
                             acquiring `{class}` at {site} while this thread already \
                             holds `{}` acquired at {}",
                            h.class, h.site
                        ),
                    ));
                    continue;
                }
                if let Some(reverse) = g.path(class, h.class) {
                    found.push((
                        "CMR-S100",
                        format!(
                            "lockcheck: CMR-S100 lock-order inversion: acquiring \
                             `{class}` at {site} while holding `{}` acquired at {}; \
                             the opposite order was established earlier: \
                             `{}` acquired at {} while holding `{}` acquired at {}",
                            h.class,
                            h.site,
                            reverse.to_class,
                            reverse.to_site,
                            reverse.from_class,
                            reverse.from_site,
                        ),
                    ));
                }
                g.edges.entry((h.class, class)).or_insert(Edge {
                    from_class: h.class,
                    from_site: h.site,
                    to_class: class,
                    to_site: site,
                });
            }
        });
        for (code, message) in found {
            raise(code, message);
        }
    }

    /// Pushes the acquisition onto this thread's stack.
    pub(crate) fn acquired(class: &'static str, site: &'static Location<'static>) -> Token {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        HELD.with(|held| {
            held.borrow_mut().push(Held {
                class,
                site,
                id,
                since: Instant::now(),
            });
        });
        Token { class, site, id }
    }

    /// Pops the acquisition (guards may release out of LIFO order) and
    /// runs the hazard-hold check.
    pub(crate) fn released(token: Token) {
        let since = HELD.with(|held| {
            let mut held = held.borrow_mut();
            match held.iter().rposition(|h| h.id == token.id) {
                Some(pos) => Some(held.remove(pos).since),
                None => None,
            }
        });
        let threshold = hazard_nanos();
        if threshold == 0 {
            return;
        }
        if let Some(since) = since {
            let held_nanos = since.elapsed().as_nanos() as u64;
            if held_nanos > threshold {
                raise(
                    "CMR-S101",
                    format!(
                        "lockcheck: CMR-S101 guard hazard: `{}` held for {}ms \
                         (threshold {}ms), acquired at {}",
                        token.class,
                        held_nanos / 1_000_000,
                        threshold / 1_000_000,
                        token.site
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mutex_passes_values_through() {
        let m = TrackedMutex::new("test.passthrough", 41);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 42);
        assert_eq!(m.into_inner().unwrap(), 42);
    }

    #[test]
    fn try_lock_contends_like_std() {
        let m = TrackedMutex::new("test.trylock", 0u32);
        let g = m.lock().unwrap();
        assert!(matches!(m.try_lock(), Err(TryLockError::WouldBlock)));
        drop(g);
        assert!(m.try_lock().is_ok());
    }

    #[test]
    fn rwlock_passes_values_through() {
        let l = TrackedRwLock::new("test.rw", vec![1, 2]);
        assert_eq!(l.read().unwrap().len(), 2);
        l.write().unwrap().push(3);
        assert_eq!(l.read().unwrap().len(), 3);
    }

    #[test]
    fn poisoned_mutex_is_recoverable() {
        let m = std::sync::Arc::new(TrackedMutex::new("test.poison", 7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        });
        let g = m.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(*g, 7, "data survives a poisoning panic");
    }

    #[test]
    fn condvar_wait_roundtrips_the_guard() {
        use std::sync::Arc;
        let pair = Arc::new((TrackedMutex::new("test.cv", false), TrackedCondvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_timeout_times_out() {
        let m = TrackedMutex::new("test.cvto", ());
        let cv = TrackedCondvar::new();
        let g = m.lock().unwrap();
        let (_g, result) = cv.wait_timeout(g, Duration::from_millis(5)).unwrap();
        assert!(result.timed_out());
    }
}

#[cfg(all(test, feature = "lockcheck"))]
#[allow(clippy::unwrap_used)]
mod lockcheck_tests {
    //! Violation-mode tests share process-global state (mode, graph,
    //! violation buffer), so they serialize on one mutex and each test
    //! uses class names unique to it — edges recorded by one test can
    //! never alias another test's classes.

    use super::lockcheck::{set_hazard_threshold, set_mode, take_violations, Mode};
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock};

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<StdMutex<()>> = OnceLock::new();
        GATE.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn arm_record() {
        set_mode(Mode::Record);
        set_hazard_threshold(None);
        let _ = take_violations();
    }

    #[test]
    fn order_inversion_names_both_sites() {
        let _gate = serial();
        arm_record();
        let a = TrackedMutex::new("t100.alpha", ());
        let b = TrackedMutex::new("t100.beta", ());
        // Establish alpha -> beta ...
        let first = a.lock().unwrap(); // site A1
        let second = b.lock().unwrap(); // site B1
        drop(second);
        drop(first);
        // ... then deliberately invert: beta -> alpha.
        let first = b.lock().unwrap();
        let second = a.lock().unwrap(); // the inversion fires here
        drop(second);
        drop(first);
        let violations = take_violations();
        let inversion = violations
            .iter()
            .find(|v| v.code == "CMR-S100")
            .expect("inversion detected");
        assert!(
            inversion.message.contains("t100.alpha") && inversion.message.contains("t100.beta"),
            "names both lock classes: {}",
            inversion.message
        );
        // Both acquisition sites are named: the message carries this
        // file's path at least twice (current site + recorded witness).
        let occurrences = inversion.message.matches("lib.rs:").count();
        assert!(
            occurrences >= 2,
            "names both acquisition sites, got {occurrences} in: {}",
            inversion.message
        );
    }

    #[test]
    fn consistent_order_is_silent() {
        let _gate = serial();
        arm_record();
        let a = TrackedMutex::new("tok.alpha", ());
        let b = TrackedMutex::new("tok.beta", ());
        for _ in 0..3 {
            let first = a.lock().unwrap();
            let second = b.lock().unwrap();
            drop(second);
            drop(first);
        }
        assert!(take_violations().is_empty());
    }

    #[test]
    fn transitive_inversion_is_detected() {
        let _gate = serial();
        arm_record();
        let a = TrackedMutex::new("t1t.alpha", ());
        let b = TrackedMutex::new("t1t.beta", ());
        let c = TrackedMutex::new("t1t.gamma", ());
        {
            let g1 = a.lock().unwrap();
            let g2 = b.lock().unwrap();
            drop(g2);
            drop(g1);
        }
        {
            let g2 = b.lock().unwrap();
            let g3 = c.lock().unwrap();
            drop(g3);
            drop(g2);
        }
        // alpha -> beta -> gamma recorded; gamma -> alpha closes a cycle.
        let g3 = c.lock().unwrap();
        let g1 = a.lock().unwrap();
        drop(g1);
        drop(g3);
        let violations = take_violations();
        assert!(
            violations.iter().any(|v| v.code == "CMR-S100"),
            "transitive cycle detected: {violations:?}"
        );
    }

    #[test]
    fn same_class_double_acquisition_is_flagged() {
        let _gate = serial();
        arm_record();
        let a = TrackedMutex::new("t102.shard", 1);
        let b = TrackedMutex::new("t102.shard", 2);
        let g1 = a.lock().unwrap();
        let g2 = b.lock().unwrap();
        drop(g2);
        drop(g1);
        let violations = take_violations();
        assert!(
            violations.iter().any(|v| v.code == "CMR-S102"),
            "same-class double acquisition detected: {violations:?}"
        );
    }

    #[test]
    fn hazard_threshold_fires_on_long_hold() {
        let _gate = serial();
        arm_record();
        set_hazard_threshold(Some(Duration::from_millis(10)));
        let m = TrackedMutex::new("t101.slow", ());
        {
            let _g = m.lock().unwrap();
            std::thread::sleep(Duration::from_millis(30)); // cmr:allow(S008) -- the test exists to exceed the hazard threshold
        }
        set_hazard_threshold(None);
        let violations = take_violations();
        let hazard = violations
            .iter()
            .find(|v| v.code == "CMR-S101")
            .expect("hazard detected");
        assert!(
            hazard.message.contains("t101.slow") && hazard.message.contains("lib.rs:"),
            "names the class and acquisition site: {}",
            hazard.message
        );
    }

    #[test]
    fn poisoning_panic_leaves_s_layer_silent() {
        let _gate = serial();
        arm_record();
        let m = std::sync::Arc::new(TrackedMutex::new("tps.poison", 5));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock().unwrap();
            panic!("poison while holding");
        });
        // The lock is poisoned but recoverable, and the panic-unwind
        // release path produced no violations.
        let g = m.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(*g, 5);
        drop(g);
        assert!(take_violations().is_empty(), "S-layer stays silent");
    }

    #[test]
    fn condvar_wait_retires_the_hold() {
        let _gate = serial();
        arm_record();
        set_hazard_threshold(Some(Duration::from_millis(20)));
        let m = TrackedMutex::new("tcv.wait", ());
        let cv = TrackedCondvar::new();
        let g = m.lock().unwrap();
        // Park longer than the hazard threshold: the wait releases the
        // tracked hold, so neither side of it counts as a hazard.
        let (g, result) = cv.wait_timeout(g, Duration::from_millis(60)).unwrap();
        assert!(result.timed_out());
        drop(g);
        set_hazard_threshold(None);
        assert!(
            take_violations().is_empty(),
            "wait does not count as a hold"
        );
    }
}
