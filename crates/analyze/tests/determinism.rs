//! The analyzer's output contract: running the battery is a pure function
//! of the committed assets — same findings, same order, same bytes —
//! and the committed assets themselves are clean at Warning-or-worse.

use cmr_analyze::{analyze_assets, check_info, Severity};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Byte-identical JSON across repeated runs: no iteration-order leaks
    /// from hash maps, no timestamps, no environment dependence.
    #[test]
    fn lint_json_is_byte_identical_across_runs(_run in 0u8..8) {
        let a = analyze_assets().to_json();
        let b = analyze_assets().to_json();
        prop_assert_eq!(a, b);
    }

    /// Same for SARIF and the human rendering.
    #[test]
    fn other_formats_are_deterministic_too(_run in 0u8..4) {
        let a = analyze_assets();
        let b = analyze_assets();
        prop_assert_eq!(a.to_sarif(), b.to_sarif());
        prop_assert_eq!(a.render_human(false), b.render_human(false));
    }
}

#[test]
fn committed_assets_are_clean_at_warning() {
    let report = analyze_assets();
    assert_eq!(
        report.errors() + report.warnings(),
        0,
        "committed assets regressed:\n{}",
        report.render_human(false)
    );
}

#[test]
fn every_emitted_code_is_registered() {
    for d in &analyze_assets().diagnostics {
        assert!(
            check_info(d.code).is_some(),
            "diagnostic {} missing from the registry",
            d.code
        );
        assert_eq!(d.severity, Severity::Note, "only notes on clean assets");
    }
}

// ---------------------------------------------------------------------
// The CMR-S source battery has the same contract as the asset battery.
// ---------------------------------------------------------------------

#[test]
fn source_lint_is_byte_identical_across_runs() {
    let a = cmr_analyze::analyze_sources();
    let b = cmr_analyze::analyze_sources();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_sarif(), b.to_sarif());
    assert_eq!(a.render_human(false), b.render_human(false));
}

#[test]
fn committed_sources_are_clean_at_warning() {
    let report = cmr_analyze::analyze_sources();
    assert_eq!(
        report.errors() + report.warnings(),
        0,
        "committed sources regressed:\n{}",
        report.render_human(false)
    );
}

#[test]
fn every_emitted_source_code_is_registered() {
    for d in &cmr_analyze::analyze_sources().diagnostics {
        assert!(
            d.code.starts_with("CMR-S"),
            "source battery emits only S codes, got {}",
            d.code
        );
        assert!(
            check_info(d.code).is_some(),
            "diagnostic {} missing from the registry",
            d.code
        );
        assert_eq!(d.severity, Severity::Note, "only notes on a clean tree");
    }
}

#[test]
fn sarif_documents_at_least_six_s_codes() {
    let s_codes: Vec<&str> = cmr_analyze::registry()
        .iter()
        .map(|c| c.code)
        .filter(|c| c.starts_with("CMR-S"))
        .collect();
    assert!(
        s_codes.len() >= 6,
        "expected >= 6 documented CMR-S codes, got {s_codes:?}"
    );
    let sarif = cmr_analyze::analyze_sources().to_sarif();
    for code in s_codes {
        assert!(sarif.contains(code), "{code} missing from SARIF rules");
    }
}

/// The pass keeps finding the deliberate patterns it was built around —
/// a regression where the scanner goes blind would otherwise read as "the
/// tree got cleaner".
#[test]
fn known_deliberate_notes_are_still_seen() {
    let report = cmr_analyze::analyze_sources();
    let has = |code: &str, asset: &str| {
        report
            .diagnostics
            .iter()
            .any(|d| d.code == code && d.asset == asset)
    };
    assert!(
        has("CMR-S001", "crates/engine/src/pool.rs"),
        "pool recv-under-lock note vanished:\n{}",
        report.render_human(false)
    );
    assert!(
        has("CMR-S001", "crates/engine/src/retry.rs"),
        "quarantine append-under-lock note vanished:\n{}",
        report.render_human(false)
    );
}
