//! Property tests: the engine is a pure re-scheduling of the serial
//! pipeline. For any corpus and any worker count, the ordered output
//! sequence — successes and failures alike — must be identical to a
//! one-worker run, and metrics must stay internally consistent.

use cmr_engine::{Engine, EngineConfig};
use proptest::prelude::*;

fn engine(jobs: usize) -> Engine {
    Engine::new(
        EngineConfig {
            jobs,
            ..EngineConfig::default()
        },
        cmr_core::Schema::paper(),
        cmr_ontology::Ontology::full(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any corpus, any worker count 1–8: output identical to serial.
    #[test]
    fn any_worker_count_matches_serial(
        n in 1usize..8,
        seed in 0u64..500,
        jobs in 2usize..=8,
    ) {
        let corpus = cmr_corpus::CorpusBuilder::new().records(n).seed(seed).build();
        let texts: Vec<&str> = corpus.records.iter().map(|r| r.text.as_str()).collect();
        let serial = engine(1).extract_batch(&texts);
        let parallel = engine(jobs).extract_batch(&texts);
        prop_assert_eq!(
            serde_json::to_string(&serial.items).expect("serialize"),
            serde_json::to_string(&parallel.items).expect("serialize")
        );
    }

    /// Metrics bookkeeping holds for any run shape: every record is either
    /// counted as a success sample or as an error, never both or neither.
    #[test]
    fn metrics_account_for_every_record(
        n in 1usize..8,
        seed in 0u64..500,
        jobs in 1usize..=4,
    ) {
        let corpus = cmr_corpus::CorpusBuilder::new().records(n).seed(seed).build();
        let texts: Vec<&str> = corpus.records.iter().map(|r| r.text.as_str()).collect();
        let out = engine(jobs).extract_batch(&texts);
        prop_assert_eq!(out.items.len(), n);
        let failures = out.items.iter().filter(|r| r.is_err()).count();
        prop_assert_eq!(out.metrics.records as usize, n - failures);
        prop_assert_eq!(out.metrics.errors.total() as usize, failures);
        prop_assert_eq!(out.metrics.stages.total.count, out.metrics.records);
    }
}
