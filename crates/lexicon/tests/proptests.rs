//! Property tests: inflection and lemmatization are mutually consistent.

use cmr_lexicon::*;
use proptest::prelude::*;

/// Strategy over the known verb lemmas.
fn any_verb() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(VERBS)
}

fn any_noun() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(NOUNS)
}

proptest! {
    /// Lemmatizing any generated verb inflection returns the lemma.
    #[test]
    fn verb_inflections_roundtrip(lemma in any_verb()) {
        let l = Lemmatizer::new();
        for form in [verb_past(lemma), verb_3sg(lemma), verb_gerund(lemma), verb_past_participle(lemma)] {
            let back = l.lemma(&form, WordClass::Verb);
            prop_assert_eq!(back.as_str(), lemma, "form {} of {}", form, lemma);
        }
    }

    /// Lemmatizing any generated noun plural returns the lemma.
    #[test]
    fn noun_plural_roundtrip(lemma in any_noun()) {
        let l = Lemmatizer::new();
        let plural = noun_plural(lemma);
        prop_assert_eq!(l.lemma(&plural, WordClass::Noun), lemma, "plural {}", plural);
    }

    /// Lemmatization is idempotent.
    #[test]
    fn lemma_idempotent(w in "[a-z]{1,12}") {
        let l = Lemmatizer::new();
        let once = l.lemma_any(&w);
        let twice = l.lemma_any(&once);
        prop_assert_eq!(once, twice);
    }

    /// Lemmatization never panics and never returns empty on arbitrary input.
    #[test]
    fn lemma_total(w in "[ -~]{0,20}") {
        let l = Lemmatizer::new();
        let out = l.lemma_any(&w);
        prop_assert_eq!(out.is_empty(), w.is_empty());
    }

    /// variants() always contains the lemma itself.
    #[test]
    fn variants_contain_lemma(w in "[a-z]{2,12}") {
        let v = variants(&w);
        prop_assert!(v.contains(&w));
    }
}
