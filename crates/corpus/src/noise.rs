//! Seeded, deterministic noise injection for chaos testing.
//!
//! Real clinical records do not arrive as clean as this crate's generator
//! emits them: they pass through OCR, transcription software, copy-paste
//! and truncated uploads. [`NoiseInjector`] models the corruption classes
//! observed in that path — OCR character confusions (`l`/`1`, `O`/`0`,
//! `rn`/`m`), dropped and duplicated punctuation, whitespace collapse
//! (which merges sections, since a section header is only recognized at
//! the start of a line), mid-record truncation, garbled section headers,
//! and stray non-ASCII bytes — each as an independent channel with its own
//! rate.
//!
//! Corruption is deterministic per `(seed, text, config)`: the RNG stream
//! for a record is derived from the injector seed mixed with a hash of the
//! record text (the same per-purpose stream idiom the generator uses), so
//! corrupting records in parallel or in any order reproduces byte-identical
//! output. At level 0 the input is returned unchanged.
//!
//! ```
//! use cmr_corpus::NoiseInjector;
//!
//! let injector = NoiseInjector::from_level(0.3, 7);
//! let noisy = injector.corrupt("Vitals:  Blood pressure is 144/90.\n");
//! assert_eq!(noisy, injector.corrupt("Vitals:  Blood pressure is 144/90.\n"));
//! ```

use rand::prelude::*;

/// Per-channel corruption rates, each a probability in `[0, 1]` applied at
/// that channel's granularity (per character, per line, or per record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Per eligible character: OCR confusion (`l`↔`1`, `O`↔`0`, `S`↔`5`,
    /// `B`↔`8`, `m`↔`rn`).
    pub ocr_confusion: f64,
    /// Per punctuation character: drop it.
    pub punct_drop: f64,
    /// Per punctuation character: duplicate it.
    pub punct_duplicate: f64,
    /// Per whitespace run of length ≥ 2 (including the blank line between
    /// sections): collapse the run to a single space, merging lines.
    pub whitespace_collapse: f64,
    /// Per record: truncate mid-sentence somewhere in the second half.
    pub truncation: f64,
    /// Per section-header line: garble it (drop the colon, lowercase the
    /// initial, or OCR-mangle the header word) so it no longer parses as a
    /// header and its body merges into the previous section.
    pub header_garble: f64,
    /// Per line: insert one stray non-ASCII byte at a random position.
    pub stray_bytes: f64,
}

impl NoiseConfig {
    /// All channels off. [`NoiseInjector::corrupt`] is the identity.
    pub fn off() -> NoiseConfig {
        NoiseConfig {
            ocr_confusion: 0.0,
            punct_drop: 0.0,
            punct_duplicate: 0.0,
            whitespace_collapse: 0.0,
            truncation: 0.0,
            header_garble: 0.0,
            stray_bytes: 0.0,
        }
    }

    /// A composite profile scaled by one `level` knob in `[0, 1]`. The
    /// per-channel base rates weight character-level channels lower than
    /// line- and record-level ones so a level step degrades text visibly
    /// without obliterating it; level 1 is severe but still mostly text.
    pub fn level(level: f64) -> NoiseConfig {
        let l = level.clamp(0.0, 1.0);
        NoiseConfig {
            ocr_confusion: 0.12 * l,
            punct_drop: 0.35 * l,
            punct_duplicate: 0.15 * l,
            whitespace_collapse: 0.40 * l,
            truncation: 0.30 * l,
            header_garble: 0.45 * l,
            stray_bytes: 0.20 * l,
        }
    }

    /// True when every channel rate is zero.
    pub fn is_off(&self) -> bool {
        [
            self.ocr_confusion,
            self.punct_drop,
            self.punct_duplicate,
            self.whitespace_collapse,
            self.truncation,
            self.header_garble,
            self.stray_bytes,
        ]
        .iter()
        .all(|&r| r <= 0.0)
    }

    /// Overrides the OCR-confusion rate (channels compose per-field).
    pub fn with_ocr_confusion(mut self, rate: f64) -> NoiseConfig {
        self.ocr_confusion = rate;
        self
    }

    /// Overrides the punctuation-drop rate.
    pub fn with_punct_drop(mut self, rate: f64) -> NoiseConfig {
        self.punct_drop = rate;
        self
    }

    /// Overrides the punctuation-duplication rate.
    pub fn with_punct_duplicate(mut self, rate: f64) -> NoiseConfig {
        self.punct_duplicate = rate;
        self
    }

    /// Overrides the whitespace-collapse rate.
    pub fn with_whitespace_collapse(mut self, rate: f64) -> NoiseConfig {
        self.whitespace_collapse = rate;
        self
    }

    /// Overrides the truncation rate.
    pub fn with_truncation(mut self, rate: f64) -> NoiseConfig {
        self.truncation = rate;
        self
    }

    /// Overrides the header-garble rate.
    pub fn with_header_garble(mut self, rate: f64) -> NoiseConfig {
        self.header_garble = rate;
        self
    }

    /// Overrides the stray-byte rate.
    pub fn with_stray_bytes(mut self, rate: f64) -> NoiseConfig {
        self.stray_bytes = rate;
        self
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig::off()
    }
}

/// OCR confusion pairs; the digraph `m` ↔ `rn` is handled separately.
const OCR_PAIRS: &[(char, char)] = &[
    ('l', '1'),
    ('1', 'l'),
    ('O', '0'),
    ('0', 'O'),
    ('o', '0'),
    ('S', '5'),
    ('5', 'S'),
    ('B', '8'),
    ('8', 'B'),
    ('I', 'l'),
];

/// Stray bytes seen in real OCR/transfer artifacts: all non-ASCII, so they
/// also exercise UTF-8 handling downstream.
const STRAY_CHARS: &[char] = &['¶', '§', '°', 'µ', '·', 'é', 'ü', 'ß'];

/// A deterministic corruptor over a [`NoiseConfig`].
#[derive(Debug, Clone)]
pub struct NoiseInjector {
    config: NoiseConfig,
    seed: u64,
}

impl NoiseInjector {
    /// An injector applying `config` under `seed`.
    pub fn new(config: NoiseConfig, seed: u64) -> NoiseInjector {
        NoiseInjector { config, seed }
    }

    /// An injector at the composite [`NoiseConfig::level`] profile.
    pub fn from_level(level: f64, seed: u64) -> NoiseInjector {
        NoiseInjector::new(NoiseConfig::level(level), seed)
    }

    /// The active configuration.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Corrupts one record's text. Deterministic per `(seed, text)`: the
    /// stream is keyed on a hash of the text, not on call order, so batches
    /// can be corrupted in parallel. With all channels at zero the input is
    /// returned byte-identically.
    pub fn corrupt(&self, text: &str) -> String {
        if self.config.is_off() || text.is_empty() {
            return text.to_string();
        }
        let mut rng = self.stream(text);
        let truncated = self.truncate(text, &mut rng);
        let mut lined = String::with_capacity(truncated.len() + 16);
        for line in truncated.split_inclusive('\n') {
            let (body, newline) = match line.strip_suffix('\n') {
                Some(b) => (b, true),
                None => (line, false),
            };
            self.corrupt_line(body, &mut lined, &mut rng);
            if newline {
                lined.push('\n');
            }
        }
        self.collapse_whitespace(&lined, &mut rng)
    }

    /// Per-record RNG stream: injector seed mixed with an FNV-1a hash of
    /// the text (the generator's per-purpose stream idiom, §`stream`).
    fn stream(&self, text: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(h.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        )
    }

    /// Record channel: mid-sentence truncation in the second half.
    fn truncate(&self, text: &str, rng: &mut StdRng) -> String {
        if !rng.random_bool(self.config.truncation) {
            return text.to_string();
        }
        let chars: Vec<char> = text.chars().collect();
        if chars.len() < 16 {
            return text.to_string();
        }
        let cut = rng.random_range(chars.len() / 2..chars.len());
        chars[..cut].iter().collect()
    }

    /// Line channels: header garbling, OCR confusions, punctuation
    /// drop/duplication, stray bytes.
    fn corrupt_line(&self, line: &str, out: &mut String, rng: &mut StdRng) {
        let mut chars: Vec<char> = line.chars().collect();
        if looks_like_header(line) && rng.random_bool(self.config.header_garble) {
            garble_header(&mut chars, rng);
        }
        let mut edited: Vec<char> = Vec::with_capacity(chars.len() + 2);
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            // OCR digraphs first: m → rn, rn → m.
            if c == 'm' && rng.random_bool(self.config.ocr_confusion) {
                edited.push('r');
                edited.push('n');
                i += 1;
                continue;
            }
            if c == 'r'
                && chars.get(i + 1) == Some(&'n')
                && rng.random_bool(self.config.ocr_confusion)
            {
                edited.push('m');
                i += 2;
                continue;
            }
            if let Some(&(_, to)) = OCR_PAIRS.iter().find(|(from, _)| *from == c) {
                if rng.random_bool(self.config.ocr_confusion) {
                    edited.push(to);
                    i += 1;
                    continue;
                }
            }
            if c.is_ascii_punctuation() {
                if rng.random_bool(self.config.punct_drop) {
                    i += 1;
                    continue;
                }
                if rng.random_bool(self.config.punct_duplicate) {
                    edited.push(c);
                    edited.push(c);
                    i += 1;
                    continue;
                }
            }
            edited.push(c);
            i += 1;
        }
        if !edited.is_empty() && rng.random_bool(self.config.stray_bytes) {
            let pos = rng.random_range(0..=edited.len());
            let stray = STRAY_CHARS[rng.random_range(0..STRAY_CHARS.len())];
            edited.insert(pos, stray);
        }
        out.extend(edited);
    }

    /// Whitespace channel: collapse multi-character whitespace runs —
    /// including the blank line between sections — to a single space.
    fn collapse_whitespace(&self, text: &str, rng: &mut StdRng) -> String {
        if self.config.whitespace_collapse <= 0.0 {
            return text.to_string();
        }
        let chars: Vec<char> = text.chars().collect();
        let mut out = String::with_capacity(text.len());
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == ' ' || chars[i] == '\n' || chars[i] == '\t' {
                let mut j = i;
                while j < chars.len() && matches!(chars[j], ' ' | '\n' | '\t') {
                    j += 1;
                }
                if j - i >= 2 && rng.random_bool(self.config.whitespace_collapse) {
                    out.push(' ');
                } else {
                    out.extend(&chars[i..j]);
                }
                i = j;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }
}

/// A conservative mirror of `cmr_text`'s header rule: `Word(s):` at the
/// start of a line — 1–6 words of `[A-Za-z0-9/()]`, initial ASCII
/// uppercase, at most 60 bytes before the colon.
fn looks_like_header(line: &str) -> bool {
    let Some((head, _)) = line.split_once(':') else {
        return false;
    };
    if head.len() > 60 || !head.starts_with(|c: char| c.is_ascii_uppercase()) {
        return false;
    }
    let words: Vec<&str> = head.split_whitespace().collect();
    (1..=6).contains(&words.len())
        && words.iter().all(|w| {
            w.chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | '(' | ')'))
        })
}

/// Garbles a header line so the record parser no longer recognizes it.
fn garble_header(chars: &mut Vec<char>, rng: &mut StdRng) {
    match rng.random_range(0..3u32) {
        // Drop the colon: "Vitals:" → "Vitals".
        0 => {
            if let Some(pos) = chars.iter().position(|&c| c == ':') {
                chars.remove(pos);
            }
        }
        // Lowercase the initial: "Vitals:" → "vitals:".
        1 => {
            if let Some(c) = chars.first_mut() {
                *c = c.to_ascii_lowercase();
            }
        }
        // OCR-mangle every confusable char before the colon:
        // "Social History:" → "S0cial Hist0ry:".
        _ => {
            let colon = chars.iter().position(|&c| c == ':').unwrap_or(chars.len());
            for c in &mut chars[..colon] {
                if let Some(&(_, to)) = OCR_PAIRS.iter().find(|(from, _)| from == c) {
                    *c = to;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOTE: &str = "Patient:  17\n\nVitals:  Blood pressure is 144/90, pulse of 84, \
                        temperature of 98.3.\n\nSocial History:  She quit smoking five years \
                        ago. She denies alcohol use.\n";

    #[test]
    fn level_zero_is_identity() {
        let injector = NoiseInjector::from_level(0.0, 7);
        assert_eq!(injector.corrupt(NOTE), NOTE);
        let off = NoiseInjector::new(NoiseConfig::off(), 99);
        assert_eq!(off.corrupt(NOTE), NOTE);
    }

    #[test]
    fn deterministic_per_seed_and_text() {
        let a = NoiseInjector::from_level(0.35, 7);
        let b = NoiseInjector::from_level(0.35, 7);
        assert_eq!(a.corrupt(NOTE), b.corrupt(NOTE));
        // Order independence: corrupting other texts first changes nothing.
        let _ = a.corrupt("something else entirely");
        assert_eq!(a.corrupt(NOTE), b.corrupt(NOTE));
    }

    #[test]
    fn seeds_decorrelate() {
        let a = NoiseInjector::from_level(0.4, 7).corrupt(NOTE);
        let b = NoiseInjector::from_level(0.4, 8).corrupt(NOTE);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_actually_corrupts() {
        let noisy = NoiseInjector::from_level(0.5, 7).corrupt(NOTE);
        assert_ne!(noisy, NOTE);
    }

    #[test]
    fn single_channel_composition() {
        // Only the punctuation-drop channel: letters and digits survive.
        let cfg = NoiseConfig::off().with_punct_drop(1.0);
        let out = NoiseInjector::new(cfg, 7).corrupt("a,b.c:d!");
        assert_eq!(out, "abcd");
        // Only header garbling: non-header lines are untouched.
        let cfg = NoiseConfig::off().with_header_garble(1.0);
        let out = NoiseInjector::new(cfg, 7).corrupt("no header here\n");
        assert_eq!(out, "no header here\n");
    }

    #[test]
    fn header_garble_defeats_section_parse() {
        let cfg = NoiseConfig::off().with_header_garble(1.0);
        let injector = NoiseInjector::new(cfg, 3);
        let noisy = injector.corrupt(NOTE);
        let record = cmr_text::Record::parse(&noisy);
        let clean = cmr_text::Record::parse(NOTE);
        assert!(
            record.sections.len() < clean.sections.len(),
            "garbled headers must merge sections: {noisy:?}"
        );
    }

    #[test]
    fn output_is_valid_utf8_for_unicode_input() {
        let injector = NoiseInjector::from_level(1.0, 7);
        let noisy = injector.corrupt("naïve café — 温度 98.6°\nVitals:  pulse 84\n");
        // String construction guarantees UTF-8; just exercise it.
        assert!(!noisy.is_empty());
    }
}
