//! The batch-extraction engine.

use crate::metrics::{
    lock_collector, EngineMetrics, MetricsCollector, MetricsSink, RecordSample,
    COLLECTOR_LOCK_CLASS,
};
use crate::pool::{panic_message, run_ordered, PoolConfig};
use crate::retry::{is_transient, AttemptRecord, QuarantineEntry, QuarantineFile, RetryPolicy};
use crate::watchdog::Watchdog;
use cmr_core::{
    AssociationMethod, BudgetExceeded, ExtractBudget, ExtractedRecord, PatternSet, Pipeline, Schema,
};
use cmr_ontology::Ontology;
use cmr_sync::TrackedMutex;
use cmr_text::Record;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means auto (one per available core).
    pub jobs: usize,
    /// Bound of the input queue (records buffered ahead of the workers).
    pub queue_depth: usize,
    /// Stop the batch at the first failed record; queued records are
    /// reported as [`EngineError::Aborted`] instead of being processed.
    pub fail_fast: bool,
    /// Per-record wall-clock budget, milliseconds.
    pub max_record_millis: Option<u64>,
    /// Per-record sentence (link-parse step) budget.
    pub max_record_sentences: Option<usize>,
    /// Feature–number association method for the numeric stage.
    pub method: AssociationMethod,
    /// POS-pattern inventory for the medical-term stage.
    pub term_patterns: PatternSet,
    /// Run the last-resort salvage tier for fields the structured tiers
    /// missed. On by default; ablations turn it off to isolate the
    /// structured methods.
    pub salvage: bool,
    /// Bounded retry with exponential backoff for transiently failing
    /// records (see [`crate::retry::RetryPolicy`]). The default policy
    /// (one attempt) disables retry.
    pub retry: RetryPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            queue_depth: 32,
            fail_fast: false,
            max_record_millis: None,
            max_record_sentences: None,
            method: AssociationMethod::LinkWithFallback,
            term_patterns: PatternSet::Paper,
            salvage: true,
            retry: RetryPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// Resolves `jobs == 0` to the number of available cores.
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Why one record failed. The batch itself survives — failures are
/// per-item values in the output stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineError {
    /// Extraction panicked; the payload message is preserved.
    Panicked {
        /// The panic message.
        message: String,
    },
    /// The record exceeded its time or sentence budget.
    Budget {
        /// Sentences fully processed before the budget tripped.
        sentences_done: usize,
    },
    /// The stuck-worker watchdog cancelled the record: its wall-clock
    /// deadline passed while the link parser was mid-search. Distinct from
    /// [`EngineError::Budget`], where the record tripped its budget at an
    /// ordinary between-sentence check.
    Timeout {
        /// The deadline that was exceeded, milliseconds.
        millis: u64,
    },
    /// The batch stopped (`fail_fast`) before this record was processed.
    Aborted,
    /// The startup asset lint found `Error`-severity findings; no record
    /// was processed (a broken rule asset would poison every record).
    Lint {
        /// The rendered diagnostics.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Panicked { message } => write!(f, "extraction panicked: {message}"),
            EngineError::Budget { sentences_done } => {
                write!(f, "budget exceeded after {sentences_done} sentence(s)")
            }
            EngineError::Timeout { millis } => {
                write!(f, "watchdog cancelled the record after {millis} ms")
            }
            EngineError::Aborted => write!(f, "aborted: batch stopped by an earlier failure"),
            EngineError::Lint { message } => {
                write!(f, "rule assets failed the startup lint:\n{message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of [`Engine::extract_batch`]: one slot per input record, in
/// input order, plus the run's metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchOutput {
    /// Per-record outcomes, in input order.
    pub items: Vec<Result<ExtractedRecord, EngineError>>,
    /// Aggregate metrics for the run.
    pub metrics: EngineMetrics,
}

impl BatchOutput {
    /// Iterates over the successful records.
    pub fn successes(&self) -> impl Iterator<Item = &ExtractedRecord> {
        self.items.iter().filter_map(|r| r.as_ref().ok())
    }
}

/// The parallel batch-extraction engine.
///
/// Holds shared read-only configuration (`Arc<Schema>`, `Arc<Ontology>`);
/// each run spins up a scoped worker pool where every worker owns a
/// full [`Pipeline`] (and thus its own link-parser cache — the pipeline is
/// `!Sync` by design). Results stream out in input order regardless of the
/// worker count, so `--jobs N` output is byte-identical to serial.
pub struct Engine {
    cfg: EngineConfig,
    schema: Arc<Schema>,
    ontology: Arc<Ontology>,
    quarantine: Option<Arc<QuarantineFile>>,
    shutdown: Option<Arc<AtomicBool>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default(), Schema::paper(), Ontology::full())
    }
}

impl Engine {
    /// Builds an engine over shared configuration. Accepts owned values or
    /// pre-shared `Arc`s.
    pub fn new(
        cfg: EngineConfig,
        schema: impl Into<Arc<Schema>>,
        ontology: impl Into<Arc<Ontology>>,
    ) -> Engine {
        Engine {
            cfg,
            schema: schema.into(),
            ontology: ontology.into(),
            quarantine: None,
            shutdown: None,
        }
    }

    /// Attaches a poison-quarantine file: records that exhaust the retry
    /// budget on a transient error are appended there (exactly once each)
    /// instead of only surfacing as per-item errors.
    pub fn with_quarantine(mut self, quarantine: QuarantineFile) -> Engine {
        self.quarantine = Some(Arc::new(quarantine));
        self
    }

    /// Installs a graceful-shutdown flag (typically raised from a
    /// SIGINT/SIGTERM handler). When raised mid-run, the feeder stops
    /// taking new records, everything already fed drains through the sink
    /// normally, and `extract_stream` returns — the sink's output remains
    /// a clean prefix of the full run, so a journal resumes exactly.
    pub fn with_shutdown(mut self, flag: Arc<AtomicBool>) -> Engine {
        self.shutdown = Some(flag);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Extracts a batch held in memory. Prefer [`Engine::extract_stream`]
    /// when the corpus is large or arrives incrementally.
    pub fn extract_batch<S: AsRef<str> + Sync>(&self, texts: &[S]) -> BatchOutput {
        let mut items = Vec::with_capacity(texts.len());
        let metrics = self.extract_stream(
            texts.iter().map(|t| t.as_ref().to_string()),
            |_idx, result| items.push(result),
        );
        BatchOutput { items, metrics }
    }

    /// Streams records through the worker pool. `sink` is called once per
    /// input, strictly in input order, from the calling thread; the input
    /// iterator is consumed from a feeder thread under backpressure
    /// (at most `queue_depth` records are buffered ahead of the workers).
    pub fn extract_stream<I, S>(&self, inputs: I, mut sink: S) -> EngineMetrics
    where
        I: Iterator<Item = String> + Send,
        S: FnMut(usize, Result<ExtractedRecord, EngineError>),
    {
        let jobs = self.cfg.resolved_jobs();
        // Fail fast when the rule assets are broken: an Error-severity
        // finding means extraction would misbehave on every record, so the
        // batch never starts. Warnings only surface in the metrics.
        let lint = startup_lint();
        if lint.errors > 0 {
            let start = Instant::now();
            for (idx, _text) in inputs.enumerate() {
                sink(
                    idx,
                    Err(EngineError::Lint {
                        message: lint.message.clone(),
                    }),
                );
            }
            return EngineMetrics {
                jobs,
                wall_nanos: start.elapsed().as_nanos() as u64,
                lint_warnings: lint.warnings,
                ..EngineMetrics::default()
            };
        }
        let collector = Arc::new(TrackedMutex::new(
            COLLECTOR_LOCK_CLASS,
            MetricsCollector::default(),
        ));
        // One pool-wide parse-structure cache: each worker keeps its
        // lock-free local cache as a fast path and falls back to this
        // lock-striped map, so a sentence shape is link-parsed once per
        // run, not once per worker. Without it, cold per-worker caches
        // multiply parse work by the job count.
        let parse_cache = cmr_core::SharedParseCache::new();
        let cache_handle = parse_cache.clone();
        let start = Instant::now();

        let schema = &self.schema;
        let ontology = &self.ontology;
        let method = self.cfg.method;
        let term_patterns = self.cfg.term_patterns;
        let salvage = self.cfg.salvage;
        let max_record_millis = self.cfg.max_record_millis;
        let max_record_sentences = self.cfg.max_record_sentences;
        let retry = self.cfg.retry;
        let quarantine = self.quarantine.clone();
        let worker_collector = Arc::clone(&collector);
        let panic_collector = Arc::clone(&collector);
        let abort_collector = Arc::clone(&collector);

        // The watchdog exists only when a wall-clock deadline does: it
        // shares a cancellation flag with each worker's link parser and
        // cancels any record still in flight past the deadline.
        let watchdog = max_record_millis.map(|ms| Watchdog::new(jobs, ms));
        let watchdog_thread = watchdog.as_ref().map(Watchdog::spawn);
        let worker_watchdog = watchdog.clone();

        let pool_stats = run_ordered(
            inputs,
            PoolConfig {
                jobs,
                queue_depth: self.cfg.queue_depth,
                fail_fast: self.cfg.fail_fast,
                shutdown: self.shutdown.clone(),
                chunk: 0,
            },
            // Each worker constructs its pipeline inside its own thread:
            // the pipeline is !Send, only the Arc'd config crosses threads.
            move |widx| {
                let mut pipeline = Pipeline::new(Arc::clone(schema), Arc::clone(ontology), method)
                    .with_term_patterns(term_patterns)
                    .with_salvage(salvage)
                    .with_shared_parse_cache(parse_cache.clone());
                let watchdog = worker_watchdog.clone();
                if let Some(wd) = &watchdog {
                    pipeline = pipeline.with_cancel_flag(wd.cancel_flag(widx));
                }
                // Worker-private metrics: records accumulate lock-free
                // here and fold into the shared collector exactly once,
                // when the worker closure drops at pool drain (inside the
                // pool scope, before the collector is read below).
                let sink = MetricsSink::new(Arc::clone(&worker_collector));
                let quarantine = quarantine.clone();
                move |idx: usize, text: String| {
                    let ctx = WorkerCtx {
                        widx,
                        pipeline: &pipeline,
                        max_record_millis,
                        max_record_sentences,
                        retry,
                        watchdog: watchdog.as_deref(),
                        quarantine: quarantine.as_deref(),
                        collector: &sink,
                    };
                    extract_with_retry(&ctx, idx, &text)
                }
            },
            // Backstop only: panics are normally caught (and retried) per
            // attempt inside the worker; this path fires only if something
            // outside the retry loop unwinds.
            move |message| {
                lock_collector(&panic_collector).errors.panics += 1;
                EngineError::Panicked { message }
            },
            move || {
                lock_collector(&abort_collector).errors.aborted += 1;
                EngineError::Aborted
            },
            sink,
        );

        if let Some(wd) = &watchdog {
            wd.stop();
        }
        if let Some(handle) = watchdog_thread {
            let _ = handle.join();
        }

        let wall_nanos = start.elapsed().as_nanos() as u64;
        let collector = lock_collector(&collector);
        let mut metrics = EngineMetrics::from_collector(&collector, jobs, wall_nanos);
        metrics.lint_warnings = lint.warnings;
        metrics.channel_wait_nanos = pool_stats.channel_wait_nanos;
        metrics.reorder_buffer_high_water = pool_stats.reorder_high_water;
        metrics.cache_shard_contention = cache_handle.stats().contention;
        metrics
    }
}

/// The cached outcome of the once-per-process startup asset lint.
pub(crate) struct LintStatus {
    pub(crate) errors: usize,
    pub(crate) warnings: u64,
    pub(crate) message: String,
    /// FNV-1a over the full analysis report: changes whenever the
    /// compiled-in rule assets (or what the analyzer sees in them) change.
    fingerprint: u64,
    /// Full severity rollup, for service health endpoints.
    summary: cmr_analyze::Summary,
}

/// Lints the committed rule assets once per process; every engine run
/// consults the cached result. The battery is pure over `&'static` tables,
/// so one run is valid for the process lifetime.
pub(crate) fn startup_lint() -> &'static LintStatus {
    static LINT: OnceLock<LintStatus> = OnceLock::new();
    LINT.get_or_init(|| {
        let report = cmr_analyze::analyze_assets();
        LintStatus {
            errors: report.errors(),
            warnings: report.warnings() as u64,
            message: if report.errors() > 0 {
                report.render_human(false)
            } else {
                String::new()
            },
            fingerprint: fnv1a_str(&report.to_json()),
            summary: report.summary(),
        }
    })
}

/// Fingerprint of the compiled-in rule assets, used by the run journal's
/// manifest so a resume against a build with different assets is rejected.
pub fn asset_fingerprint() -> u64 {
    startup_lint().fingerprint
}

/// Severity rollup of the once-per-process startup asset lint, for service
/// health endpoints (`GET /health` reports readiness including the lint
/// outcome without re-running the analyzer).
pub fn startup_lint_summary() -> cmr_analyze::Summary {
    startup_lint().summary
}

fn fnv1a_str(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything one worker needs to process (and possibly re-process) a
/// record: pipeline, budgets, durability hooks, metrics. Shared with the
/// resident-service workers (`crate::service`), which bracket the same
/// retry/watchdog/metrics machinery around one HTTP request at a time.
/// Metrics flow through the worker-local [`MetricsSink`] — per-record
/// updates never touch the run-wide collector lock.
pub(crate) struct WorkerCtx<'a> {
    pub(crate) widx: usize,
    pub(crate) pipeline: &'a Pipeline,
    pub(crate) max_record_millis: Option<u64>,
    pub(crate) max_record_sentences: Option<usize>,
    pub(crate) retry: RetryPolicy,
    pub(crate) watchdog: Option<&'a Watchdog>,
    pub(crate) quarantine: Option<&'a QuarantineFile>,
    pub(crate) collector: &'a MetricsSink,
}

/// Runs one record through the bounded-retry loop: each attempt is
/// individually panic-caught and watchdog-bracketed; transient failures
/// back off and retry; the final outcome is counted in the metrics
/// exactly once, and a record that exhausts its attempts on a transient
/// error is appended to the quarantine (when one is attached).
pub(crate) fn extract_with_retry(
    ctx: &WorkerCtx<'_>,
    idx: usize,
    text: &str,
) -> Result<ExtractedRecord, EngineError> {
    let attempts_allowed = ctx.retry.attempts();
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if let Some(wd) = ctx.watchdog {
            wd.begin(ctx.widx);
        }
        // Per-attempt catch_unwind so a panicking attempt can be retried;
        // the pool's own catch_unwind remains as a backstop. The pipeline
        // holds no cross-record invariants (caches are valid at every
        // unwind point), so resuming with it after a caught panic is safe.
        let outcome = catch_unwind(AssertUnwindSafe(|| extract_one(ctx, text)));
        let timed_out = ctx.watchdog.is_some_and(|wd| wd.end(ctx.widx));
        let error = match outcome {
            Err(payload) => EngineError::Panicked {
                message: panic_message(payload.as_ref()),
            },
            // A cancelled attempt fails wholesale as a timeout even if
            // extraction limped to an Ok on the pattern fallback: its
            // fields would silently depend on *when* the cancellation
            // landed, and the degradation report drops `Cancelled` parse
            // failures on the assumption the whole record is discarded.
            Ok(_) if timed_out => EngineError::Timeout {
                millis: ctx.max_record_millis.unwrap_or(0),
            },
            Ok(Ok((out, sample))) => {
                let methods: Vec<_> = out.numeric_methods.values().copied().collect();
                ctx.collector
                    .with(|c| c.record_ok(sample, &methods, &out.degradation));
                return Ok(out);
            }
            Ok(Err(exceeded)) => EngineError::Budget {
                sentences_done: exceeded.sentences_done,
            },
        };
        if attempt < attempts_allowed && is_transient(&error) {
            let backoff = ctx.retry.backoff_millis(attempt);
            attempts.push(AttemptRecord {
                attempt,
                error,
                backoff_millis: backoff,
            });
            ctx.collector.with(|c| c.retries += 1);
            std::thread::sleep(Duration::from_millis(backoff));
            continue;
        }
        // Final outcome: count it exactly once, quarantine if poison.
        ctx.collector.with(|c| match &error {
            EngineError::Panicked { .. } => c.errors.panics += 1,
            EngineError::Budget { .. } => c.errors.budget += 1,
            EngineError::Timeout { .. } => c.errors.timeouts += 1,
            EngineError::Aborted => c.errors.aborted += 1,
            EngineError::Lint { .. } => {}
        });
        if is_transient(&error) {
            if let Some(q) = ctx.quarantine {
                attempts.push(AttemptRecord {
                    attempt,
                    error: error.clone(),
                    backoff_millis: 0,
                });
                let written = q.append(&QuarantineEntry {
                    index: idx,
                    text: text.to_string(),
                    error: error.clone(),
                    attempts,
                });
                if written {
                    ctx.collector.with(|c| c.quarantined += 1);
                }
            }
        }
        return Err(error);
    }
}

/// Processes one record on a worker: parse, budgeted instrumented
/// extraction. Returns the record plus its metrics sample; ALL metrics
/// recording and failure classification live in [`extract_with_retry`],
/// so retried or cancelled attempts are never multi-counted.
fn extract_one(
    ctx: &WorkerCtx<'_>,
    text: &str,
) -> Result<(ExtractedRecord, RecordSample), BudgetExceeded> {
    // Inside the per-attempt catch_unwind: an injected `panic` action is
    // contained to this record (its chunk-mates survive) and, being
    // transient, heals under a retry policy — which is exactly what the
    // chaos panic-mid-chunk schedule asserts. `io_inject` enacts panic
    // and delay; error-shaped actions have no I/O here to poison.
    let _ = cmr_failpoint::io_inject("engine::record");
    let total_start = Instant::now();
    let budget = ExtractBudget {
        deadline: ctx
            .max_record_millis
            .map(|ms| total_start + Duration::from_millis(ms)),
        max_sentences: ctx.max_record_sentences,
    };

    let record = Record::parse(text);
    let record_parse_nanos = total_start.elapsed().as_nanos() as u64;

    let pipeline = ctx.pipeline;
    let stats_before = pipeline.parser_stats();
    let (out, timing) = pipeline.extract_instrumented(&record, &budget)?;
    let stats = pipeline.parser_stats();
    let sample = RecordSample {
        record_parse_nanos,
        link_parse_nanos: stats.parse_nanos - stats_before.parse_nanos,
        numeric_nanos: timing.numeric_nanos,
        terms_nanos: timing.terms_nanos,
        total_nanos: total_start.elapsed().as_nanos() as u64,
        cache_hits: stats.cache_hits - stats_before.cache_hits,
        shared_hits: stats.shared_hits - stats_before.shared_hits,
        cache_misses: stats.cache_misses - stats_before.cache_misses,
    };
    Ok((out, sample))
}

// The engine itself crosses threads (it is borrowed by scoped workers).
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Engine>();
const _: () = _assert_send_sync::<EngineConfig>();
const _: () = _assert_send_sync::<EngineError>();

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cmr_corpus::APPENDIX_RECORD;

    fn serial_cfg() -> EngineConfig {
        EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn batch_matches_pipeline_output() {
        let engine = Engine::new(serial_cfg(), Schema::paper(), Ontology::full());
        let out = engine.extract_batch(&[APPENDIX_RECORD, "", APPENDIX_RECORD]);
        assert_eq!(out.items.len(), 3);
        let first = out.items[0].as_ref().expect("extracts");
        let reference = Pipeline::with_default_schema().extract(APPENDIX_RECORD);
        assert_eq!(
            serde_json::to_string(first).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
        assert_eq!(out.metrics.records, 3);
        assert_eq!(out.metrics.errors.total(), 0);
        assert!(out.metrics.stages.total.count == 3);
        assert!(out.metrics.records_per_sec > 0.0);
    }

    #[test]
    fn startup_lint_passes_on_committed_assets() {
        // The committed rule assets must never carry Error findings (the
        // engine would refuse to start) and currently carry no warnings.
        let lint = startup_lint();
        assert_eq!(lint.errors, 0, "{}", lint.message);
        let out = Engine::new(serial_cfg(), Schema::paper(), Ontology::full())
            .extract_batch(&[APPENDIX_RECORD]);
        assert_eq!(out.metrics.lint_warnings, lint.warnings);
        assert!(out.items[0].is_ok());
    }

    #[test]
    fn parallel_output_identical_to_serial() {
        let texts: Vec<String> = (0..12)
            .map(|i| APPENDIX_RECORD.replace("Patient: 2", &format!("Patient: {i}")))
            .collect();
        let serial =
            Engine::new(serial_cfg(), Schema::paper(), Ontology::full()).extract_batch(&texts);
        let parallel = Engine::new(
            EngineConfig {
                jobs: 4,
                ..EngineConfig::default()
            },
            Schema::paper(),
            Ontology::full(),
        )
        .extract_batch(&texts);
        assert_eq!(
            serde_json::to_string(&serial.items).unwrap(),
            serde_json::to_string(&parallel.items).unwrap()
        );
        assert_eq!(parallel.metrics.jobs, 4);
    }

    #[test]
    fn sentence_budget_fails_record_not_batch() {
        let cfg = EngineConfig {
            jobs: 2,
            max_record_sentences: Some(1),
            ..EngineConfig::default()
        };
        let engine = Engine::new(cfg, Schema::paper(), Ontology::full());
        let out = engine.extract_batch(&[APPENDIX_RECORD, APPENDIX_RECORD]);
        assert_eq!(out.items.len(), 2);
        for item in &out.items {
            assert!(
                matches!(item, Err(EngineError::Budget { .. })),
                "appendix record has >1 sentence: {item:?}"
            );
        }
        assert_eq!(out.metrics.errors.budget, 2);
        assert_eq!(out.metrics.records, 0);
    }

    #[test]
    fn zero_jobs_resolves_to_cores() {
        assert!(EngineConfig::default().resolved_jobs() >= 1);
    }

    #[test]
    fn stream_sees_inputs_in_order() {
        let engine = Engine::new(
            EngineConfig {
                jobs: 3,
                ..EngineConfig::default()
            },
            Schema::paper(),
            Ontology::full(),
        );
        let mut indices = Vec::new();
        engine.extract_stream((0..20).map(|_| APPENDIX_RECORD.to_string()), |idx, _| {
            indices.push(idx)
        });
        assert_eq!(indices, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn metrics_cache_counters_accumulate() {
        let engine = Engine::new(serial_cfg(), Schema::paper(), Ontology::full());
        let out = engine.extract_batch(&[APPENDIX_RECORD, APPENDIX_RECORD]);
        let cache = out.metrics.parse_cache;
        assert!(cache.misses > 0, "first record parses fresh");
        assert!(cache.hits > 0, "identical second record hits the cache");
    }
}
