//! A deterministic, order-preserving scoped worker pool.
//!
//! The shape is a classic fan-out/fan-in over bounded channels, with
//! records moving in *chunks* to amortize channel and wakeup costs:
//!
//! ```text
//! inputs ──feeder──▶ sync_channel(chunks) ──▶ N workers ──▶
//!          sync_channel(chunks + jobs) ──consumer──▶ ring buffer ──▶ sink
//! ```
//!
//! * **Chunked dispatch** — the feeder batches records into chunks before
//!   sending (one channel rendezvous per chunk, not per record). Chunk
//!   size is feeder-adaptive: it starts at one record so every worker has
//!   work within microseconds of startup, then doubles per send up to
//!   [`DEFAULT_CHUNK`] once the pool is warm. Per-record sends made the
//!   channel itself the bottleneck at small record costs.
//! * **Backpressure** — both channels are bounded in chunks such that
//!   buffered records stay O(queue depth), never O(corpus); a slow sink
//!   stalls the workers and a slow feeder idles them.
//! * **Determinism** — every input is tagged with its index; the consumer
//!   parks out-of-order results in a fixed-capacity ring buffer indexed by
//!   sequence number (no per-item allocation, no tree rebalancing) and
//!   emits strictly in input order, so the output sequence is identical
//!   for any worker count and any chunk size.
//! * **Worker-local state** — each worker builds its own state *inside its
//!   thread* via `make_worker`, which is how `!Send` state (the pipeline's
//!   link-parser cache) rides a thread pool.
//! * **Fault isolation** — a panicking work item is caught with
//!   [`std::panic::catch_unwind`] *per record*, not per chunk, and
//!   surfaced through `on_panic` as an ordinary per-item error; the rest
//!   of the chunk and the batch keep going. Under `fail_fast` the first
//!   error flips a stop flag: the feeder stops feeding and workers drain
//!   remaining queued records through `on_abort` without processing them,
//!   so every fed index still produces exactly one output.

use cmr_sync::TrackedMutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
#[cfg(test)]
use std::sync::Mutex;
use std::time::Instant;

/// Steady-state records per channel send when the caller does not choose.
const DEFAULT_CHUNK: usize = 16;

/// Pool shape parameters (already resolved: `jobs >= 1`).
pub(crate) struct PoolConfig {
    /// Worker threads.
    pub jobs: usize,
    /// Target bound on buffered *records* awaiting a worker.
    pub queue_depth: usize,
    /// Stop feeding after the first error.
    pub fail_fast: bool,
    /// External graceful-shutdown flag (SIGINT/SIGTERM): when raised, the
    /// feeder stops feeding new records but everything already fed drains
    /// through the workers and the sink normally — unlike `fail_fast`,
    /// queued items are *processed*, not aborted, so a journal written from
    /// the sink stays a clean prefix of the run.
    pub shutdown: Option<Arc<AtomicBool>>,
    /// Steady-state records per channel send; `0` means [`DEFAULT_CHUNK`].
    /// `1` reproduces the old per-record dispatch exactly.
    pub chunk: usize,
}

/// Counters observed by one [`run_ordered`] run, reported to the caller so
/// the engine can surface pool health (see `EngineMetrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PoolStats {
    /// Total nanoseconds workers spent blocked waiting for input chunks
    /// (including contention on the shared receiver), summed over workers.
    pub channel_wait_nanos: u64,
    /// Peak number of results parked in the reorder ring awaiting their
    /// predecessors.
    pub reorder_high_water: u64,
    /// Chunks the feeder dispatched.
    pub chunks_dispatched: u64,
}

/// Runs `inputs` through `jobs` workers, invoking `sink(index, result)`
/// strictly in input order. See the module docs for the contract.
pub(crate) fn run_ordered<In, Out, E, It, MkW, W, P, A, S>(
    inputs: It,
    cfg: PoolConfig,
    make_worker: MkW,
    on_panic: P,
    on_abort: A,
    mut sink: S,
) -> PoolStats
where
    In: Send,
    Out: Send,
    E: Send,
    It: Iterator<Item = In> + Send,
    MkW: Fn(usize) -> W + Sync,
    W: FnMut(usize, In) -> Result<Out, E>,
    P: Fn(String) -> E + Sync,
    A: Fn() -> E + Sync,
    S: FnMut(usize, Result<Out, E>),
{
    assert!(cfg.jobs >= 1, "pool needs at least one worker");
    let fail_fast = cfg.fail_fast;
    let queue_depth = cfg.queue_depth.max(1);
    let max_chunk = if cfg.chunk == 0 {
        DEFAULT_CHUNK
    } else {
        cfg.chunk
    };
    // Channel bounds are in chunks; buffered records stay O(queue_depth).
    let in_bound = queue_depth.div_ceil(max_chunk).max(1);
    let out_bound = in_bound + cfg.jobs;
    let stop = AtomicBool::new(false);
    let wait_nanos = AtomicU64::new(0);
    let chunks_sent = AtomicU64::new(0);
    let (in_tx, in_rx) = sync_channel::<Vec<(usize, In)>>(in_bound);
    let in_rx = Arc::new(TrackedMutex::new("engine.pool_receiver", in_rx));
    let (out_tx, out_rx) = sync_channel::<Vec<(usize, Result<Out, E>)>>(out_bound);

    // Upper bound on records in flight (fed but not yet emitted): every
    // chunk buffered in either channel, one chunk in a blocked send on
    // each side, one chunk per worker, and one being scattered by the
    // consumer. The reorder ring is sized to that bound once, up front —
    // a parked result can never land more than `ring_cap` ahead of the
    // next emission.
    let ring_cap = ((in_bound + out_bound + cfg.jobs + 3) * max_chunk).next_power_of_two();
    let ring_mask = ring_cap - 1;

    let mut high_water = 0u64;
    std::thread::scope(|scope| {
        // Feeder: enumerate inputs into chunks until done, stopped, or
        // asked to shut down. Dropping `in_tx` is the end-of-input
        // signal. On stop/shutdown the chunk being built is DROPPED, not
        // flushed: nothing new is fed past the last dispatched chunk, so a
        // flag raised before the run starts feeds zero records, and what
        // was emitted is always a contiguous prefix of the input.
        let stop_ref = &stop;
        let chunks_ref = &chunks_sent;
        let shutdown_ref = cfg.shutdown.as_deref();
        scope.spawn(move || {
            let mut chunk_target = 1usize;
            let mut chunk: Vec<(usize, In)> = Vec::with_capacity(chunk_target);
            for item in inputs.enumerate() {
                if stop_ref.load(Ordering::Relaxed)
                    || shutdown_ref.is_some_and(|f| f.load(Ordering::Relaxed))
                {
                    return;
                }
                chunk.push(item);
                if chunk.len() >= chunk_target {
                    // Enacts `panic`/`delay`; error-shaped actions only log
                    // (there is no I/O at a dispatch boundary to poison).
                    let _ = cmr_failpoint::io_inject("pool::chunk_dispatch");
                    chunks_ref.fetch_add(1, Ordering::Relaxed);
                    if in_tx.send(std::mem::take(&mut chunk)).is_err() {
                        return;
                    }
                    // Warm-up ramp: small first chunks get every worker
                    // busy immediately; steady state amortizes.
                    chunk_target = (chunk_target * 2).min(max_chunk);
                    chunk.reserve(chunk_target);
                }
            }
            if !chunk.is_empty() {
                let _ = cmr_failpoint::io_inject("pool::chunk_dispatch");
                chunks_ref.fetch_add(1, Ordering::Relaxed);
                let _ = in_tx.send(chunk);
            }
        });

        for widx in 0..cfg.jobs {
            let in_rx = Arc::clone(&in_rx);
            let out_tx = out_tx.clone();
            let wait_ref = &wait_nanos;
            let (make_worker, on_panic, on_abort) = (&make_worker, &on_panic, &on_abort);
            scope.spawn(move || {
                let mut work = make_worker(widx);
                loop {
                    // Lock only for the blocking recv: whoever holds the
                    // lock takes the next chunk, then releases before
                    // processing it. Worker panics are caught below around
                    // `work`, never while this lock is held, but recover
                    // from poisoning anyway — the channel receiver has no
                    // state a mid-recv unwind could corrupt, and dying here
                    // would strand the remaining queued records.
                    let waited = Instant::now();
                    let msg = in_rx
                        .lock() // cmr:allow(S001) -- the lock scope IS the recv: it arbitrates which worker claims the next chunk
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .recv();
                    wait_ref.fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let Ok(chunk) = msg else { break };
                    let mut results = Vec::with_capacity(chunk.len());
                    for (idx, item) in chunk {
                        // Stop and unwind isolation are per record, not
                        // per chunk: one poisoned record inside a batch
                        // must not take its chunk-mates down with it.
                        let result = if stop_ref.load(Ordering::Relaxed) {
                            Err(on_abort())
                        } else {
                            match catch_unwind(AssertUnwindSafe(|| work(idx, item))) {
                                Ok(r) => r,
                                Err(payload) => Err(on_panic(panic_message(payload.as_ref()))),
                            }
                        };
                        if fail_fast && result.is_err() {
                            stop_ref.store(true, Ordering::Relaxed);
                        }
                        results.push((idx, result));
                    }
                    if out_tx.send(results).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold the only remaining senders; when the last one
        // exits, recv below disconnects and the consumer loop ends.
        drop(out_tx);

        // Consumer (this thread): restore input order via a fixed-capacity
        // ring indexed by sequence number — slot `idx & ring_mask` — and
        // emit the contiguous run each arriving chunk completes.
        let mut ring: Vec<Option<Result<Out, E>>> = (0..ring_cap).map(|_| None).collect();
        let mut parked = 0usize;
        let mut next_emit = 0usize;
        while let Ok(chunk) = out_rx.recv() {
            for (idx, result) in chunk {
                debug_assert!(
                    idx >= next_emit && idx - next_emit < ring_cap,
                    "result index {idx} outside ring window starting at {next_emit}"
                );
                let slot = &mut ring[idx & ring_mask];
                debug_assert!(slot.is_none(), "ring slot for {idx} already occupied");
                *slot = Some(result);
                parked += 1;
            }
            high_water = high_water.max(parked as u64);
            let _ = cmr_failpoint::io_inject("pool::reorder_flush");
            while let Some(result) = ring[next_emit & ring_mask].take() {
                parked -= 1;
                sink(next_emit, result);
                next_emit += 1;
            }
        }
        debug_assert_eq!(parked, 0, "gap in emitted indices");
    });

    PoolStats {
        channel_wait_nanos: wait_nanos.into_inner(),
        reorder_high_water: high_water,
        chunks_dispatched: chunks_sent.into_inner(),
    }
}

/// Renders a panic payload the way the default hook does.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Concurrency model for the pool's ordering machinery, built only under
/// `RUSTFLAGS="--cfg loom"` (the CI loom job). Two properties are modeled
/// across many interleavings:
///
/// 1. **Exactly-once, in-sequence emission**: the reorder ring emits every
///    fed index exactly once and in strictly ascending order, for any
///    worker count and chunk size — a duplicate emission, a skipped index,
///    or an out-of-sequence slot reuse all fail the sink's assertion.
/// 2. **Stop-flag handshake**: when `fail_fast` flips the stop flag while
///    the feeder is mid-stream, the feeder stops feeding, the workers
///    drain queued records through `on_abort`, and what was emitted is
///    still a gapless exactly-once prefix — the flag never causes a record
///    to be emitted twice (once processed, once aborted) or dropped.
#[cfg(all(test, loom))]
mod loom_model {
    use super::*;
    use loom::sync::atomic::{AtomicUsize, Ordering as LoomOrdering};

    /// Runs the pool and asserts the sink saw indices `0..len` in strict
    /// sequence with no duplicates; returns the emitted results.
    fn run_and_check_sequence<W>(
        n: usize,
        jobs: usize,
        chunk: usize,
        fail_fast: bool,
        make_worker: impl Fn(usize) -> W + Sync,
    ) -> Vec<Result<usize, String>>
    where
        W: FnMut(usize, usize) -> Result<usize, String>,
    {
        let mut emitted = Vec::new();
        run_ordered(
            0..n,
            PoolConfig {
                jobs,
                queue_depth: 4,
                fail_fast,
                shutdown: None,
                chunk,
            },
            make_worker,
            |m| format!("panic: {m}"),
            || "aborted".to_string(),
            |idx, r| {
                assert_eq!(
                    idx,
                    emitted.len(),
                    "emission out of sequence (or duplicated): got {idx}, expected {}",
                    emitted.len()
                );
                emitted.push(r);
            },
        );
        emitted
    }

    #[test]
    fn ring_emits_each_record_exactly_once_in_sequence() {
        loom::model(|| {
            for (jobs, chunk) in [(2, 1), (2, 3), (3, 2)] {
                let emitted = run_and_check_sequence(10, jobs, chunk, false, |_w| {
                    |_i, x: usize| Ok::<usize, String>(x * 2)
                });
                assert_eq!(emitted.len(), 10, "jobs={jobs} chunk={chunk}");
                for (i, r) in emitted.iter().enumerate() {
                    assert_eq!(r, &Ok(i * 2), "jobs={jobs} chunk={chunk}");
                }
            }
        });
    }

    #[test]
    fn stop_flag_handshake_keeps_emission_exact_once() {
        loom::model(|| {
            // The worker fails on index 2 with the stop flag still cold, so
            // the flag is raised while the feeder races to enqueue the rest
            // of the stream. Whatever interleaving wins, each fed index
            // resolves exactly once: processed before the flag, or drained
            // through `on_abort` after it — never both, never skipped.
            let processed = AtomicUsize::new(0);
            let processed_ref = &processed;
            let emitted = run_and_check_sequence(64, 2, 2, true, |_w| {
                move |i, x: usize| {
                    if i == 2 {
                        Err("poison".to_string())
                    } else {
                        processed_ref.fetch_add(1, LoomOrdering::SeqCst);
                        Ok::<usize, String>(x)
                    }
                }
            });
            assert!(!emitted.is_empty() && emitted.len() <= 64);
            let aborted = emitted
                .iter()
                .filter(|r| matches!(r, Err(e) if e == "aborted"))
                .count();
            let failed = emitted
                .iter()
                .filter(|r| matches!(r, Err(e) if e == "poison"))
                .count();
            assert_eq!(failed, 1, "the poisoned record resolves exactly once");
            assert_eq!(
                processed.load(LoomOrdering::SeqCst) + aborted + failed,
                emitted.len(),
                "a fed record was both processed and aborted, or neither"
            );
            // Everything past the poison is an abort or a pre-flag success,
            // and index 2 itself carries the original error.
            assert!(matches!(&emitted[2], Err(e) if e == "poison"));
        });
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg(jobs: usize, fail_fast: bool) -> PoolConfig {
        PoolConfig {
            jobs,
            queue_depth: 4,
            fail_fast,
            shutdown: None,
            chunk: 0,
        }
    }

    /// Runs the doubling pool and returns the emitted (index, result) list.
    fn double_all(jobs: usize, n: usize) -> Vec<(usize, Result<usize, String>)> {
        let mut seen = Vec::new();
        run_ordered(
            0..n,
            cfg(jobs, false),
            |_w| |_i, x: usize| Ok::<usize, String>(x * 2),
            |m| m,
            || "aborted".to_string(),
            |idx, r| seen.push((idx, r)),
        );
        seen
    }

    #[test]
    fn emits_in_order_any_worker_count() {
        for jobs in [1, 2, 4, 7] {
            let seen = double_all(jobs, 100);
            assert_eq!(seen.len(), 100, "jobs={jobs}");
            for (i, (idx, r)) in seen.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(r.as_ref().unwrap(), &(i * 2));
            }
        }
    }

    #[test]
    fn emits_in_order_for_any_chunk_size() {
        // Chunk size is a throughput knob, never a semantics knob: the
        // emitted sequence is identical from per-record dispatch (1)
        // through chunks larger than the whole input (1000).
        for chunk in [1, 2, 3, 16, 64, 1000] {
            let mut seen = Vec::new();
            let stats = run_ordered(
                0..250,
                PoolConfig {
                    jobs: 4,
                    queue_depth: 8,
                    fail_fast: false,
                    shutdown: None,
                    chunk,
                },
                |_w| |_i, x: usize| Ok::<usize, String>(x + 1),
                |m| m,
                || "aborted".to_string(),
                |idx, r| seen.push((idx, r)),
            );
            assert_eq!(seen.len(), 250, "chunk={chunk}");
            for (i, (idx, r)) in seen.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(r.as_ref().unwrap(), &(i + 1));
            }
            assert!(stats.chunks_dispatched > 0, "chunk={chunk}");
        }
    }

    #[test]
    fn reorder_ring_restores_order_under_variable_latency() {
        // Slow every fourth record so later indexes routinely finish
        // first; the ring must park them and still emit 0..n in order,
        // and the high-water mark must record that parking happened.
        let mut seen = Vec::new();
        let stats = run_ordered(
            0..120,
            PoolConfig {
                jobs: 4,
                queue_depth: 16,
                fail_fast: false,
                shutdown: None,
                chunk: 4,
            },
            |_w| {
                |i: usize, x: usize| {
                    if i.is_multiple_of(4) {
                        std::thread::sleep(std::time::Duration::from_micros(300));
                    }
                    Ok::<usize, String>(x)
                }
            },
            |m| m,
            || "aborted".to_string(),
            |idx, r| seen.push((idx, r)),
        );
        assert_eq!(seen.len(), 120);
        for (i, (idx, r)) in seen.iter().enumerate() {
            assert_eq!(*idx, i, "ring emitted out of order");
            assert_eq!(r, &Ok(i));
        }
        // Not asserted > 0: a 1-CPU machine may legitimately never
        // overlap workers. Recorded so multicore runs can see it.
        let _ = stats.reorder_high_water;
    }

    #[test]
    fn chunking_amortizes_sends() {
        let mut count = 0usize;
        let stats = run_ordered(
            0..1000,
            PoolConfig {
                jobs: 2,
                queue_depth: 64,
                fail_fast: false,
                shutdown: None,
                chunk: 16,
            },
            |_w| |_i, x: usize| Ok::<usize, String>(x),
            |m| m,
            || "aborted".to_string(),
            |_, _| count += 1,
        );
        assert_eq!(count, 1000);
        // The warm-up ramp (1, 2, 4, 8, then 16s) means strictly fewer
        // sends than records but more than records/16.
        assert!(
            stats.chunks_dispatched < 1000 && stats.chunks_dispatched >= 1000 / 16,
            "unexpected dispatch count {}",
            stats.chunks_dispatched
        );
    }

    #[test]
    fn empty_input() {
        assert!(double_all(3, 0).is_empty());
    }

    #[test]
    fn panics_become_item_errors() {
        let mut results = Vec::new();
        run_ordered(
            0..6,
            cfg(3, false),
            |_w| {
                |_i, x: usize| {
                    if x == 3 {
                        panic!("boom at {x}");
                    }
                    Ok::<usize, String>(x)
                }
            },
            |m| format!("panic: {m}"),
            || "aborted".to_string(),
            |_, r| results.push(r),
        );
        assert_eq!(results.len(), 6, "panicking item still yields an output");
        assert_eq!(results[3].as_ref().unwrap_err(), "panic: boom at 3");
        assert_eq!(results[5], Ok(5));
    }

    #[test]
    fn panic_mid_chunk_spares_chunk_mates() {
        // Force everything into one big chunk: the panic at index 7 must
        // surface as that record's error alone, with its chunk-mates on
        // both sides still processed by the same worker pass.
        let mut results = Vec::new();
        run_ordered(
            0..16,
            PoolConfig {
                jobs: 1,
                queue_depth: 16,
                fail_fast: false,
                shutdown: None,
                chunk: 16,
            },
            |_w| {
                |_i, x: usize| {
                    if x == 7 {
                        panic!("mid-chunk boom");
                    }
                    Ok::<usize, String>(x)
                }
            },
            |m| format!("panic: {m}"),
            || "aborted".to_string(),
            |_, r| results.push(r),
        );
        assert_eq!(results.len(), 16);
        assert_eq!(results[7].as_ref().unwrap_err(), "panic: mid-chunk boom");
        for (i, r) in results.iter().enumerate() {
            if i != 7 {
                assert_eq!(r, &Ok(i), "chunk-mate {i} was not processed");
            }
        }
    }

    #[test]
    fn fail_fast_aborts_tail() {
        // One worker failing on the very first item makes the race-free
        // worst case: while the worker handles item 0, backpressure caps
        // what the feeder can get ahead by (buffered chunks + in-flight
        // sends), so the stop flag provably lands before the feeder
        // finishes.
        let mut results = Vec::new();
        run_ordered(
            0..10_000,
            cfg(1, true),
            |_w| {
                |_i, x: usize| {
                    if x == 0 {
                        Err("bad record".to_string())
                    } else {
                        Ok::<usize, String>(x)
                    }
                }
            },
            |m| m,
            || "aborted".to_string(),
            |_, r| results.push(r),
        );
        // Every fed index yields exactly one output; the tail is aborted
        // rather than processed; feeding stopped early.
        assert_eq!(results[0].as_ref().unwrap_err(), "bad record");
        assert!(
            results.len() < 10_000,
            "feeder ran to completion despite fail_fast ({} results)",
            results.len()
        );
        for r in &results[1..] {
            assert!(
                matches!(r, Err(e) if e == "aborted"),
                "tail item processed: {r:?}"
            );
        }
    }

    #[test]
    fn worker_state_is_per_thread() {
        // Each worker's state counts its own items; the total must equal n.
        let counts = Arc::new(Mutex::new(vec![0usize; 4]));
        let counts_ref = Arc::clone(&counts);
        run_ordered(
            0..50,
            cfg(4, false),
            move |widx| {
                let counts = Arc::clone(&counts_ref);
                move |_i, _x: usize| {
                    counts.lock().unwrap()[widx] += 1;
                    Ok::<usize, String>(widx)
                }
            },
            |m| m,
            || "aborted".to_string(),
            |_, _| {},
        );
        let total: usize = counts.lock().unwrap().iter().sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn workers_see_the_input_index() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_ref = Arc::clone(&seen);
        run_ordered(
            10..20,
            cfg(3, false),
            move |_w| {
                let seen = Arc::clone(&seen_ref);
                move |i, x: usize| {
                    seen.lock().unwrap().push((i, x));
                    Ok::<usize, String>(x)
                }
            },
            |m| m,
            || "aborted".to_string(),
            |_, _| {},
        );
        let mut pairs = seen.lock().unwrap().clone();
        pairs.sort_unstable();
        assert_eq!(pairs, (0..10).map(|i| (i, 10 + i)).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_stops_feeding_but_drains_fed_items() {
        // Raise the shutdown flag from the first processed item: the feeder
        // stops early, yet every item it DID feed is processed (not
        // aborted) and emitted in order with no gaps.
        let flag = Arc::new(AtomicBool::new(false));
        let worker_flag = Arc::clone(&flag);
        let mut results = Vec::new();
        run_ordered(
            0..1_000_000,
            PoolConfig {
                jobs: 2,
                queue_depth: 4,
                fail_fast: false,
                shutdown: Some(Arc::clone(&flag)),
                chunk: 0,
            },
            move |_w| {
                let flag = Arc::clone(&worker_flag);
                move |_i, x: usize| {
                    flag.store(true, Ordering::Relaxed);
                    Ok::<usize, String>(x)
                }
            },
            |m| m,
            || "aborted".to_string(),
            |idx, r| results.push((idx, r)),
        );
        assert!(
            results.len() < 1_000_000,
            "shutdown flag did not stop the feeder"
        );
        for (i, (idx, r)) in results.iter().enumerate() {
            assert_eq!(*idx, i, "gap in emitted indices");
            assert_eq!(r, &Ok(i), "fed item was aborted instead of drained");
        }
    }
}
