//! Interner and tagger hot loops: the per-token costs that the allocation
//! overhaul moved off the parse path (lowercase `String`s → `Sym` ids).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SENTENCE: &str =
    "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.";

fn bench_interner(c: &mut Criterion) {
    let mut g = c.benchmark_group("interner");
    // Pre-seed so every iteration measures the read-path (shared-lock hash
    // probe), which is what the pipeline sees after the first sentence.
    for w in ["pressure", "pulse", "temperature", "weight"] {
        cmr_text::intern(w);
    }
    g.bench_function("intern_hit", |b| {
        b.iter(|| black_box(cmr_text::intern(black_box("pressure"))))
    });
    g.bench_function("intern_lower_already_lowercase", |b| {
        b.iter(|| black_box(cmr_text::intern_lower(black_box("pulse"))))
    });
    g.bench_function("intern_lower_mixed_case", |b| {
        b.iter(|| black_box(cmr_text::intern_lower(black_box("Temperature"))))
    });
    g.bench_function("sym_resolve", |b| {
        let sym = cmr_text::intern("weight");
        b.iter(|| black_box(black_box(sym).as_str()))
    });
    g.finish();
}

fn bench_tagger(c: &mut Criterion) {
    let mut g = c.benchmark_group("tagger");
    let tagger = cmr_postag::PosTagger::new();
    let tokens = cmr_text::tokenize(SENTENCE);
    g.bench_function("tag_18_words_borrowed", |b| {
        b.iter(|| black_box(tagger.tag(black_box(&tokens))))
    });
    g.bench_function("tag_18_words_owned", |b| {
        b.iter(|| black_box(tagger.tag_owned(black_box(tokens.clone()))))
    });
    g.bench_function("tokenize_and_tag", |b| {
        b.iter(|| black_box(tagger.tag_owned(cmr_text::tokenize(black_box(SENTENCE)))))
    });
    g.finish();
}

criterion_group!(benches, bench_interner, bench_tagger);
criterion_main!(benches);
