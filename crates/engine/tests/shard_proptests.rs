//! Property tests for corpus-scale sharding: for any corpus, any shard
//! count, and any crash point, the merged shard artifacts — output,
//! metrics totals, quarantine — must be identical to what one unsharded
//! run would have produced, and journal compaction must bound resume
//! replay to the post-snapshot remainder.

use cmr_engine::{
    merge_outputs, merge_quarantine, read_journal, verify_output_prefix, Engine, EngineConfig,
    EngineError, EngineMetrics, JournalEntry, JournalWriter, OutputFingerprint, QuarantineEntry,
    RunManifest, ShardSpec, Snapshot,
};
use proptest::prelude::*;
use std::io::Cursor;

fn engine(jobs: usize) -> Engine {
    Engine::new(
        EngineConfig {
            jobs,
            ..EngineConfig::default()
        },
        cmr_core::Schema::paper(),
        cmr_ontology::Ontology::full(),
    )
}

fn corpus_texts(n: usize, seed: u64) -> Vec<String> {
    cmr_corpus::CorpusBuilder::new()
        .records(n)
        .seed(seed)
        .build()
        .records
        .into_iter()
        .map(|r| r.text)
        .collect()
}

/// The output lines an extraction run emits, one JSON line per record
/// (errors serialize in-band, exactly as the CLI sink writes them).
fn output_lines(items: &[Result<cmr_core::ExtractedRecord, EngineError>]) -> Vec<String> {
    items
        .iter()
        .map(|o| serde_json::to_string(o).expect("serialize outcome"))
        .collect()
}

/// The slice of `texts` that shard `index` of `total` owns.
fn shard_slice(texts: &[String], index: usize, total: usize) -> Vec<String> {
    let spec = ShardSpec { index, total };
    texts
        .iter()
        .enumerate()
        .filter(|(g, _)| spec.owns(*g))
        .map(|(_, t)| t.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any corpus and any shard count, running every shard
    /// independently and merging the outputs reproduces the unsharded
    /// run byte-for-byte.
    #[test]
    fn merged_output_matches_unsharded_for_any_shard_count(
        n in 1usize..12,
        seed in 0u64..300,
        shards in 1usize..=5,
    ) {
        let texts = corpus_texts(n, seed);
        let unsharded = output_lines(&engine(2).extract_batch(&texts).items);
        let want: String = unsharded.iter().map(|l| format!("{l}\n")).collect();

        let outputs: Vec<String> = (0..shards)
            .map(|s| {
                let slice = shard_slice(&texts, s, shards);
                output_lines(&engine(2).extract_batch(&slice).items)
                    .iter()
                    .map(|l| format!("{l}\n"))
                    .collect()
            })
            .collect();
        let mut readers: Vec<Cursor<&[u8]>> =
            outputs.iter().map(|o| Cursor::new(o.as_bytes())).collect();
        let mut merged = Vec::new();
        let lines = merge_outputs(&mut readers, &mut merged).expect("merge");
        prop_assert_eq!(lines as usize, n);
        prop_assert_eq!(merged, want.into_bytes());
    }

    /// Kill one shard at any record, resume it from its journal, merge:
    /// still identical to the unsharded run.
    #[test]
    fn killed_and_resumed_shard_merges_identically(
        n in 2usize..10,
        seed in 0u64..300,
        shards in 2usize..=4,
        victim in 0usize..4,
        kill_pct in 0usize..=100,
    ) {
        let texts = corpus_texts(n, seed);
        let victim = victim % shards;
        let unsharded = output_lines(&engine(2).extract_batch(&texts).items);
        let want: String = unsharded.iter().map(|l| format!("{l}\n")).collect();

        let cfg = EngineConfig { jobs: 2, ..EngineConfig::default() };
        let path = std::env::temp_dir().join(format!(
            "cmr-proptest-shard-{}-{n}-{seed}-{shards}-{victim}-{kill_pct}.journal",
            std::process::id()
        ));
        let outputs: Vec<String> = (0..shards)
            .map(|s| {
                let slice = shard_slice(&texts, s, shards);
                let lines = if s == victim {
                    // Crash after journaling the first k outcomes, then
                    // resume: replay the journal and extract the rest
                    // with a fresh engine, as `--resume` does.
                    let full = engine(2).extract_batch(&slice);
                    let k = slice.len() * kill_pct / 100;
                    let manifest = RunManifest::for_run(&cfg, &slice);
                    let mut journal =
                        JournalWriter::create(&path, &manifest).expect("create journal");
                    for (index, output) in full.items.iter().take(k).enumerate() {
                        journal
                            .append(&JournalEntry { index, output: output.clone() })
                            .expect("append");
                    }
                    drop(journal);
                    let read = read_journal(&path).expect("read back");
                    prop_assert_eq!(read.entries.len(), k);
                    let mut merged: Vec<_> =
                        read.entries.into_iter().map(|e| e.output).collect();
                    merged.extend(engine(2).extract_batch(&slice[k..]).items);
                    let _ = std::fs::remove_file(&path);
                    output_lines(&merged)
                } else {
                    output_lines(&engine(2).extract_batch(&slice).items)
                };
                Ok(lines.iter().map(|l| format!("{l}\n")).collect::<String>())
            })
            .collect::<Result<_, TestCaseError>>()?;
        let mut readers: Vec<Cursor<&[u8]>> =
            outputs.iter().map(|o| Cursor::new(o.as_bytes())).collect();
        let mut merged = Vec::new();
        merge_outputs(&mut readers, &mut merged).expect("merge");
        prop_assert_eq!(merged, want.into_bytes());
    }

    /// Summing per-shard metrics reproduces the unsharded run's
    /// deterministic counters exactly: record/error counts, method
    /// usage, degradation accounting, retries, quarantined records, and
    /// total parse-cache traffic. (Timings and the hit/miss *split* are
    /// scheduling-dependent and excluded by design.)
    #[test]
    fn merged_metrics_match_unsharded_totals(
        n in 1usize..10,
        seed in 0u64..300,
        shards in 1usize..=4,
    ) {
        let texts = corpus_texts(n, seed);
        let unsharded = engine(2).extract_batch(&texts).metrics;

        let mut merged = EngineMetrics::default();
        for s in 0..shards {
            let slice = shard_slice(&texts, s, shards);
            merged.merge(&engine(2).extract_batch(&slice).metrics);
        }
        prop_assert_eq!(merged.records, unsharded.records);
        prop_assert_eq!(merged.errors.total(), unsharded.errors.total());
        prop_assert_eq!(merged.methods.link_grammar, unsharded.methods.link_grammar);
        prop_assert_eq!(merged.methods.pattern, unsharded.methods.pattern);
        prop_assert_eq!(merged.methods.year_old, unsharded.methods.year_old);
        prop_assert_eq!(merged.methods.proximity, unsharded.methods.proximity);
        prop_assert_eq!(merged.methods.salvage, unsharded.methods.salvage);
        prop_assert_eq!(
            merged.degradation.link_grammar_fields,
            unsharded.degradation.link_grammar_fields
        );
        prop_assert_eq!(
            merged.degradation.degraded_records,
            unsharded.degradation.degraded_records
        );
        prop_assert_eq!(merged.retries, unsharded.retries);
        prop_assert_eq!(merged.quarantined, unsharded.quarantined);
        prop_assert_eq!(
            merged.parse_cache.hits + merged.parse_cache.misses,
            unsharded.parse_cache.hits + unsharded.parse_cache.misses
        );
    }

    /// Quarantine merging is a set union: whatever duplicate global
    /// indices kill-and-resume produced, the merged file is strictly
    /// ordered with exactly one entry per index.
    #[test]
    fn quarantine_merge_is_sorted_and_unique(
        indices in proptest::collection::vec(0usize..40, 0..25),
    ) {
        let entries: Vec<QuarantineEntry> = indices
            .iter()
            .map(|&index| QuarantineEntry {
                index,
                text: format!("note {index}"),
                error: EngineError::Aborted,
                attempts: Vec::new(),
            })
            .collect();
        let merged = merge_quarantine(entries);
        let got: Vec<usize> = merged.iter().map(|e| e.index).collect();
        let mut want: Vec<usize> = indices;
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(got, want);
    }

    /// Compaction at any interval and any kill point: the healed journal
    /// holds at most `interval` entry lines past the snapshot, the
    /// snapshot fingerprint verifies the durable output prefix, and the
    /// resumed run is identical to the uninterrupted one.
    #[test]
    fn compaction_bounds_resume_replay_to_the_remainder(
        n in 1usize..12,
        seed in 0u64..300,
        interval in 1usize..=5,
        kill_pct in 0usize..=100,
    ) {
        let texts = corpus_texts(n, seed);
        let cfg = EngineConfig { jobs: 2, ..EngineConfig::default() };
        let full = engine(2).extract_batch(&texts);
        let lines = output_lines(&full.items);
        let k = n * kill_pct / 100;

        let path = std::env::temp_dir().join(format!(
            "cmr-proptest-compact-{}-{n}-{seed}-{interval}-{kill_pct}.journal",
            std::process::id()
        ));
        let manifest = RunManifest::for_run(&cfg, &texts);
        {
            let mut journal = JournalWriter::create(&path, &manifest).expect("create");
            let mut fingerprint = OutputFingerprint::new();
            for (index, output) in full.items.iter().take(k).enumerate() {
                journal
                    .append(&JournalEntry { index, output: output.clone() })
                    .expect("append");
                fingerprint.add_line(&lines[index]);
                if (index + 1) % interval == 0 {
                    let snapshot = Snapshot {
                        completed: index + 1,
                        output_fingerprint: fingerprint.as_hex(),
                    };
                    journal = JournalWriter::compact(&path, &manifest, &snapshot)
                        .expect("compact");
                }
            }
        }

        // O(remainder): line count is manifest (+ snapshot) + at most
        // `interval - 1` surviving entry lines — never O(k).
        let raw_lines = std::fs::read_to_string(&path).expect("read raw").lines().count();
        prop_assert!(
            raw_lines <= interval + 1,
            "journal holds {} lines at kill point {} (interval {})",
            raw_lines, k, interval
        );
        let read = read_journal(&path).expect("read back");
        prop_assert_eq!(read.completed(), k);
        let snapshot_completed = (k / interval) * interval;
        prop_assert_eq!(read.snapshot_completed(),
            if snapshot_completed > 0 { snapshot_completed } else { 0 });
        prop_assert_eq!(read.entries.len(), k - read.snapshot_completed());

        // The snapshot fingerprint proves the durable output prefix.
        if let Some(snapshot) = &read.snapshot {
            let durable: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let (offset, fp) =
                verify_output_prefix(&mut Cursor::new(durable.as_bytes()), snapshot)
                    .expect("prefix verifies");
            let want_offset: usize = lines[..snapshot.completed]
                .iter()
                .map(|l| l.len() + 1)
                .sum();
            prop_assert_eq!(offset as usize, want_offset);
            prop_assert_eq!(fp.as_hex(), snapshot.output_fingerprint.clone());
        }

        // Resume: snapshot prefix (from the durable output) + replayed
        // entries + freshly extracted tail == the uninterrupted run.
        let mut resumed: Vec<String> = lines[..read.snapshot_completed()].to_vec();
        resumed.extend(read.entries.iter().map(|e| {
            serde_json::to_string(&e.output).expect("serialize entry")
        }));
        resumed.extend(output_lines(&engine(2).extract_batch(&texts[k..]).items));
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(resumed, lines);
    }
}
