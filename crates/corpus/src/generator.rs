//! The record generator.

use crate::gold::{AlcoholUse, BodyShape, GoldRecord, SmokingStatus};
use crate::templates as tpl;
use cmr_ontology::{SemanticType, CONCEPTS};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Builder for a synthetic corpus.
///
/// Defaults reproduce the paper's setting: 50 records, one consistent
/// dictation style (`style_variation = 0`), the paper's smoking-class
/// distribution, and a realistic rate of synonym use in dictated surgical
/// history (the cause of the paper's predefined-surgical recall hole).
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    n: usize,
    seed: u64,
    style_variation: f64,
    surgical_synonym_rate: f64,
    medical_synonym_rate: f64,
}

impl Default for CorpusBuilder {
    fn default() -> Self {
        CorpusBuilder {
            n: 50,
            seed: 2005,
            style_variation: 0.0,
            surgical_synonym_rate: 0.8,
            medical_synonym_rate: 0.15,
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The records with gold labels.
    pub records: Vec<GoldRecord>,
}

impl CorpusBuilder {
    /// Default builder (paper setting).
    pub fn new() -> CorpusBuilder {
        CorpusBuilder::default()
    }

    /// Sets the number of records.
    pub fn records(mut self, n: usize) -> CorpusBuilder {
        self.n = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> CorpusBuilder {
        self.seed = seed;
        self
    }

    /// Sets the style-variation knob in `[0, 1]`: 0 = the single consistent
    /// house style of the paper's one dictating clinician; 1 = every
    /// sentence drawn uniformly from its template pool.
    pub fn style_variation(mut self, v: f64) -> CorpusBuilder {
        self.style_variation = v.clamp(0.0, 1.0);
        self
    }

    /// Sets how often surgical history is dictated with a synonym instead
    /// of the concept's preferred name.
    pub fn surgical_synonym_rate(mut self, r: f64) -> CorpusBuilder {
        self.surgical_synonym_rate = r.clamp(0.0, 1.0);
        self
    }

    /// Sets how often medical history uses a synonym.
    pub fn medical_synonym_rate(mut self, r: f64) -> CorpusBuilder {
        self.medical_synonym_rate = r.clamp(0.0, 1.0);
        self
    }

    /// Generates the corpus, materialized. For corpora too large to hold
    /// in memory, use [`CorpusBuilder::plan`] and emit record by record.
    pub fn build(&self) -> Corpus {
        let plan = self.plan();
        let records = (0..self.n).map(|i| plan.record(i)).collect();
        Corpus { records }
    }

    /// Precomputes the generation plan: the per-record class assignments
    /// (a few bytes per record) without any note text. [`CorpusPlan::record`]
    /// then generates any record by index in O(1) extra memory, so a
    /// million-note corpus streams to disk without ever existing as a
    /// `Vec`, and a shard can generate just the indices it owns —
    /// `plan.record(i)` is byte-identical to `build().records[i]`.
    pub fn plan(&self) -> CorpusPlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let smoking = smoking_distribution(self.n, &mut rng);
        let alcohol = alcohol_distribution(self.n, &mut rng);
        CorpusPlan {
            builder: self.clone(),
            smoking,
            alcohol,
        }
    }

    /// A per-record, per-purpose RNG. Isolating streams keeps each section's
    /// draws stable when unrelated fields are added to the generator.
    fn stream(&self, patient_id: usize, purpose: u64) -> StdRng {
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((patient_id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(purpose.wrapping_mul(0x2545_F491_4F6C_DD1D));
        StdRng::seed_from_u64(mix)
    }

    fn pick<'a>(&self, pool: &[&'a str], rng: &mut StdRng) -> &'a str {
        if self.style_variation > 0.0 && rng.random_bool(self.style_variation) {
            pool.choose(rng).expect("non-empty template pool")
        } else {
            pool[0]
        }
    }

    fn generate_one(
        &self,
        patient_id: usize,
        smoking: Option<SmokingStatus>,
        alcohol: Option<AlcoholUse>,
    ) -> GoldRecord {
        // Independent streams per concern (see `stream`).
        let mut numeric_rng = self.stream(patient_id, 1);
        let mut history_rng = self.stream(patient_id, 2);
        let mut social_rng = self.stream(patient_id, 3);
        let mut misc_rng = self.stream(patient_id, 4);
        let rng = &mut numeric_rng;
        // ---- numeric ground truth ---------------------------------------
        let age = rng.random_range(32..=78);
        let blood_pressure = (rng.random_range(104..=178), rng.random_range(58..=98));
        let pulse = rng.random_range(58..=108);
        let temperature = (rng.random_range(970..=999) as f64) / 10.0;
        let weight = rng.random_range(112..=248);
        let menarche_age = rng.random_range(9..=16);
        let gravida = rng.random_range(1..=6);
        let para = rng.random_range(1..=gravida);
        let first_birth_age = rng.random_range(16..=34);

        // ---- medical & surgical history ---------------------------------
        let diseases: Vec<&cmr_ontology::Concept> = CONCEPTS
            .iter()
            .filter(|c| c.semtype == SemanticType::Disease && c.preferred != "breast cancer")
            .collect();
        let procedures: Vec<&cmr_ontology::Concept> = CONCEPTS
            .iter()
            .filter(|c| c.semtype == SemanticType::Procedure)
            .collect();
        let hrng = &mut history_rng;
        let n_dis = hrng.random_range(2..=6);
        let n_proc = hrng.random_range(0..=3);
        // Weighted sampling without replacement (Efraimidis–Spirakis):
        // common diagnoses dominate real problem lists; the rare tail is
        // what exposes vocabulary incompleteness.
        let mut keyed: Vec<(f64, &cmr_ontology::Concept)> = diseases
            .iter()
            .map(|c| {
                let w = if c.rarity == cmr_ontology::Rarity::Common {
                    8.0
                } else {
                    1.0
                };
                (hrng.random::<f64>().powf(1.0 / w), *c)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut picked_dis: Vec<&cmr_ontology::Concept> =
            keyed.into_iter().take(n_dis).map(|(_, c)| c).collect();
        // Planted epidemiology: current smokers carry COPD far more often.
        // This is the "important factor" the knowledge layer (cmr-knowledge)
        // should pinpoint from extracted data alone.
        if smoking == Some(SmokingStatus::Current)
            && hrng.random_bool(0.5)
            && !picked_dis.iter().any(|c| c.cui == "CMR0013")
        {
            if let Some(copd) = diseases.iter().find(|c| c.cui == "CMR0013") {
                picked_dis.push(copd);
            }
        }
        let picked_proc: Vec<&cmr_ontology::Concept> =
            procedures.sample(hrng, n_proc).copied().collect();

        let surface = |c: &cmr_ontology::Concept, rate: f64, rng: &mut StdRng| -> String {
            if !c.synonyms.is_empty() && rng.random_bool(rate) {
                c.synonyms.choose(rng).expect("non-empty").to_string()
            } else {
                c.preferred.to_string()
            }
        };
        let dis_surfaces: Vec<String> = picked_dis
            .iter()
            .map(|c| {
                // COPD is almost always dictated by its abbreviation or as
                // emphysema, not the four-word formal name.
                let rate = if c.cui == "CMR0013" {
                    0.6
                } else {
                    self.medical_synonym_rate
                };
                surface(c, rate, hrng)
            })
            .collect();
        // The predefined study procedures are the ones clinicians routinely
        // shorthand ("lap chole", "gallbladder removal"); long-tail
        // procedures are mostly dictated by their formal names.
        let proc_surfaces: Vec<String> = picked_proc
            .iter()
            .map(|c| {
                let rate = if cmr_ontology::PREDEFINED_SURGICAL_CUIS.contains(&c.cui) {
                    self.surgical_synonym_rate
                } else {
                    self.medical_synonym_rate
                };
                surface(c, rate, hrng)
            })
            .collect();
        let medical_history: Vec<String> =
            picked_dis.iter().map(|c| c.preferred.to_string()).collect();
        let surgical_history: Vec<String> = picked_proc
            .iter()
            .map(|c| c.preferred.to_string())
            .collect();

        // ---- medications -------------------------------------------------
        let drugs: Vec<&cmr_ontology::Concept> = CONCEPTS
            .iter()
            .filter(|c| c.semtype == SemanticType::Drug && c.preferred != "penicillin")
            .collect();
        let n_drugs = hrng.random_range(2..=8);
        let drug_names: Vec<String> = drugs
            .sample(hrng, n_drugs)
            .map(|c| brand_case(c.preferred))
            .collect();

        // ---- shape -------------------------------------------------------
        let mrng = &mut misc_rng;
        let shape_value = match mrng.random_range(0..10) {
            0 => BodyShape::Thin,
            1..=4 => BodyShape::Normal,
            5..=8 => BodyShape::Overweight,
            _ => BodyShape::Obese,
        };
        let shape = Some(shape_value);

        // ---- assemble the note --------------------------------------------
        let mut out = String::new();
        let mut section = |name: &str, body: String| {
            out.push_str(name);
            out.push_str(":  ");
            out.push_str(&body);
            out.push('\n');
            out.push('\n');
        };

        section("Patient", patient_id.to_string());
        section(
            "Chief Complaint",
            self.pick(tpl::CHIEF_COMPLAINTS, mrng).to_string(),
        );
        let complaint = tpl::CHIEF_COMPLAINTS[0].to_lowercase();
        section(
            "History of Present Illness",
            self.pick(tpl::HPI, mrng)
                .replace("{id}", &patient_id.to_string())
                .replace("{age}", &age.to_string())
                .replace("{complaint}", &complaint),
        );
        section(
            "GYN History",
            self.pick(tpl::GYN, mrng)
                .replace("{menarche}", &menarche_age.to_string())
                .replace("{gravida}", &gravida.to_string())
                .replace("{para}", &para.to_string())
                .replace("{flb}", &first_birth_age.to_string()),
        );
        section(
            "Past Medical History",
            self.pick(tpl::PMH, mrng)
                .replace("{list}", &tpl::join_list(&dis_surfaces)),
        );
        if proc_surfaces.is_empty() {
            section("Past Surgical History", "None.".to_string());
        } else {
            section(
                "Past Surgical History",
                self.pick(tpl::PSH, mrng)
                    .replace("{list}", &tpl::join_list(&proc_surfaces)),
            );
        }
        // Binary categorical ground truth (the paper's schema has six
        // binary attributes; these sections carry three of them).
        let family_history_breast_cancer = mrng.random_bool(0.35);
        let drug_use = mrng.random_bool(0.2);
        let allergies_present = mrng.random_bool(0.7);

        section("Medications", format!("{}.", tpl::join_list(&drug_names)));
        section(
            "Allergies",
            (*tpl::allergy_templates(allergies_present)
                .choose(mrng)
                .expect("non-empty"))
            .to_string(),
        );

        // Social history: smoking, alcohol, drugs. Unlike the measurement
        // sections, social history phrasing varies naturally even within a
        // single clinician's dictation (the paper's own examples range over
        // "She quit smoking five years ago" / "None" / "She has never
        // smoked"), so these templates are drawn uniformly regardless of
        // `style_variation`. This is what keeps the smoking classifier's
        // task non-trivial while the numeric attributes stay at 100%.
        let mut social = String::new();
        if let Some(s) = smoking {
            let t = pick_social(
                tpl::smoking_templates(s),
                &mut social_rng,
                self.style_variation,
            );
            let years = social_rng.random_range(3..=30);
            let ppd = social_rng.random_range(1..=2);
            social.push_str(
                &t.replace("{years}", &years.to_string())
                    .replace("{ppd}", &ppd.to_string()),
            );
            social.push(' ');
        }
        if let Some(a) = alcohol {
            let t = pick_social(
                tpl::alcohol_templates(a),
                &mut social_rng,
                self.style_variation,
            );
            let days = match a {
                AlcoholUse::UpTo2PerWeek => social_rng.random_range(1..=2),
                AlcoholUse::MoreThan2PerWeek => social_rng.random_range(3..=6),
                _ => 0,
            };
            social.push_str(&t.replace("{days}", &days.to_string()));
            social.push(' ');
        }
        social.push_str(
            tpl::drug_templates(drug_use)
                .choose(&mut social_rng)
                .expect("non-empty"),
        );
        section("Social History", social.trim_end().to_string());

        section(
            "Family History",
            (*tpl::family_templates(family_history_breast_cancer)
                .choose(mrng)
                .expect("non-empty"))
            .to_string(),
        );
        section("Review of Systems", self.pick(tpl::ROS, mrng).to_string());
        let shape_adj = shape_value.adjective();
        section(
            "Physical examination",
            article_fix(&self.pick(tpl::PHYSICAL, mrng).replace("{shape}", shape_adj)),
        );
        section(
            "Vitals",
            self.pick(tpl::VITALS, mrng)
                .replace(
                    "{bp}",
                    &format!("{}/{}", blood_pressure.0, blood_pressure.1),
                )
                .replace("{pulse}", &pulse.to_string())
                .replace("{temp}", &format!("{temperature:.1}"))
                .replace("{weight}", &weight.to_string()),
        );
        section("HEENT", tpl::HEENT.to_string());
        section("Neck", tpl::NECK.to_string());
        section("Chest", tpl::CHEST.to_string());
        section("Heart", tpl::HEART.to_string());
        section("Abdomen", tpl::ABDOMEN.to_string());
        section("Examination of Breasts", tpl::BREASTS.to_string());

        GoldRecord {
            patient_id,
            age,
            blood_pressure,
            pulse,
            temperature,
            weight,
            menarche_age,
            gravida,
            para,
            first_birth_age,
            medical_history,
            surgical_history,
            smoking,
            alcohol,
            shape,
            family_history_breast_cancer,
            drug_use,
            allergies_present,
            text: out,
        }
    }
}

/// A corpus generation plan: class-distribution assignments for every
/// record, but no text. Obtained from [`CorpusBuilder::plan`]; records
/// are generated on demand by 0-based index, each from its own seeded
/// RNG streams, so generation order (or skipping indices entirely, as a
/// shard does) never changes any record's bytes.
#[derive(Debug, Clone)]
pub struct CorpusPlan {
    builder: CorpusBuilder,
    smoking: Vec<Option<SmokingStatus>>,
    alcohol: Vec<Option<AlcoholUse>>,
}

impl CorpusPlan {
    /// Number of records in the planned corpus.
    pub fn len(&self) -> usize {
        self.smoking.len()
    }

    /// Whether the planned corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.smoking.is_empty()
    }

    /// Generates record `index` (0-based; panics if out of range).
    /// Byte-identical to `build().records[index]`.
    pub fn record(&self, index: usize) -> GoldRecord {
        self.builder
            .generate_one(index + 1, self.smoking[index], self.alcohol[index])
    }
}

/// Draws a social-history template: the house phrasing (index 0) is the
/// clinician's habit and dominates, with the rest of the pool supplying the
/// natural variation the paper's own examples show. Unlike the measurement
/// sections, some variation exists even at `style_variation = 0`; raising
/// the knob flattens the draw toward uniform, which is what degrades the
/// categorical classifier in the style sweep (A3).
fn pick_social<'a>(pool: &[&'a str], rng: &mut StdRng, style_variation: f64) -> &'a str {
    let house_weight = 0.5 * (1.0 - style_variation);
    if house_weight > 0.0 && rng.random_bool(house_weight) {
        pool[0]
    } else {
        pool.choose(rng).expect("non-empty template pool")
    }
}

/// The paper's smoking distribution scaled to `n` records: 28/50 never,
/// 12/50 current, 5/50 former, 5/50 undocumented (exact at n = 50).
fn smoking_distribution(n: usize, rng: &mut StdRng) -> Vec<Option<SmokingStatus>> {
    let mut plan = Vec::with_capacity(n);
    let count = |share: usize| (share * n) / 50;
    plan.extend(std::iter::repeat_n(Some(SmokingStatus::Current), count(12)));
    plan.extend(std::iter::repeat_n(Some(SmokingStatus::Former), count(5)));
    plan.extend(std::iter::repeat_n(None, count(5)));
    while plan.len() < n {
        plan.push(Some(SmokingStatus::Never));
    }
    plan.shuffle(rng);
    plan
}

/// Alcohol distribution: roughly 40% social, 30% never, 16% 1–2/week,
/// 10% >2/week, 4% undocumented.
fn alcohol_distribution(n: usize, rng: &mut StdRng) -> Vec<Option<AlcoholUse>> {
    let mut plan = Vec::with_capacity(n);
    let count = |share: usize| (share * n) / 50;
    plan.extend(std::iter::repeat_n(Some(AlcoholUse::Never), count(15)));
    plan.extend(std::iter::repeat_n(
        Some(AlcoholUse::UpTo2PerWeek),
        count(8),
    ));
    plan.extend(std::iter::repeat_n(
        Some(AlcoholUse::MoreThan2PerWeek),
        count(5),
    ));
    plan.extend(std::iter::repeat_n(None, count(2)));
    while plan.len() < n {
        plan.push(Some(AlcoholUse::Social));
    }
    plan.shuffle(rng);
    plan
}

/// Capitalizes brand-name drugs the way dictation transcribes them.
fn brand_case(name: &str) -> String {
    const BRANDS: &[&str] = &[
        "lipitor",
        "cardizem",
        "wellbutrin",
        "zoloft",
        "protonix",
        "glucophage",
        "os-cal",
        "combivent",
        "flovent",
        "synthroid",
        "coumadin",
        "motrin",
        "advil",
    ];
    if BRANDS.contains(&name) {
        let mut c = name.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        }
    } else {
        name.to_string()
    }
}

/// Fixes "an thin" → "a thin" after template substitution.
fn article_fix(s: &str) -> String {
    let mut out = s
        .replace("an thin", "a thin")
        .replace("an well-nourished", "a well-nourished");
    if let Some(rest) = out.strip_prefix("an thin") {
        out = format!("a thin{rest}");
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cmr_text::Record;

    #[test]
    fn default_corpus_is_paper_shaped() {
        let corpus = CorpusBuilder::new().build();
        assert_eq!(corpus.records.len(), 50);
        let never = corpus
            .records
            .iter()
            .filter(|r| r.smoking == Some(SmokingStatus::Never))
            .count();
        let former = corpus
            .records
            .iter()
            .filter(|r| r.smoking == Some(SmokingStatus::Former))
            .count();
        let current = corpus
            .records
            .iter()
            .filter(|r| r.smoking == Some(SmokingStatus::Current))
            .count();
        let none = corpus
            .records
            .iter()
            .filter(|r| r.smoking.is_none())
            .count();
        assert_eq!((never, former, current, none), (28, 5, 12, 5));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CorpusBuilder::new().seed(7).build();
        let b = CorpusBuilder::new().seed(7).build();
        assert_eq!(a.records[0].text, b.records[0].text);
        let c = CorpusBuilder::new().seed(8).build();
        assert_ne!(a.records[0].text, c.records[0].text);
    }

    #[test]
    fn records_parse_into_sections() {
        let corpus = CorpusBuilder::new().records(5).build();
        for r in &corpus.records {
            let rec = Record::parse(&r.text);
            assert_eq!(
                rec.patient_id.as_deref(),
                Some(r.patient_id.to_string().as_str())
            );
            for name in [
                "Chief Complaint",
                "History of Present Illness",
                "GYN History",
                "Past Medical History",
                "Past Surgical History",
                "Social History",
                "Vitals",
            ] {
                assert!(rec.section(name).is_some(), "missing section {name}");
            }
        }
    }

    #[test]
    fn vitals_contain_gold_numbers() {
        let corpus = CorpusBuilder::new().records(10).build();
        for r in &corpus.records {
            let rec = Record::parse(&r.text);
            let vitals = &rec.section("Vitals").unwrap().body;
            assert!(vitals.contains(&format!("{}/{}", r.blood_pressure.0, r.blood_pressure.1)));
            assert!(vitals.contains(&r.pulse.to_string()));
            assert!(vitals.contains(&r.weight.to_string()));
            assert!(vitals.contains(&format!("{:.1}", r.temperature)));
        }
    }

    #[test]
    fn gyn_contains_gold_numbers() {
        let corpus = CorpusBuilder::new().records(10).build();
        for r in &corpus.records {
            let rec = Record::parse(&r.text);
            let gyn = &rec.section("GYN History").unwrap().body;
            assert!(gyn.contains(&format!("age {}", r.menarche_age)), "{gyn}");
            assert!(gyn.contains(&r.gravida.to_string()));
        }
    }

    #[test]
    fn style_zero_uses_house_templates() {
        let corpus = CorpusBuilder::new().records(8).style_variation(0.0).build();
        for r in &corpus.records {
            let rec = Record::parse(&r.text);
            let vitals = &rec.section("Vitals").unwrap().body;
            assert!(vitals.starts_with("Blood pressure is"), "{vitals}");
        }
    }

    #[test]
    fn style_one_varies_templates() {
        let corpus = CorpusBuilder::new()
            .records(30)
            .style_variation(1.0)
            .build();
        let starts: std::collections::HashSet<String> = corpus
            .records
            .iter()
            .map(|r| {
                Record::parse(&r.text)
                    .section("Vitals")
                    .unwrap()
                    .body
                    .split_whitespace()
                    .take(3)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert!(starts.len() > 1, "variation should produce multiple styles");
    }

    #[test]
    fn gold_history_uses_preferred_names() {
        let corpus = CorpusBuilder::new().records(20).build();
        let onto = cmr_ontology::Ontology::full();
        for r in &corpus.records {
            for term in r.medical_history.iter().chain(&r.surgical_history) {
                let c = onto
                    .lookup(term)
                    .unwrap_or_else(|| panic!("gold term {term} unknown"));
                assert_eq!(c.preferred, term);
            }
        }
    }

    #[test]
    fn para_never_exceeds_gravida() {
        let corpus = CorpusBuilder::new().records(30).build();
        for r in &corpus.records {
            assert!(r.para <= r.gravida);
            assert!(r.para >= 1);
        }
    }

    #[test]
    fn plan_generates_records_identical_to_build_in_any_order() {
        let builder = CorpusBuilder::new().records(12).style_variation(0.6);
        let built = builder.build();
        let plan = builder.plan();
        assert_eq!(plan.len(), 12);
        // Walk indices out of order, as a shard would: record bytes and
        // gold labels must not depend on generation order.
        for i in [7usize, 0, 11, 3, 7] {
            let r = plan.record(i);
            assert_eq!(r.text, built.records[i].text, "record {i}");
            assert_eq!(r.smoking, built.records[i].smoking);
            assert_eq!(r.patient_id, i + 1);
        }
    }

    #[test]
    fn scaled_distributions() {
        let corpus = CorpusBuilder::new().records(100).build();
        let former = corpus
            .records
            .iter()
            .filter(|r| r.smoking == Some(SmokingStatus::Former))
            .count();
        assert_eq!(former, 10, "5/50 scales to 10/100");
    }
}
