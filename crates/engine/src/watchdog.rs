//! A stuck-worker watchdog.
//!
//! The per-record budget ([`cmr_core::ExtractBudget`]) is checked *between*
//! sentences, so one pathological sentence can pin a worker inside the
//! O(n³) region search long past its deadline. The watchdog closes that
//! gap: a plain monitor thread scans per-worker start times every tick and
//! raises that worker's cancellation flag (shared with its link parser, see
//! `LinkParser::set_cancel_flag`) once the in-flight record exceeds the
//! deadline. The parser polls the flag inside its search loop, abandons
//! the parse, and control returns to the worker within one fuel window —
//! cooperative cancellation, no thread is ever killed.
//!
//! Classification happens at [`Watchdog::end`]: it reports whether the
//! record was cancelled, which the engine maps to `EngineError::Timeout`
//! (distinct from a plain `Budget` trip that the record hit on its own).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sentinel start time meaning "no record in flight on this worker".
const IDLE: u64 = u64::MAX;

/// One worker's monitored state.
#[derive(Debug)]
struct Slot {
    /// Nanoseconds since the watchdog epoch at which the current record
    /// started, or [`IDLE`].
    started: AtomicU64,
    /// The cancellation flag shared with this worker's link parser.
    cancel: Arc<AtomicBool>,
}

/// Deadline monitor over the pool's workers. Created per engine run when
/// `max_record_millis` is set; workers bracket each record with
/// [`Watchdog::begin`]/[`Watchdog::end`].
#[derive(Debug)]
pub(crate) struct Watchdog {
    epoch: Instant,
    deadline: Duration,
    slots: Vec<Slot>,
    stop: AtomicBool,
}

impl Watchdog {
    pub(crate) fn new(jobs: usize, deadline_millis: u64) -> Arc<Watchdog> {
        Arc::new(Watchdog {
            epoch: Instant::now(),
            deadline: Duration::from_millis(deadline_millis.max(1)),
            slots: (0..jobs)
                .map(|_| Slot {
                    started: AtomicU64::new(IDLE),
                    cancel: Arc::new(AtomicBool::new(false)),
                })
                .collect(),
            stop: AtomicBool::new(false),
        })
    }

    /// The cancellation flag monitored for `worker`; installed on that
    /// worker's pipeline so the parser's search loop can observe it.
    pub(crate) fn cancel_flag(&self, worker: usize) -> Arc<AtomicBool> {
        Arc::clone(&self.slots[worker].cancel)
    }

    /// Marks a record (or retry attempt) as started on `worker`. Clears
    /// the flag *before* publishing the start time so a stale cancellation
    /// can never leak into the new attempt.
    pub(crate) fn begin(&self, worker: usize) {
        let slot = &self.slots[worker];
        slot.cancel.store(false, Ordering::Relaxed);
        let nanos = self.epoch.elapsed().as_nanos() as u64;
        slot.started.store(nanos, Ordering::Release);
    }

    /// Marks the in-flight record finished and returns whether the
    /// watchdog cancelled it (the worker classifies the failure as a
    /// timeout if so). Consumes the flag, leaving the slot clean.
    pub(crate) fn end(&self, worker: usize) -> bool {
        let slot = &self.slots[worker];
        slot.started.store(IDLE, Ordering::Release);
        slot.cancel.swap(false, Ordering::Relaxed)
    }

    /// Spawns the monitor thread. Call [`Watchdog::stop`] then join the
    /// handle once the pool has drained.
    pub(crate) fn spawn(self: &Arc<Self>) -> JoinHandle<()> {
        let wd = Arc::clone(self);
        std::thread::spawn(move || wd.run())
    }

    /// Asks the monitor thread to exit at its next tick.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    fn run(&self) {
        // A quarter of the deadline bounds overshoot at ~25% while keeping
        // the scan cheap; the clamp keeps ticks sane for extreme deadlines.
        let tick = (self.deadline / 4).clamp(Duration::from_millis(5), Duration::from_millis(200));
        let deadline_nanos = self.deadline.as_nanos() as u64;
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(tick);
            let now = self.epoch.elapsed().as_nanos() as u64;
            for slot in &self.slots {
                let started = slot.started.load(Ordering::Acquire);
                if started == IDLE || now.saturating_sub(started) < deadline_nanos {
                    continue;
                }
                slot.cancel.store(true, Ordering::Relaxed);
                // The worker may have finished this record and begun a
                // younger one between the load and the store above. If the
                // slot moved, withdraw the cancellation — the younger
                // record has not exceeded anything yet. (If the worker
                // moves on *after* this re-check, `begin` itself clears
                // the flag, so the race is closed from both sides.)
                if slot.started.load(Ordering::Acquire) != started {
                    slot.cancel.store(false, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn overdue_record_gets_cancelled_and_end_reports_it() {
        let wd = Watchdog::new(2, 10);
        let handle = wd.spawn();
        let flag = wd.cancel_flag(0);
        wd.begin(0);
        // Wait for the monitor to notice the overdue record (deadline
        // 10ms, tick 5ms; allow generous slack for CI schedulers).
        let waited = Instant::now();
        while !flag.load(Ordering::Relaxed) && waited.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(flag.load(Ordering::Relaxed), "watchdog never fired");
        assert!(wd.end(0), "end() must report the cancellation");
        assert!(!flag.load(Ordering::Relaxed), "end() consumes the flag");
        // The idle slot (worker 1) is never cancelled.
        assert!(!wd.cancel_flag(1).load(Ordering::Relaxed));
        wd.stop();
        handle.join().unwrap();
    }

    #[test]
    fn fast_record_is_left_alone() {
        let wd = Watchdog::new(1, 5_000);
        let handle = wd.spawn();
        wd.begin(0);
        assert!(!wd.end(0), "record well under deadline was cancelled");
        wd.stop();
        handle.join().unwrap();
    }

    #[test]
    fn begin_clears_a_stale_flag() {
        let wd = Watchdog::new(1, 1_000);
        wd.cancel_flag(0).store(true, Ordering::Relaxed);
        wd.begin(0);
        assert!(!wd.cancel_flag(0).load(Ordering::Relaxed));
        assert!(!wd.end(0));
    }
}
