//! Sentence template pools.
//!
//! Index 0 of every pool is the "house style" — the single consistent
//! dictation pattern of the Appendix record (all 50 of the paper's notes
//! came from one clinician). The `style_variation` knob controls how often
//! generation leaves index 0, which is how the corpus stresses the paper's
//! §5/§6 conjecture that stylistic variance degrades extraction.

use crate::gold::{AlcoholUse, SmokingStatus};

/// Chief complaints.
pub const CHIEF_COMPLAINTS: &[&str] = &[
    "Abnormal mammogram.",
    "Palpable breast mass.",
    "Breast pain.",
    "Nipple discharge.",
    "Abnormal screening mammogram with calcifications.",
];

/// History-of-present-illness templates: `{id}`, `{age}`, `{complaint}`.
pub const HPI: &[&str] = &[
    "Ms. {id} is a {age}-year-old woman who underwent a screening mammogram, revealing a solid lesion as well as an abnormal calcification. She was referred for further management. Her breast history is negative for any previous biopsies or masses.",
    "Ms. {id} is a {age}-year-old woman who presents for evaluation of {complaint} She was referred for further management.",
    "The patient is a {age}-year-old woman referred after an abnormal mammogram. She denies any previous breast complaints.",
];

/// GYN history templates: `{menarche}`, `{gravida}`, `{para}`, `{flb}`.
pub const GYN: &[&str] = &[
    "Menarche at age {menarche}, gravida {gravida}, para {para}, last menstrual period about a year ago. First live birth at age {flb}.",
    "Menarche at age {menarche}. Gravida {gravida}, para {para}. First live birth at age {flb}.",
    "She reports menarche at age {menarche} with {gravida} pregnancies and {para} live births. Her first live birth was at age {flb}.",
];

/// Past-medical-history lead-ins: `{list}`.
pub const PMH: &[&str] = &[
    "Significant for {list}.",
    "{list}.",
    "Her past medical history is significant for {list}.",
    "Notable for {list}.",
];

/// Past-surgical-history lead-ins: `{list}`.
pub const PSH: &[&str] = &[
    "{list}.",
    "Significant for {list}.",
    "Status post {list}.",
    "She has undergone {list}.",
];

/// Vitals templates: `{bp}`, `{pulse}`, `{temp}`, `{weight}`.
pub const VITALS: &[&str] = &[
    "Blood pressure is {bp}, pulse of {pulse}, temperature of {temp}, and weight of {weight} pounds.",
    "Blood pressure {bp}, pulse {pulse}, temperature {temp}, weight {weight}.",
    "Blood pressure of {bp} with a pulse of {pulse}. Temperature is {temp} and weight is {weight} pounds.",
];

/// Smoking sentences per class: `{years}` years since quitting / of smoking,
/// `{ppd}` packs per day.
pub fn smoking_templates(status: SmokingStatus) -> &'static [&'static str] {
    match status {
        SmokingStatus::Never => &[
            "She has never smoked.",
            "None.",
            "She denies any history of smoking.",
            "No tobacco use.",
            "She denies smoking.",
            "She does not smoke.",
        ],
        SmokingStatus::Former => &[
            "She quit smoking {years} years ago.",
            "Former smoker, quit {years} years ago.",
            "She is a former smoker.",
            "She stopped smoking {years} years ago.",
            "She smoked in the past.",
            "History of smoking, quit {years} years ago.",
        ],
        SmokingStatus::Current => &[
            "She is currently a smoker.",
            "Smoking history, {years} years.",
            "She smokes {ppd} packs per day.",
            "She continues to smoke daily.",
            "She smokes cigarettes.",
            "Ongoing tobacco use.",
        ],
    }
}

/// Alcohol sentences per class: `{days}` days per week.
pub fn alcohol_templates(use_: AlcoholUse) -> &'static [&'static str] {
    match use_ {
        AlcoholUse::Never => &[
            "Alcohol use, negative.",
            "No alcohol.",
            "She does not drink.",
        ],
        AlcoholUse::Social => &[
            "Alcohol use, occasional.",
            "She drinks socially.",
            "Occasional alcohol use.",
        ],
        AlcoholUse::UpTo2PerWeek => &[
            "Alcohol use, {days} days per week.",
            "She drinks {days} days per week.",
        ],
        AlcoholUse::MoreThan2PerWeek => &[
            "Alcohol use, {days} days per week.",
            "She drinks about {days} days per week.",
        ],
    }
}

/// Physical examination templates: `{shape}`.
pub const PHYSICAL: &[&str] = &[
    "Reveals an {shape} woman in no apparent distress.",
    "Examination reveals an {shape} woman in no acute distress.",
    "An {shape} woman who appears her stated age.",
];

/// Review-of-systems boilerplate.
pub const ROS: &[&str] = &[
    "Significant for back pain and arthritis complaints. Remainder of the review of systems is negative.",
    "Negative except as noted above.",
    "Otherwise negative.",
];

/// Family-history sentences keyed by the binary gold label
/// "family history of breast cancer".
pub fn family_templates(positive: bool) -> &'static [&'static str] {
    if positive {
        &[
            "Mother with breast cancer, diagnosed at age 52. No other family members with cancers.",
            "Maternal aunt with breast cancer.",
            "Positive for breast cancer in her mother.",
            "Sister with breast cancer diagnosed at age 47.",
            "Her grandmother had breast cancer.",
        ]
    } else {
        &[
            "Negative for breast cancer.",
            "No family history of breast cancer.",
            "No family members with cancers.",
            "Noncontributory.",
            "Father with heart disease. No cancers in the family.",
        ]
    }
}

/// Drug-use sentences keyed by the binary gold label.
pub fn drug_templates(uses_drugs: bool) -> &'static [&'static str] {
    if uses_drugs {
        &[
            "Drug use, significant for marijuana.",
            "She uses marijuana occasionally.",
            "Positive for recreational drug use.",
        ]
    } else {
        &[
            "No recreational drugs.",
            "Negative for recreational drug use.",
            "She does not use recreational drugs.",
        ]
    }
}

/// Allergy sentences keyed by the binary gold label.
pub fn allergy_templates(has_allergies: bool) -> &'static [&'static str] {
    if has_allergies {
        &[
            "Penicillin, ACE inhibitors, and latex.",
            "Penicillin.",
            "Sulfa drugs.",
            "Allergic to penicillin and latex.",
        ]
    } else {
        &[
            "No known drug allergies.",
            "None.",
            "She has no known allergies.",
        ]
    }
}

/// Fixed exam-section boilerplate, as in the Appendix.
pub const HEENT: &str = "PERRLA.";
/// Neck exam boilerplate.
pub const NECK: &str = "There is no cervical or supraclavicular lymphadenopathy.";
/// Chest exam boilerplate.
pub const CHEST: &str = "Clear to auscultation anteriorly, posteriorly, and bilaterally.";
/// Heart exam boilerplate.
pub const HEART: &str = "S1 S2, regular, and no murmurs.";
/// Abdomen exam boilerplate.
pub const ABDOMEN: &str = "Soft, nontender, and no masses.";
/// Breast exam boilerplate.
pub const BREASTS: &str =
    "Shows good symmetry bilaterally. Palpation of both breasts shows no dominant lesions. There is no axillary adenopathy.";

/// Grammatical list join: "a", "a and b", "a, b, and c".
pub fn join_list(items: &[String]) -> String {
    match items.len() {
        0 => String::new(),
        1 => items[0].clone(),
        2 => format!("{} and {}", items[0], items[1]),
        _ => {
            let head = items[..items.len() - 1].join(", ");
            format!("{}, and {}", head, items[items.len() - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn house_style_is_index_zero() {
        assert!(VITALS[0].contains("{bp}"));
        assert!(GYN[0].contains("{menarche}"));
        assert!(HPI[0].contains("{age}"));
    }

    #[test]
    fn smoking_pools_nonempty() {
        for s in [
            SmokingStatus::Never,
            SmokingStatus::Former,
            SmokingStatus::Current,
        ] {
            assert!(!smoking_templates(s).is_empty());
        }
    }

    #[test]
    fn list_joining() {
        let v = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(join_list(&v(&["a"])), "a");
        assert_eq!(join_list(&v(&["a", "b"])), "a and b");
        assert_eq!(join_list(&v(&["a", "b", "c"])), "a, b, and c");
        assert_eq!(join_list(&[]), "");
    }
}
