//! Property tests for the POS tagger.

use cmr_postag::{PosTagger, Tag};
use cmr_text::{tokenize, TokenKind};
use proptest::prelude::*;

proptest! {
    /// Tagging is total and yields one tag per token.
    #[test]
    fn one_tag_per_token(s in "[ -~]{0,200}") {
        let toks = tokenize(&s);
        let tagged = PosTagger::new().tag(&toks);
        prop_assert_eq!(tagged.len(), toks.len());
    }

    /// Number tokens are always CD; punctuation is always PUNCT.
    #[test]
    fn fixed_classes_stable(s in "[a-zA-Z0-9,./: ]{0,200}") {
        let toks = tokenize(&s);
        let tagged = PosTagger::new().tag(&toks);
        for t in &tagged {
            match t.token.kind {
                TokenKind::Number(_) => prop_assert_eq!(t.tag, Tag::CD),
                TokenKind::Punct => prop_assert_eq!(t.tag, Tag::PUNCT),
                _ => {}
            }
        }
    }

    /// Lemmas are never empty for word tokens.
    #[test]
    fn lemmas_nonempty(s in "[a-zA-Z ]{1,100}") {
        for t in PosTagger::new().tag(&tokenize(&s)) {
            prop_assert!(!t.lemma.as_str().is_empty());
        }
    }

    /// Tagging is deterministic.
    #[test]
    fn deterministic(s in "[ -~]{0,150}") {
        let toks = tokenize(&s);
        let a = PosTagger::new().tag(&toks);
        let b = PosTagger::new().tag(&toks);
        prop_assert_eq!(a, b);
    }
}
