//! Per-record extraction budgets.
//!
//! The link parser is O(n³) in sentence length and a record may contain
//! arbitrarily many sentences, so batch drivers (see `cmr-engine`) bound
//! the work a single record may consume. Parsing is synchronous and cannot
//! be interrupted mid-sentence; budgets are therefore enforced at sentence
//! granularity — before each sentence the extractor checks the deadline and
//! the step count, and bails with [`BudgetExceeded`] instead of starting
//! the next parse. The per-sentence word cap inside the parser bounds how
//! far past the deadline one sentence can run.

use std::time::Instant;

/// Work limits for one record's extraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtractBudget {
    /// Hard wall-clock deadline; checked before each sentence.
    pub deadline: Option<Instant>,
    /// Maximum sentences the numeric extractor may process (the "step"
    /// budget — each step is at most one link parse).
    pub max_sentences: Option<usize>,
}

impl ExtractBudget {
    /// No limits: extraction never returns [`BudgetExceeded`].
    pub const NONE: ExtractBudget = ExtractBudget {
        deadline: None,
        max_sentences: None,
    };

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_sentences.is_none()
    }

    /// Returns the error to raise before step `sentences_done`, if any
    /// limit is already exhausted.
    pub fn check(&self, sentences_done: usize) -> Result<(), BudgetExceeded> {
        if let Some(max) = self.max_sentences {
            if sentences_done >= max {
                return Err(BudgetExceeded { sentences_done });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded { sentences_done });
            }
        }
        Ok(())
    }
}

/// A record exceeded its [`ExtractBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Sentences fully processed before the budget ran out.
    pub sentences_done: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "extraction budget exceeded after {} sentence(s)",
            self.sentences_done
        )
    }
}

impl std::error::Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_trips() {
        assert!(ExtractBudget::NONE.check(usize::MAX - 1).is_ok());
        assert!(ExtractBudget::NONE.is_unlimited());
    }

    #[test]
    fn sentence_cap_trips_at_limit() {
        let b = ExtractBudget {
            max_sentences: Some(3),
            ..ExtractBudget::NONE
        };
        assert!(b.check(2).is_ok());
        assert_eq!(b.check(3), Err(BudgetExceeded { sentences_done: 3 }));
    }

    #[test]
    fn past_deadline_trips() {
        let b = ExtractBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..ExtractBudget::NONE
        };
        assert!(b.check(0).is_err());
        let b = ExtractBudget {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..ExtractBudget::NONE
        };
        assert!(b.check(0).is_ok());
    }
}
