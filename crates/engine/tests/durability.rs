//! Durability integration tests: journal + resume equivalence, poison
//! quarantine, the stuck-worker watchdog, and graceful shutdown.

use cmr_engine::{
    read_journal, read_quarantine, Engine, EngineConfig, EngineError, JournalEntry, JournalWriter,
    QuarantineFile, RetryPolicy, RunManifest,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cmr-durability-{name}-{}", std::process::id()))
}

fn engine(cfg: EngineConfig) -> Engine {
    Engine::new(
        cfg,
        cmr_core::Schema::paper(),
        cmr_ontology::Ontology::full(),
    )
}

fn corpus(n: usize, seed: u64) -> Vec<String> {
    cmr_corpus::CorpusBuilder::new()
        .records(n)
        .seed(seed)
        .build()
        .records
        .into_iter()
        .map(|r| r.text)
        .collect()
}

/// A single-sentence record whose link parse takes far longer than the
/// watchdog deadlines used in these tests (~200ms uncancelled: a long
/// coordination chain near the parser's word limit).
fn slow_record() -> String {
    let mut s = String::from(
        "Vitals:  pulse of 84 and pressure of 90 and temperature of 98 \
         and weight of 150 and rate of 20",
    );
    s.push_str(" and pulse of 84 and weight of 150 and pulse of 84 and weight of 150");
    s.push_str(".\n");
    s
}

/// The kill-at-record-k scenario at engine level: journal the first `k`
/// outcomes, "crash", then resume — replay the journal, extract only the
/// remainder — and require the merged output byte-identical to an
/// uninterrupted run.
#[test]
fn kill_at_fixed_record_then_resume_is_byte_identical() {
    let texts = corpus(6, 2005);
    let cfg = EngineConfig {
        jobs: 2,
        ..EngineConfig::default()
    };
    let uninterrupted = engine(cfg.clone()).extract_batch(&texts);

    let k = 3usize;
    let path = scratch("fixed-k.journal");
    let manifest = RunManifest::for_run(&cfg, &texts);
    {
        let mut journal = JournalWriter::create(&path, &manifest).expect("create journal");
        for (index, output) in uninterrupted.items.iter().take(k).enumerate() {
            journal
                .append(&JournalEntry {
                    index,
                    output: output.clone(),
                })
                .expect("journal prefix");
        }
        // The writer is dropped here: the "crash".
    }

    // Resume: validate the manifest, replay the journaled prefix, process
    // only the remainder with a *fresh* engine (fresh caches, different
    // process in real life).
    let read = read_journal(&path).expect("journal reads back");
    assert_eq!(
        read.manifest.mismatch(&RunManifest::for_run(&cfg, &texts)),
        None
    );
    assert_eq!(read.entries.len(), k);
    let mut merged: Vec<_> = read.entries.into_iter().map(|e| e.output).collect();
    let tail = engine(cfg).extract_batch(&texts[k..]);
    merged.extend(tail.items);

    assert_eq!(
        serde_json::to_string(&merged).expect("serialize"),
        serde_json::to_string(&uninterrupted.items).expect("serialize"),
        "resumed run must be byte-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_file(&path);
}

/// A poison record (transient failure every attempt) is retried, then
/// quarantined exactly once with its attempt history; the rest of the
/// batch is unaffected.
#[test]
fn poison_record_is_quarantined_exactly_once_and_batch_survives() {
    let quarantine_path = scratch("poison.ndjson");
    let good = "Vitals:  Blood pressure is 144/90, pulse of 84.\n";
    // Two parse-worthy sentences against a one-sentence budget: a
    // deterministic transient-class (Budget) failure on every attempt.
    let poison = "Vitals:  Blood pressure is 144/90.  Pulse of 84 was noted.  \
                  Temperature is 98.6 today.\n";
    let cfg = EngineConfig {
        jobs: 2,
        max_record_sentences: Some(1),
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay_millis: 1,
        },
        ..EngineConfig::default()
    };
    let engine = engine(cfg)
        .with_quarantine(QuarantineFile::create(&quarantine_path).expect("create quarantine"));
    let out = engine.extract_batch(&[poison, good]);

    assert!(
        matches!(out.items[0], Err(EngineError::Budget { .. })),
        "poison record fails as budget: {:?}",
        out.items[0]
    );
    assert!(out.items[1].is_ok(), "batch survives the poison record");
    assert_eq!(out.metrics.retries, 2, "attempts 2 and 3 are retries");
    assert_eq!(out.metrics.quarantined, 1);
    assert_eq!(out.metrics.errors.budget, 1, "final outcome counted once");

    let entries = read_quarantine(&quarantine_path).expect("quarantine reads back");
    assert_eq!(entries.len(), 1, "poison record appears exactly once");
    assert_eq!(entries[0].index, 0);
    assert_eq!(entries[0].text, poison);
    assert!(matches!(entries[0].error, EngineError::Budget { .. }));
    assert_eq!(entries[0].attempts.len(), 3, "full attempt history");
    assert!(
        entries[0].attempts[..2]
            .iter()
            .all(|a| a.backoff_millis > 0),
        "non-final attempts record their backoff"
    );
    assert_eq!(entries[0].attempts[2].backoff_millis, 0);
    let _ = std::fs::remove_file(&quarantine_path);
}

/// Without retry or quarantine configured, behaviour is unchanged: the
/// failing record errors once, nothing is retried or quarantined.
#[test]
fn default_policy_does_not_retry() {
    let poison = "Vitals:  Blood pressure is 144/90.  Pulse of 84 was noted.\n";
    let cfg = EngineConfig {
        jobs: 1,
        max_record_sentences: Some(1),
        ..EngineConfig::default()
    };
    let out = engine(cfg).extract_batch(&[poison]);
    assert!(matches!(out.items[0], Err(EngineError::Budget { .. })));
    assert_eq!(out.metrics.retries, 0);
    assert_eq!(out.metrics.quarantined, 0);
}

/// A record whose single sentence parses longer than the wall-clock
/// deadline is cancelled by the watchdog and surfaces as a Timeout (not a
/// plain Budget trip), counted in the metrics.
#[test]
fn watchdog_cancels_stuck_parse_as_timeout() {
    let cfg = EngineConfig {
        jobs: 1,
        max_record_millis: Some(25),
        ..EngineConfig::default()
    };
    let out = engine(cfg).extract_batch(&[slow_record()]);
    assert!(
        matches!(out.items[0], Err(EngineError::Timeout { millis: 25 })),
        "expected a watchdog timeout: {:?}",
        out.items[0]
    );
    assert_eq!(out.metrics.errors.timeouts, 1);
    assert_eq!(
        out.metrics.errors.budget, 0,
        "classified as timeout, not budget"
    );
    assert_eq!(out.metrics.records, 0, "cancelled record is not a success");
}

/// The same pathological record under no deadline extracts fine — the
/// watchdog, not the record, is what fails it above.
#[test]
fn slow_record_succeeds_without_a_deadline() {
    let out = engine(EngineConfig {
        jobs: 1,
        ..EngineConfig::default()
    })
    .extract_batch(&[slow_record()]);
    assert!(out.items[0].is_ok(), "{:?}", out.items[0]);
    assert_eq!(out.metrics.errors.total(), 0);
}

/// Raising the shutdown flag before the run starts means nothing is fed:
/// the engine returns promptly with an empty, clean result — the
/// already-journaled prefix (none here) stays a valid resume point.
#[test]
fn pre_raised_shutdown_flag_processes_nothing() {
    let flag = Arc::new(AtomicBool::new(true));
    let texts = corpus(4, 7);
    let mut seen = 0usize;
    let metrics = engine(EngineConfig {
        jobs: 2,
        ..EngineConfig::default()
    })
    .with_shutdown(flag)
    .extract_stream(texts.iter().cloned(), |_idx, _result| seen += 1);
    assert_eq!(seen, 0, "no record may be fed after shutdown");
    assert_eq!(metrics.records, 0);
    assert_eq!(metrics.errors.total(), 0, "shutdown is not an error");
}

/// A flag raised mid-run drains what was fed and stops: the sink sees a
/// contiguous prefix of successes, never a gap or an aborted tail.
#[test]
fn mid_run_shutdown_drains_a_clean_prefix() {
    let flag = Arc::new(AtomicBool::new(false));
    let texts: Vec<String> = corpus(1, 7).into_iter().cycle().take(500).collect();
    let sink_flag = Arc::clone(&flag);
    let mut outputs = Vec::new();
    let _metrics = engine(EngineConfig {
        jobs: 2,
        queue_depth: 2,
        ..EngineConfig::default()
    })
    .with_shutdown(Arc::clone(&flag))
    .extract_stream(texts.iter().cloned(), |idx, result| {
        // Ask for shutdown as soon as the first record lands.
        sink_flag.store(true, Ordering::Relaxed);
        outputs.push((idx, result));
    });
    assert!(!outputs.is_empty(), "at least the first record completes");
    assert!(outputs.len() < 500, "shutdown flag did not stop the feeder");
    for (i, (idx, result)) in outputs.iter().enumerate() {
        assert_eq!(*idx, i, "prefix must be contiguous");
        assert!(result.is_ok(), "drained records are processed, not aborted");
    }
}
