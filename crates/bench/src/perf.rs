//! The `cmr bench` performance harness: a machine-readable throughput
//! snapshot of the whole pipeline, suitable for regression gating in CI.
//!
//! The harness runs the gold corpus plus a deterministically generated
//! corpus through (a) a single serial [`Pipeline`] and (b) the parallel
//! engine, and reports notes/sec, ns per extracted field, parse-cache hit
//! rates, allocation counts (when the caller supplies a counting-allocator
//! probe — see `src/bin/cmr.rs`) and peak RSS. Reports serialize to JSON
//! (`BENCH_pr3.json`); [`check_regression`] compares two reports and is the
//! CI perf-smoke gate.

use cmr_core::{Pipeline, Schema};
use cmr_corpus::CorpusBuilder;
use cmr_engine::{Engine, EngineConfig};
use cmr_ontology::Ontology;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// What to run. Small by default so the CI smoke job stays fast; the
/// committed `BENCH_pr3.json` uses larger settings (see EXPERIMENTS.md §B3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Generated-corpus size (the 50-record gold corpus is always included).
    pub records: usize,
    /// Generator seed (fixed ⇒ identical workload across runs).
    pub seed: u64,
    /// Timed repeats; the best repeat is reported (min-noise convention).
    pub repeats: usize,
    /// Worker threads for the parallel leg.
    pub jobs: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            records: 150,
            seed: 2005,
            repeats: 3,
            jobs: 4,
        }
    }
}

/// One timed leg (serial pipeline or parallel engine).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Notes processed per repeat.
    pub notes: u64,
    /// Fields extracted across all notes (numeric + term hits).
    pub fields: u64,
    /// Wall time of the best repeat, nanoseconds.
    pub wall_nanos: u64,
    /// Notes per second (best repeat).
    pub notes_per_sec: f64,
    /// Nanoseconds per extracted field (best repeat).
    pub ns_per_field: f64,
    /// Link-parser structure-cache hits (best repeat).
    pub cache_hits: u64,
    /// Link-parser structure-cache misses (best repeat).
    pub cache_misses: u64,
    /// Cache hit rate in `0.0..=1.0` (0 when no lookups).
    pub cache_hit_rate: f64,
}

impl RunStats {
    fn finish(&mut self) {
        if self.wall_nanos > 0 {
            self.notes_per_sec = self.notes as f64 / (self.wall_nanos as f64 / 1e9);
        }
        if self.fields > 0 {
            self.ns_per_field = self.wall_nanos as f64 / self.fields as f64;
        }
        let lookups = self.cache_hits + self.cache_misses;
        if lookups > 0 {
            self.cache_hit_rate = self.cache_hits as f64 / lookups as f64;
        }
    }
}

/// Allocation counts for one serial pass, measured by the caller-supplied
/// probe (the `cmr` binary installs a counting global allocator; library
/// crates stay `forbid(unsafe_code)`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AllocStats {
    /// Heap allocations per note (counting pass, warm caches).
    pub allocs_per_note: f64,
    /// Heap bytes allocated per note (counting pass, warm caches).
    pub bytes_per_note: f64,
}

/// The full report written to `BENCH_pr3.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report format version (bump on breaking shape changes).
    pub version: u32,
    /// The configuration that produced this report.
    pub config: BenchConfig,
    /// Serial single-threaded pipeline over gold + generated corpora.
    pub serial: RunStats,
    /// Parallel engine at `config.jobs` workers over the same texts.
    pub parallel: RunStats,
    /// Parallel engine with a write-ahead journal enabled (PR 5): same
    /// workload as `parallel`, plus one journal line per record. Absent in
    /// reports from before the durability subsystem existed.
    pub journaled: Option<RunStats>,
    /// Allocation counts (absent when no counting allocator is installed).
    pub allocations: Option<AllocStats>,
    /// Peak resident set size in bytes (`VmHWM`; absent off-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Optional pre-change baseline summary carried inside the committed
    /// report, so the before/after pair lives in one file.
    pub baseline: Option<BaselineSummary>,
}

/// The headline numbers of a baseline run, embedded in the current report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineSummary {
    /// What the baseline was (e.g. a commit id or "pre-PR3 seed").
    pub label: String,
    /// Baseline serial notes/sec.
    pub serial_notes_per_sec: f64,
    /// Baseline parallel notes/sec.
    pub parallel_notes_per_sec: f64,
    /// Baseline allocations per note, when measured.
    pub allocs_per_note: Option<f64>,
}

/// The benchmark workload: gold corpus + deterministically generated
/// records, as raw note texts.
pub fn workload(cfg: &BenchConfig) -> Vec<String> {
    let mut texts: Vec<String> = CorpusBuilder::new()
        .build()
        .records
        .iter()
        .map(|r| r.text.clone())
        .collect();
    let generated = CorpusBuilder::new()
        .records(cfg.records)
        .seed(cfg.seed)
        .style_variation(1.0)
        .build();
    texts.extend(generated.records.iter().map(|r| r.text.clone()));
    texts
}

fn fields_of(out: &cmr_core::ExtractedRecord) -> u64 {
    (out.numeric.len()
        + out.predefined_medical.len()
        + out.other_medical.len()
        + out.predefined_surgical.len()
        + out.other_surgical.len()) as u64
}

/// Runs the serial leg: one fresh [`Pipeline`] per repeat, best repeat
/// reported. When `probe` is given (returns cumulative `(allocs, bytes)`),
/// a final warm pass measures allocations per note.
pub fn run_serial(
    cfg: &BenchConfig,
    texts: &[String],
    probe: Option<&dyn Fn() -> (u64, u64)>,
) -> (RunStats, Option<AllocStats>) {
    let mut best = RunStats::default();
    for _ in 0..cfg.repeats.max(1) {
        let pipeline = Pipeline::with_default_schema();
        let mut fields = 0u64;
        let start = Instant::now();
        for text in texts {
            fields += fields_of(&pipeline.extract(text));
        }
        let wall = start.elapsed().as_nanos() as u64;
        if best.wall_nanos == 0 || wall < best.wall_nanos {
            let stats = pipeline.parser_stats();
            best = RunStats {
                notes: texts.len() as u64,
                fields,
                wall_nanos: wall,
                cache_hits: stats.cache_hits,
                cache_misses: stats.cache_misses,
                ..RunStats::default()
            };
        }
    }
    best.finish();

    let allocations = probe.map(|probe| {
        // Warm pass on a dedicated pipeline so caches and the interner are
        // hot, then count one more full pass.
        let pipeline = Pipeline::with_default_schema();
        for text in texts {
            std::hint::black_box(pipeline.extract(text));
        }
        let (a0, b0) = probe();
        for text in texts {
            std::hint::black_box(pipeline.extract(text));
        }
        let (a1, b1) = probe();
        let notes = texts.len().max(1) as f64;
        AllocStats {
            allocs_per_note: a1.saturating_sub(a0) as f64 / notes,
            bytes_per_note: b1.saturating_sub(b0) as f64 / notes,
        }
    });
    (best, allocations)
}

/// Runs the parallel leg through the batch engine at `cfg.jobs` workers.
pub fn run_parallel(cfg: &BenchConfig, texts: &[String]) -> RunStats {
    let mut best = RunStats::default();
    for _ in 0..cfg.repeats.max(1) {
        let engine = Engine::new(
            EngineConfig {
                jobs: cfg.jobs.max(1),
                ..EngineConfig::default()
            },
            Schema::paper(),
            Ontology::full(),
        );
        let mut fields = 0u64;
        let start = Instant::now();
        let metrics = engine.extract_stream(texts.iter().cloned(), |_, out| {
            if let Ok(rec) = out {
                fields += fields_of(&rec);
            }
        });
        let wall = start.elapsed().as_nanos() as u64;
        if best.wall_nanos == 0 || wall < best.wall_nanos {
            best = RunStats {
                notes: metrics.records,
                fields,
                wall_nanos: wall,
                cache_hits: metrics.parse_cache.hits,
                cache_misses: metrics.parse_cache.misses,
                ..RunStats::default()
            };
        }
    }
    best.finish();
    best
}

/// Runs the parallel leg again with the write-ahead journal enabled,
/// measuring durability overhead: every record outcome is serialized and
/// appended (one `write_all` per line) to a scratch journal that is
/// deleted afterwards.
pub fn run_journaled(cfg: &BenchConfig, texts: &[String]) -> RunStats {
    use cmr_engine::{JournalEntry, JournalWriter, RunManifest};

    let path = std::env::temp_dir().join(format!(
        "cmr-bench-journal-{}-{}.ndjson",
        std::process::id(),
        cfg.seed
    ));
    let mut best = RunStats::default();
    for _ in 0..cfg.repeats.max(1) {
        let engine_cfg = EngineConfig {
            jobs: cfg.jobs.max(1),
            ..EngineConfig::default()
        };
        let engine = Engine::new(engine_cfg.clone(), Schema::paper(), Ontology::full());
        let manifest = RunManifest::for_run(&engine_cfg, texts);
        let mut fields = 0u64;
        let start = Instant::now();
        let mut writer = JournalWriter::create(&path, &manifest).expect("scratch journal");
        let metrics = engine.extract_stream(texts.iter().cloned(), |index, output| {
            let entry = JournalEntry { index, output };
            writer.append(&entry).expect("journal append");
            if let Ok(rec) = &entry.output {
                fields += fields_of(rec);
            }
        });
        let wall = start.elapsed().as_nanos() as u64;
        if best.wall_nanos == 0 || wall < best.wall_nanos {
            best = RunStats {
                notes: metrics.records,
                fields,
                wall_nanos: wall,
                cache_hits: metrics.parse_cache.hits,
                cache_misses: metrics.parse_cache.misses,
                ..RunStats::default()
            };
        }
    }
    let _ = std::fs::remove_file(&path);
    best.finish();
    best
}

/// Runs both legs and assembles a report.
pub fn run_bench(cfg: &BenchConfig, probe: Option<&dyn Fn() -> (u64, u64)>) -> BenchReport {
    let texts = workload(cfg);
    let (serial, allocations) = run_serial(cfg, &texts, probe);
    let parallel = run_parallel(cfg, &texts);
    let journaled = run_journaled(cfg, &texts);
    BenchReport {
        version: 1,
        config: cfg.clone(),
        serial,
        parallel,
        journaled: Some(journaled),
        allocations,
        peak_rss_bytes: peak_rss_bytes(),
        baseline: None,
    }
}

/// Peak resident set size from `/proc/self/status` (`VmHWM`), in bytes.
/// Returns `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

/// The CI gate: fails when the current report's throughput drops more than
/// `threshold` (fraction, e.g. `0.25`) below the baseline report on either
/// leg. Faster-than-baseline is always fine.
pub fn check_regression(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold: f64,
) -> Result<(), String> {
    let legs = [
        (
            "serial",
            current.serial.notes_per_sec,
            baseline.serial.notes_per_sec,
        ),
        (
            "parallel",
            current.parallel.notes_per_sec,
            baseline.parallel.notes_per_sec,
        ),
    ];
    let mut failures = Vec::new();
    for (name, now, then) in legs {
        if then <= 0.0 {
            continue;
        }
        let floor = then * (1.0 - threshold);
        if now < floor {
            failures.push(format!(
                "{name}: {now:.1} notes/sec is below the regression floor {floor:.1} \
                 (baseline {then:.1}, threshold {:.0}%)",
                threshold * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// The durability gate: journaling is bookkeeping, not work, so the
/// journaled leg must stay within `threshold` (fraction, default 0.10 in
/// CI) of the plain parallel leg *of the same report* — same machine,
/// same run, no cross-environment noise.
pub fn check_journal_overhead(report: &BenchReport, threshold: f64) -> Result<(), String> {
    let Some(journaled) = &report.journaled else {
        return Err("report has no journaled leg".to_string());
    };
    if report.parallel.notes_per_sec <= 0.0 {
        return Err("parallel leg has no throughput to compare against".to_string());
    }
    let floor = report.parallel.notes_per_sec * (1.0 - threshold);
    if journaled.notes_per_sec < floor {
        return Err(format!(
            "journal overhead too high: {:.1} notes/sec journaled vs {:.1} plain \
             (floor {floor:.1} at {:.0}% allowance)",
            journaled.notes_per_sec,
            report.parallel.notes_per_sec,
            threshold * 100.0
        ));
    }
    Ok(())
}

/// A tiny smoke workload for tests: a handful of records, one repeat.
pub fn smoke_config() -> BenchConfig {
    BenchConfig {
        records: 4,
        seed: 7,
        repeats: 1,
        jobs: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_sane_numbers() {
        let report = run_bench(&smoke_config(), None);
        assert!(report.serial.notes > 0);
        assert!(report.serial.notes_per_sec > 0.0);
        assert!(report.serial.fields > 0);
        assert_eq!(report.serial.notes, report.parallel.notes);
        assert!(report.parallel.notes_per_sec > 0.0);
        assert!(report.allocations.is_none());
        assert!((0.0..=1.0).contains(&report.serial.cache_hit_rate));
        let journaled = report.journaled.as_ref().expect("journaled leg present");
        assert_eq!(journaled.notes, report.parallel.notes);
        assert!(journaled.notes_per_sec > 0.0);
    }

    #[test]
    fn journal_overhead_gate_trips_and_passes() {
        let mut report = run_bench(&smoke_config(), None);
        report.parallel.notes_per_sec = 100.0;
        if let Some(j) = report.journaled.as_mut() {
            j.notes_per_sec = 95.0; // -5%: inside the 10% allowance
        }
        assert!(check_journal_overhead(&report, 0.10).is_ok());
        if let Some(j) = report.journaled.as_mut() {
            j.notes_per_sec = 80.0; // -20%: trips
        }
        let err = check_journal_overhead(&report, 0.10).unwrap_err();
        assert!(err.contains("journal overhead"), "{err}");
        report.journaled = None;
        assert!(check_journal_overhead(&report, 0.10).is_err());
    }

    #[test]
    fn regression_gate_trips_and_passes() {
        let mut base = run_bench(&smoke_config(), None);
        base.serial.notes_per_sec = 100.0;
        base.parallel.notes_per_sec = 300.0;
        let mut current = base.clone();
        current.serial.notes_per_sec = 90.0; // -10%: fine at 25%
        assert!(check_regression(&current, &base, 0.25).is_ok());
        current.serial.notes_per_sec = 60.0; // -40%: trips
        let err = check_regression(&current, &base, 0.25).unwrap_err();
        assert!(err.contains("serial"), "{err}");
        // Faster than baseline never trips.
        current.serial.notes_per_sec = 500.0;
        current.parallel.notes_per_sec = 500.0;
        assert!(check_regression(&current, &base, 0.25).is_ok());
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
