//! Byte-offset spans into source text.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A half-open byte range `[start, end)` into a source string.
///
/// Every token, sentence and section carries a `Span` so that extracted
/// information can always be traced back to the exact characters of the
/// original record — a requirement for clinical auditability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Creates a span; panics in debug builds if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start {start} after end {end}");
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True when the two spans share at least one byte.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The smallest span containing both inputs.
    pub fn cover(&self, other: &Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Extracts the spanned slice of `text`.
    ///
    /// Panics if the span is out of bounds or not on a char boundary, which
    /// indicates the span was built for a different string.
    pub fn slice<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }

    /// Translates the span by `offset` bytes (used when a sentence span is
    /// lifted from section-relative to record-relative coordinates).
    pub fn shifted(&self, offset: usize) -> Span {
        Span::new(self.start + offset, self.end + offset)
    }
}

impl From<Range<usize>> for Span {
    fn from(r: Range<usize>) -> Self {
        Span::new(r.start, r.end)
    }
}

impl From<Span> for Range<usize> {
    fn from(s: Span) -> Self {
        s.start..s.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Span::new(2, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Span::new(4, 4).is_empty());
    }

    #[test]
    fn containment_and_overlap() {
        let outer = Span::new(0, 10);
        let inner = Span::new(3, 7);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.overlaps(&inner));
        assert!(
            !Span::new(0, 3).overlaps(&Span::new(3, 6)),
            "half-open: touching spans do not overlap"
        );
    }

    #[test]
    fn cover_spans() {
        assert_eq!(Span::new(2, 4).cover(&Span::new(6, 9)), Span::new(2, 9));
        assert_eq!(Span::new(6, 9).cover(&Span::new(2, 4)), Span::new(2, 9));
    }

    #[test]
    fn slicing_and_shifting() {
        let text = "blood pressure";
        let s = Span::new(6, 14);
        assert_eq!(s.slice(text), "pressure");
        assert_eq!(s.shifted(2), Span::new(8, 16));
    }

    #[test]
    fn range_conversions() {
        let s: Span = (1..4).into();
        assert_eq!(s, Span::new(1, 4));
        let r: Range<usize> = s.into();
        assert_eq!(r, 1..4);
    }

    #[test]
    fn display_format() {
        assert_eq!(Span::new(1, 4).to_string(), "[1, 4)");
    }
}
