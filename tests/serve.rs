//! Integration tests for the resident extraction service: endpoint
//! contracts against an in-process [`Server`], deterministic `429`
//! admission control, and — the one that matters for operations — a
//! real-binary SIGTERM mid-load drain proving every accepted request
//! gets a complete response and the process exits with the drain code.

use cmr::prelude::*;
use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const NOTE: &str = "Vitals:  Blood pressure is 144/90, pulse of 84.\n";

/// Starts an in-process server on an ephemeral port; returns the bound
/// address, the shutdown flag, and the join handle for the serve loop.
fn start(cfg: ServeConfig) -> (String, Arc<AtomicBool>, JoinHandle<ServeSummary>) {
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..cfg
        },
        Arc::clone(&shutdown),
    )
    .expect("bind server");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, shutdown, handle)
}

fn stop(shutdown: &AtomicBool, handle: JoinHandle<ServeSummary>) -> ServeSummary {
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread")
}

/// Reads one HTTP response off `stream` (leftover bytes persist in `buf`
/// across calls for keep-alive). Returns `(status, body)`; panics on a
/// malformed response — in these tests the server must never produce one.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String) {
    let mut fill = |buf: &mut Vec<u8>| -> usize {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read response");
        buf.extend_from_slice(&chunk[..n]);
        n
    };
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        assert!(fill(buf) > 0, "eof before response head");
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("utf-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    let lower = head.to_ascii_lowercase();
    let header = |name: &str| -> Option<String> {
        lower.lines().find_map(|l| {
            l.strip_prefix(&format!("{name}:"))
                .map(|v| v.trim().to_string())
        })
    };
    let mut consumed = head_end + 4;
    let mut body = Vec::new();
    if header("transfer-encoding").as_deref() == Some("chunked") {
        loop {
            let line_end = loop {
                if let Some(i) = buf[consumed..].windows(2).position(|w| w == b"\r\n") {
                    break consumed + i;
                }
                assert!(fill(buf) > 0, "eof in chunk size");
            };
            let size = usize::from_str_radix(
                std::str::from_utf8(&buf[consumed..line_end])
                    .expect("chunk size utf-8")
                    .trim(),
                16,
            )
            .expect("chunk size hex");
            consumed = line_end + 2;
            while buf.len() < consumed + size + 2 {
                assert!(fill(buf) > 0, "eof in chunk");
            }
            if size == 0 {
                consumed += 2;
                break;
            }
            body.extend_from_slice(&buf[consumed..consumed + size]);
            consumed += size + 2;
        }
    } else {
        let n: usize = header("content-length")
            .expect("content-length or chunked")
            .parse()
            .expect("content-length number");
        while buf.len() < consumed + n {
            assert!(fill(buf) > 0, "eof in body");
        }
        body.extend_from_slice(&buf[consumed..consumed + n]);
        consumed += n;
    }
    buf.drain(..consumed);
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One-shot request on a fresh connection.
fn oneshot(addr: &str, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw).expect("write request");
    let mut buf = Vec::new();
    read_response(&mut stream, &mut buf)
}

fn post(addr: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(addr: &str, path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").into_bytes()
}

/// NDJSON body of `n` *distinct* notes. Distinct matters: repeating one
/// note would hit the warm parse cache and finish a "long" batch in
/// microseconds, defeating busy-worker tests.
fn distinct_batch(n: usize) -> String {
    let corpus = CorpusBuilder::new().records(n).seed(17).build();
    let mut body = String::new();
    for record in &corpus.records {
        body.push_str(&serde_json::to_string(&record.text).unwrap());
        body.push('\n');
    }
    body
}

#[test]
fn endpoints_health_extract_metrics_contract() {
    let (addr, shutdown, handle) = start(ServeConfig {
        jobs: 1,
        ..ServeConfig::default()
    });

    let (status, body) = oneshot(&addr, &get(&addr, "/health"));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ready\""), "{body}");
    assert!(body.contains("\"lint\""), "{body}");
    assert!(body.contains("\"assets\""), "{body}");

    let (status, body) = oneshot(&addr, &post(&addr, "/extract", NOTE));
    assert_eq!(status, 200, "{body}");
    let record: ExtractedRecord = serde_json::from_str(&body).expect("record JSON");
    assert!(record.numeric("pulse").is_some(), "{body}");
    assert!(record.numeric("blood_pressure").is_some(), "{body}");

    // The gold-record object form decodes through the shared NDJSON
    // reader, same as `cmr extract -`.
    let json_note = format!(
        "{{\"text\":{}}}",
        serde_json::to_string(&NOTE.to_string()).unwrap()
    );
    let (status, body2) = oneshot(&addr, &post(&addr, "/extract", &json_note));
    assert_eq!(status, 200);
    assert_eq!(
        body, body2,
        "raw and {{\"text\":...}} bodies extract identically"
    );

    let (status, metrics_json) = oneshot(&addr, &get(&addr, "/metrics"));
    assert_eq!(status, 200);
    let metrics: EngineMetrics = serde_json::from_str(&metrics_json).expect("metrics JSON");
    assert_eq!(metrics.records, 2, "two extractions so far");
    assert_eq!(metrics.service.extract.count, 2);
    assert!(metrics.service.extract.total_nanos > 0);

    let (status, body) = oneshot(&addr, &get(&addr, "/nope"));
    assert_eq!(status, 404, "{body}");
    let (status, body) = oneshot(&addr, &get(&addr, "/extract"));
    assert_eq!(status, 405, "{body}");
    let (status, body) = oneshot(&addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400, "{body}");

    let summary = stop(&shutdown, handle);
    assert!(summary.requests >= 7, "{summary:?}");
    assert_eq!(summary.rejected, 0);
}

#[test]
fn batch_endpoint_streams_ndjson_and_skips_blank_lines() {
    let (addr, shutdown, handle) = start(ServeConfig {
        jobs: 1,
        ..ServeConfig::default()
    });

    // Two notes, with blank + whitespace-only separators and a trailing
    // newline: exactly two result lines, none of them errors.
    let note_json = serde_json::to_string(&NOTE.to_string()).unwrap();
    let body = format!("{note_json}\n\n   \n{{\"text\":{note_json}}}\n");
    let (status, out) = oneshot(&addr, &post(&addr, "/extract/batch", &body));
    assert_eq!(status, 200, "{out}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "blank lines must not become records: {out}");
    for line in &lines {
        let record: ExtractedRecord = serde_json::from_str(line).expect("record JSON");
        assert!(record.numeric("pulse").is_some(), "{line}");
        assert!(!line.contains("\"error\""), "{line}");
    }
    assert_eq!(lines[0], lines[1], "same note, same record");

    let summary = stop(&shutdown, handle);
    assert!(summary.requests >= 1);
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let (addr, shutdown, handle) = start(ServeConfig {
        jobs: 1,
        ..ServeConfig::default()
    });

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut buf = Vec::new();
    for i in 0..3 {
        let req = format!(
            "POST /extract HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{NOTE}",
            NOTE.len()
        );
        stream.write_all(req.as_bytes()).expect("write");
        let (status, body) = read_response(&mut stream, &mut buf);
        assert_eq!(status, 200, "request {i}: {body}");
        assert!(body.contains("\"pulse\""), "request {i}");
    }
    drop(stream);

    let summary = stop(&shutdown, handle);
    assert!(summary.requests >= 3);
}

#[test]
fn admission_control_answers_429_when_queue_is_full() {
    // One worker, one queue slot: occupy the worker with a long batch,
    // fill the slot with one extract, and every further request must be
    // shed with 429 + Retry-After rather than queued without bound.
    let (addr, shutdown, handle) = start(ServeConfig {
        jobs: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });

    let batch_len = 1500;
    let long_batch = distinct_batch(batch_len);
    let batch_addr = addr.clone();
    let batch_req = post(&addr, "/extract/batch", &long_batch);
    let batch_thread = std::thread::spawn(move || oneshot(&batch_addr, &batch_req));

    // Let the batch occupy the worker, then send every probe *before*
    // reading any response — reading first would serialize the probes
    // behind the batch and present them to an idle server.
    std::thread::sleep(Duration::from_millis(150));
    let mut probes = Vec::new();
    for _ in 0..3 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream
            .write_all(&post(&addr, "/extract", NOTE))
            .expect("write");
        probes.push(stream);
        std::thread::sleep(Duration::from_millis(40));
    }

    let mut statuses = Vec::new();
    let mut retry_after_seen = false;
    for mut stream in probes {
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read");
        let head = String::from_utf8_lossy(&raw);
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status");
        if head.to_ascii_lowercase().contains("retry-after:") {
            retry_after_seen = true;
        }
        statuses.push(status);
    }

    let (batch_status, batch_out) = batch_thread.join().expect("batch thread");
    assert_eq!(batch_status, 200);
    assert_eq!(
        batch_out.lines().count(),
        batch_len,
        "the in-flight batch must finish completely"
    );
    assert!(
        statuses.contains(&429),
        "with jobs=1, queue=1 and a busy worker, shedding must kick in: {statuses:?}"
    );
    assert!(retry_after_seen, "429 must carry Retry-After");
    assert!(
        statuses.iter().all(|s| *s == 429 || *s == 200),
        "every request is either served or cleanly shed: {statuses:?}"
    );

    let summary = stop(&shutdown, handle);
    assert!(summary.rejected >= 1, "{summary:?}");
}

#[test]
fn in_process_drain_finishes_inflight_batch() {
    let (addr, shutdown, handle) = start(ServeConfig {
        jobs: 1,
        ..ServeConfig::default()
    });

    let long_batch = distinct_batch(200);
    let batch_req = post(&addr, "/extract/batch", &long_batch);
    let batch_addr = addr.clone();
    let batch_thread = std::thread::spawn(move || oneshot(&batch_addr, &batch_req));
    std::thread::sleep(Duration::from_millis(120));

    // Shut down while the batch is mid-flight.
    let summary = stop(&shutdown, handle);

    let (status, out) = batch_thread.join().expect("batch thread");
    assert_eq!(status, 200, "in-flight batch still gets its response");
    assert_eq!(out.lines().count(), 200, "and it is complete");

    // The listener is gone: fresh connections are refused.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "drained server must not accept"
    );
    assert!(summary.requests >= 1);
}

/// The operational contract, end to end against the real binary:
/// SIGTERM mid-load ⇒ every application-accepted request gets a
/// complete, valid response; the process exits with the drain code (3).
///
/// Client error accounting follows standard HTTP practice: EOF on a
/// *reused* keep-alive connection before any response byte is a stale
/// close (retry on a fresh connection); a fresh connection that is
/// refused — or closed by the dying listener before yielding a byte —
/// was never application-accepted. Anything else (partial response,
/// 5xx) is a hard failure.
#[test]
fn sigterm_mid_load_drains_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cmr"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cmr serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut stderr = std::io::BufReader::new(stderr);
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split("serving on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    #[derive(Default)]
    struct ClientStats {
        ok: u64,
        bad: Vec<String>,
    }

    let stop_flag = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let stop_flag = Arc::clone(&stop_flag);
                scope.spawn(move || {
                    let mut stats = ClientStats::default();
                    let mut conn: Option<(TcpStream, Vec<u8>, u64)> = None;
                    'requests: while !stop_flag.load(Ordering::Relaxed)
                        && Instant::now() < deadline
                    {
                        for attempt in 0..2 {
                            let fresh = conn.is_none();
                            if fresh {
                                match TcpStream::connect(&addr) {
                                    Ok(s) => {
                                        s.set_read_timeout(Some(Duration::from_secs(10))).ok();
                                        conn = Some((s, Vec::new(), 0));
                                    }
                                    Err(_) => break 'requests, // draining: refused
                                }
                            }
                            let (stream, buf, served) = conn.as_mut().expect("conn");
                            let req = format!(
                                "POST /extract HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{NOTE}",
                                NOTE.len()
                            );
                            let write_ok = stream.write_all(req.as_bytes()).is_ok();
                            let outcome = if write_ok {
                                try_read_response(stream, buf)
                            } else {
                                Err(true)
                            };
                            match outcome {
                                Ok((200, body)) if body.contains("\"pulse\"") => {
                                    *served += 1;
                                    stats.ok += 1;
                                    break;
                                }
                                Ok((status, body)) => {
                                    stats.bad.push(format!("status {status}: {body}"));
                                    break;
                                }
                                // EOF before any response byte.
                                Err(true) => {
                                    let was_reused = *served > 0;
                                    conn = None;
                                    if was_reused && attempt == 0 {
                                        continue; // stale keep-alive: retry fresh
                                    }
                                    // Fresh connection killed before a
                                    // byte: never application-accepted
                                    // (listener died) — stop cleanly.
                                    break 'requests;
                                }
                                // Partial response: hard failure.
                                Err(false) => {
                                    stats.bad.push("partial response".to_string());
                                    conn = None;
                                    break;
                                }
                            }
                        }
                    }
                    stats
                })
            })
            .collect();

        // Let the load establish, then SIGTERM the server.
        std::thread::sleep(Duration::from_millis(900));
        send_sigterm(child.id());
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        stop_flag.store(true, Ordering::Relaxed);
        out
    });

    let status = child.wait().expect("wait for serve");
    assert_eq!(
        status.code(),
        Some(3),
        "drained stop must exit with the partial-run code"
    );
    let mut drained_line = String::new();
    stderr.read_line(&mut drained_line).expect("drain banner");
    assert!(drained_line.contains("drained"), "{drained_line}");

    let total_ok: u64 = stats.iter().map(|s| s.ok).sum();
    let bad: Vec<&String> = stats.iter().flat_map(|s| s.bad.iter()).collect();
    assert!(bad.is_empty(), "incomplete/erroneous responses: {bad:?}");
    assert!(
        total_ok > 0,
        "the load must have gotten through before the drain"
    );
}

/// Reads one response; `Err(true)` = EOF before any byte (stale/refused
/// class), `Err(false)` = EOF mid-response (a dropped response).
fn try_read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<(u16, String), bool> {
    let had_leftover = !buf.is_empty();
    let mut got_any = had_leftover;
    let mut fill = |buf: &mut Vec<u8>, got_any: &mut bool| -> Result<usize, ()> {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => Err(()),
            Ok(n) => {
                *got_any = true;
                buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
        }
    };
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        if fill(buf, &mut got_any).is_err() {
            return Err(!got_any);
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(false)?;
    let n: usize = head
        .to_ascii_lowercase()
        .lines()
        .find_map(|l| {
            l.strip_prefix("content-length:")
                .map(|v| v.trim().to_string())
        })
        .and_then(|v| v.parse().ok())
        .ok_or(false)?;
    let mut consumed = head_end + 4;
    while buf.len() < consumed + n {
        if fill(buf, &mut got_any).is_err() {
            return Err(false); // head arrived, body truncated: partial
        }
    }
    let body = String::from_utf8_lossy(&buf[consumed..consumed + n]).into_owned();
    consumed += n;
    buf.drain(..consumed);
    Ok((status, body))
}

/// Raises SIGTERM without shelling out (same libc-free style as the
/// binary's own signal handling).
fn send_sigterm(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        kill(pid as i32, SIGTERM);
    }
}
