//! Categorical field extraction (§3.3): NLP feature extraction + ID3.
//!
//! The feature extractor implements all four user options from the paper:
//!
//! 1. choose part of speech classes (verb, noun, adjective, adverb);
//! 2. choose sentence constituents (subject, verb, object, supplement);
//! 3. head noun / head adjective only;
//! 4. use the lemma ("uninfected form") of any word.
//!
//! Plus the §3.3 *future-work* extension implemented here: numeric boolean
//! features (`number ≤ t` / `number > t` present in the text) for classes
//! like alcohol use whose labels quantify frequency.

use cmr_linkgram::LinkParser;
use cmr_ml::{CrossValidation, CvResult, Dataset, DatasetBuilder, Id3Params, Id3Tree};
use cmr_postag::{PosTagger, Tag};
use cmr_text::{annotate_numbers, split_sentences, tokenize};

/// Feature-extraction options (§3.3's four user choices + thresholds).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureOptions {
    /// Include verbs.
    pub verbs: bool,
    /// Include nouns.
    pub nouns: bool,
    /// Include adjectives.
    pub adjectives: bool,
    /// Include adverbs.
    pub adverbs: bool,
    /// Include words from the subject constituent.
    pub subject: bool,
    /// Include words from the verb group.
    pub verb_constituent: bool,
    /// Include words from the object constituent.
    pub object: bool,
    /// Include words from supplements.
    pub supplement: bool,
    /// Only the head word of a noun/adjective phrase.
    pub head_only: bool,
    /// Use lemmas instead of surface forms.
    pub use_lemma: bool,
    /// Thresholds for numeric boolean features; each `t` contributes
    /// features `num<=t` and `num>t`.
    pub numeric_thresholds: Vec<f64>,
}

impl Default for FeatureOptions {
    fn default() -> Self {
        FeatureOptions::paper_smoking()
    }
}

impl FeatureOptions {
    /// The paper's smoking configuration: "we search for certain parts of
    /// speech — verbs, nouns, adjectives, or adverbs — that appear in any
    /// constituent part of the sentence; meanwhile, we disable the 'head
    /// noun or head adjective only' option, and enable the 'use of lemma'
    /// option."
    pub fn paper_smoking() -> FeatureOptions {
        FeatureOptions {
            verbs: true,
            nouns: true,
            adjectives: true,
            adverbs: true,
            subject: true,
            verb_constituent: true,
            object: true,
            supplement: true,
            head_only: false,
            use_lemma: true,
            numeric_thresholds: Vec::new(),
        }
    }

    /// The alcohol-use configuration: smoking options plus the numeric
    /// boolean feature at threshold 2 (§3.3: "whether a number less than or
    /// equal to 2 appears … whether a number greater than 2 appears").
    pub fn paper_alcohol() -> FeatureOptions {
        FeatureOptions {
            numeric_thresholds: vec![2.0],
            ..FeatureOptions::paper_smoking()
        }
    }

    /// True when all four constituents are enabled (no parse needed).
    fn all_constituents(&self) -> bool {
        self.subject && self.verb_constituent && self.object && self.supplement
    }
}

/// The feature extractor.
pub struct FeatureExtractor {
    options: FeatureOptions,
    tagger: PosTagger,
    parser: LinkParser,
}

impl FeatureExtractor {
    /// Creates an extractor with the given options.
    pub fn new(options: FeatureOptions) -> FeatureExtractor {
        FeatureExtractor {
            options,
            tagger: PosTagger::new(),
            parser: LinkParser::new(),
        }
    }

    /// The options in effect.
    pub fn options(&self) -> &FeatureOptions {
        &self.options
    }

    /// Extracts the boolean features *present* in `text` (deduplicated).
    pub fn extract(&self, text: &str) -> Vec<String> {
        let mut features: Vec<String> = Vec::new();
        let mut push = |f: String| {
            if !features.contains(&f) {
                features.push(f);
            }
        };
        for sentence in split_sentences(text) {
            let stext = sentence.text(text);
            let tokens = tokenize(stext);
            let tagged = self.tagger.tag(&tokens);
            // Constituent restriction.
            let allowed: Option<Vec<usize>> = if self.options.all_constituents() {
                None
            } else {
                self.parser.parse(&tagged).map(|linkage| {
                    let c = linkage.constituents();
                    let mut keep = Vec::new();
                    if self.options.subject {
                        keep.extend(&c.subject);
                    }
                    if self.options.verb_constituent {
                        keep.extend(&c.verb);
                    }
                    if self.options.object {
                        keep.extend(&c.object);
                    }
                    if self.options.supplement {
                        keep.extend(&c.supplement);
                    }
                    keep
                })
                // A failed parse falls back to the whole sentence, so the
                // classifier still sees features for fragments.
            };
            for (i, t) in tagged.iter().enumerate() {
                if !t.token.kind.is_word() {
                    continue;
                }
                if let Some(keep) = &allowed {
                    if !keep.contains(&i) {
                        continue;
                    }
                }
                let class_ok = (self.options.nouns && t.tag.is_noun())
                    || (self.options.verbs && t.tag.is_verb())
                    || (self.options.adjectives && t.tag.is_adjective())
                    || (self.options.adverbs && t.tag.is_adverb());
                if !class_ok {
                    continue;
                }
                if self.options.head_only && !is_phrase_head(&tagged, i) {
                    continue;
                }
                let word = if self.options.use_lemma {
                    t.lemma.as_str().to_string()
                } else {
                    t.lower().to_string()
                };
                push(word);
            }
            // Numeric boolean features.
            if !self.options.numeric_thresholds.is_empty() {
                let numbers = annotate_numbers(&tokens);
                for &t in &self.options.numeric_thresholds {
                    if numbers.iter().any(|n| n.value.as_f64() <= t) {
                        push(format!("num<={t}"));
                    }
                    if numbers.iter().any(|n| n.value.as_f64() > t) {
                        push(format!("num>{t}"));
                    }
                }
            }
        }
        features
    }
}

/// Head test: the last noun of a maximal `(JJ|NN)* NN` run, or the last
/// adjective of an adjective run not followed by a noun.
fn is_phrase_head(tagged: &[cmr_postag::TaggedToken], i: usize) -> bool {
    let tag = tagged[i].tag;
    let next = tagged.get(i + 1).map(|t| t.tag);
    if tag.is_noun() {
        // Head noun = not directly followed by another noun.
        return !next.map(|t| t.is_noun()).unwrap_or(false);
    }
    if tag.is_adjective() {
        // Attributive adjective (before a noun or another adjective) is not
        // a head; predicative adjective is.
        return !next
            .map(|t| t.is_noun() || t.is_adjective())
            .unwrap_or(false);
    }
    // Verbs/adverbs are unaffected by the head-only option.
    !matches!(tag, Tag::PUNCT)
}

/// A trainable categorical field classifier: feature extraction + ID3.
pub struct CategoricalExtractor {
    extractor: FeatureExtractor,
    params: Id3Params,
    tree: Option<Id3Tree>,
    feature_names: Vec<String>,
    label_names: Vec<String>,
}

impl CategoricalExtractor {
    /// Creates an untrained classifier.
    pub fn new(options: FeatureOptions) -> CategoricalExtractor {
        CategoricalExtractor {
            extractor: FeatureExtractor::new(options),
            params: Id3Params::default(),
            tree: None,
            feature_names: Vec::new(),
            label_names: Vec::new(),
        }
    }

    /// Builds the boolean dataset for (text, label) examples.
    pub fn build_dataset(&self, examples: &[(String, String)]) -> Dataset {
        let mut b = DatasetBuilder::new();
        for (text, label) in examples {
            let feats = self.extractor.extract(text);
            b.add(&feats, label);
        }
        b.build()
    }

    /// Trains the ID3 tree on labeled texts.
    pub fn train(&mut self, examples: &[(String, String)]) {
        let data = self.build_dataset(examples);
        self.feature_names = data.feature_names.clone();
        self.label_names = data.label_names.clone();
        self.tree = Some(Id3Tree::train(&data, self.params));
    }

    /// Classifies a text; `None` before training.
    pub fn classify(&self, text: &str) -> Option<&str> {
        let tree = self.tree.as_ref()?;
        let present = self.extractor.extract(text);
        let fv: Vec<bool> = self
            .feature_names
            .iter()
            .map(|f| present.contains(f))
            .collect();
        Some(&self.label_names[tree.predict(&fv)])
    }

    /// The trained tree, if any.
    pub fn tree(&self) -> Option<&Id3Tree> {
        self.tree.as_ref()
    }

    /// Runs the paper's evaluation protocol (repeated shuffled k-fold CV)
    /// on labeled texts without touching the trained state.
    pub fn cross_validate(&self, examples: &[(String, String)], cv: CrossValidation) -> CvResult {
        let data = self.build_dataset(examples);
        cv.run(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(options: FeatureOptions) -> FeatureExtractor {
        FeatureExtractor::new(options)
    }

    #[test]
    fn lemma_merges_inflections() {
        let e = fx(FeatureOptions::paper_smoking());
        // §3.3: "denies", "denied" and "deny" are one feature under lemma.
        let a = e.extract("She denies smoking.");
        let b = e.extract("She denied smoking.");
        assert!(a.contains(&"deny".to_string()), "{a:?}");
        assert!(b.contains(&"deny".to_string()), "{b:?}");
    }

    #[test]
    fn surface_kept_without_lemma() {
        let opts = FeatureOptions {
            use_lemma: false,
            ..FeatureOptions::paper_smoking()
        };
        let feats = fx(opts).extract("She denies smoking.");
        assert!(feats.contains(&"denies".to_string()), "{feats:?}");
    }

    #[test]
    fn pos_filtering() {
        let opts = FeatureOptions {
            nouns: false,
            adjectives: false,
            adverbs: false,
            ..FeatureOptions::paper_smoking()
        };
        let feats = fx(opts).extract("She quit smoking five years ago.");
        assert!(feats.contains(&"quit".to_string()));
        assert!(!feats.contains(&"year".to_string()), "{feats:?}");
        assert!(!feats.contains(&"ago".to_string()));
    }

    #[test]
    fn head_only_drops_modifier_nouns() {
        let opts = FeatureOptions {
            head_only: true,
            ..FeatureOptions::paper_smoking()
        };
        let feats = fx(opts).extract("Her blood pressure is high.");
        assert!(feats.contains(&"pressure".to_string()), "{feats:?}");
        assert!(!feats.contains(&"blood".to_string()), "{feats:?}");
        assert!(
            feats.contains(&"high".to_string()),
            "predicative adjective is a head"
        );
    }

    #[test]
    fn constituent_restriction() {
        let opts = FeatureOptions {
            subject: false,
            verb_constituent: true,
            object: false,
            supplement: false,
            ..FeatureOptions::paper_smoking()
        };
        let feats = fx(opts).extract("She denies alcohol use.");
        assert!(feats.contains(&"deny".to_string()), "{feats:?}");
        assert!(!feats.contains(&"alcohol".to_string()), "{feats:?}");
    }

    #[test]
    fn numeric_threshold_features() {
        let opts = FeatureOptions::paper_alcohol();
        let low = fx(opts.clone()).extract("She drinks 2 days per week.");
        assert!(low.contains(&"num<=2".to_string()), "{low:?}");
        assert!(!low.contains(&"num>2".to_string()));
        let high = fx(opts).extract("She drinks 5 days per week.");
        assert!(high.contains(&"num>2".to_string()), "{high:?}");
    }

    #[test]
    fn features_deduplicate() {
        let feats = fx(FeatureOptions::paper_smoking()).extract("smoke smoke smoke");
        assert_eq!(feats.iter().filter(|f| *f == "smoke").count(), 1);
    }

    #[test]
    fn classifier_roundtrip() {
        let mut c = CategoricalExtractor::new(FeatureOptions::paper_smoking());
        let examples: Vec<(String, String)> = vec![
            ("She has never smoked.".into(), "never".into()),
            ("She denies smoking.".into(), "never".into()),
            ("No tobacco use.".into(), "never".into()),
            ("She quit smoking five years ago.".into(), "former".into()),
            ("Former smoker, quit ten years ago.".into(), "former".into()),
            ("She is currently a smoker.".into(), "current".into()),
            ("She smokes two packs per day.".into(), "current".into()),
        ];
        c.train(&examples);
        assert_eq!(
            c.classify("She quit smoking three years ago."),
            Some("former")
        );
        assert_eq!(c.classify("She has never smoked."), Some("never"));
        assert_eq!(c.classify("She is currently a smoker."), Some("current"));
    }

    #[test]
    fn untrained_returns_none() {
        let c = CategoricalExtractor::new(FeatureOptions::paper_smoking());
        assert_eq!(c.classify("anything"), None);
    }
}
