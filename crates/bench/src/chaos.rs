//! B2 — chaos harness: extraction quality under synthetic corruption.
//!
//! The paper's corpus is clean dictation; deployed OCR/ASR front ends are
//! not. This harness corrupts the gold corpus with the seeded
//! [`NoiseInjector`] at a sweep of noise levels, pushes every level through
//! the parallel engine, and scores the output against the (uncorrupted)
//! gold labels. The product is a degradation curve: precision/recall/F1
//! versus noise, alongside the per-tier field counts that show the salvage
//! chain absorbing what the structured tiers drop.
//!
//! Two invariants matter more than the curve itself:
//!
//! * **zero panics** — corruption must degrade scores, never the process;
//! * **noise-zero identity** — at level 0 the injector is a no-op and the
//!   salvage tier is inert, so the curve's first point reproduces the clean
//!   experiment exactly.

use crate::experiments::{gold_numeric, values_equal};
use cmr_core::Schema;
use cmr_corpus::{CorpusBuilder, GoldRecord, NoiseInjector};
use cmr_engine::{Engine, EngineConfig};
use cmr_eval::{MultiValueScore, PrecisionRecall};
use cmr_ontology::Ontology;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};

/// Parameters of one chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Noise levels to sweep, each in `0.0..=1.0`.
    pub levels: Vec<f64>,
    /// Corruption seed (the corpus itself uses the builder default, so the
    /// gold labels stay those of the paper corpus).
    pub seed: u64,
    /// Corpus size.
    pub records: usize,
    /// Engine worker count (0 = one per core).
    pub jobs: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            levels: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
            seed: 7,
            records: 50,
            jobs: 0,
        }
    }
}

/// Scores and tier counts at one noise level.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosLevelReport {
    /// The noise level.
    pub noise: f64,
    /// Pooled numeric precision over the paper's eight attributes.
    pub numeric_precision: f64,
    /// Pooled numeric recall.
    pub numeric_recall: f64,
    /// Pooled numeric F1.
    pub numeric_f1: f64,
    /// Pooled F1 over all medical/surgical history terms.
    pub term_f1: f64,
    /// Numeric fields resolved by the link-grammar tier.
    pub link_grammar_fields: u64,
    /// Numeric fields resolved by the pattern tier.
    pub pattern_fields: u64,
    /// Fields (numeric or term) recovered by the salvage tier.
    pub salvage_fields: u64,
    /// Link-grammar parse failures observed while extracting.
    pub parse_failures: u64,
    /// Records that needed the salvage tier at all.
    pub degraded_records: u64,
    /// Worker panics caught by the engine. The harness's contract is that
    /// this stays zero at every level.
    pub panics: u64,
    /// Records rejected by a time budget.
    pub budget_errors: u64,
    /// Records that produced no output (panic, budget, or abort).
    pub failed_records: u64,
}

/// A full sweep: one [`ChaosLevelReport`] per level, in sweep order.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// Corruption seed used for every level.
    pub seed: u64,
    /// Corpus size.
    pub records: usize,
    /// True when the sweep was interrupted (see [`run_chaos_with`]): the
    /// levels present are complete and valid, but the sweep is partial.
    pub interrupted: bool,
    /// Per-level results.
    pub levels: Vec<ChaosLevelReport>,
}

impl ChaosReport {
    /// Total panics across the sweep (the zero-panic acceptance gate).
    pub fn total_panics(&self) -> u64 {
        self.levels.iter().map(|l| l.panics).sum()
    }
}

/// All gold history terms of a record (medical and surgical pooled —
/// mirrors how the extractor's four term lists are pooled for scoring).
fn gold_terms(rec: &GoldRecord) -> Vec<String> {
    let mut terms = rec.medical_history.clone();
    terms.extend(rec.surgical_history.iter().cloned());
    terms
}

/// Runs the sweep. Every level re-corrupts the same gold corpus with the
/// same seed (the injector keys its RNG on `(seed, text)`, so levels are
/// comparable) and scores against the uncorrupted gold labels.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    run_chaos_with(cfg, None)
}

/// [`run_chaos`] with an optional interrupt flag (e.g. raised by a
/// SIGINT handler): the sweep stops *between* noise levels when the flag
/// is seen, so every level in the report is complete and scoreable, and
/// the report is marked [`ChaosReport::interrupted`] for the caller to
/// flush as a partial result instead of losing the finished levels.
pub fn run_chaos_with(cfg: &ChaosConfig, interrupt: Option<&AtomicBool>) -> ChaosReport {
    let corpus = CorpusBuilder::new().records(cfg.records).build();
    let attrs = Schema::paper_numeric_names();
    let mut interrupted = false;
    let mut levels = Vec::with_capacity(cfg.levels.len());
    for &noise in &cfg.levels {
        if interrupt.is_some_and(|f| f.load(Ordering::Relaxed)) {
            interrupted = true;
            break;
        }
        let injector = NoiseInjector::from_level(noise, cfg.seed);
        let texts: Vec<String> = corpus
            .records
            .iter()
            .map(|r| injector.corrupt(&r.text))
            .collect();
        let refs: Vec<&str> = texts.iter().map(|t| t.as_str()).collect();
        let engine = Engine::new(
            EngineConfig {
                jobs: cfg.jobs,
                ..EngineConfig::default()
            },
            Schema::paper(),
            Ontology::full(),
        );
        let out = engine.extract_batch(&refs);

        let mut numeric = PrecisionRecall::new();
        let mut terms = MultiValueScore::new();
        let mut failed = 0u64;
        for (rec, item) in corpus.records.iter().zip(&out.items) {
            match item {
                Ok(x) => {
                    for attr in attrs {
                        let gold = gold_numeric(rec, attr);
                        match (x.numeric(attr), gold) {
                            (Some(g), Some(t)) if values_equal(&g, &t) => {
                                numeric.true_positives += 1;
                            }
                            (Some(_), Some(_)) => {
                                numeric.false_positives += 1;
                                numeric.false_negatives += 1;
                            }
                            (Some(_), None) => numeric.false_positives += 1,
                            (None, Some(_)) => numeric.false_negatives += 1,
                            (None, None) => {}
                        }
                    }
                    let mut got: Vec<String> = x.predefined_medical.clone();
                    got.extend(x.other_medical.iter().cloned());
                    got.extend(x.predefined_surgical.iter().cloned());
                    got.extend(x.other_surgical.iter().cloned());
                    terms.add_subject(&got, &gold_terms(rec));
                }
                Err(_) => {
                    // A failed record still owes its gold values: count
                    // every one as missed so failures depress recall
                    // instead of silently shrinking the denominator.
                    failed += 1;
                    for attr in attrs {
                        if gold_numeric(rec, attr).is_some() {
                            numeric.false_negatives += 1;
                        }
                    }
                    terms.add_subject::<String>(&[], &gold_terms(rec));
                }
            }
        }
        let d = out.metrics.degradation;
        levels.push(ChaosLevelReport {
            noise,
            numeric_precision: numeric.precision(),
            numeric_recall: numeric.recall(),
            numeric_f1: numeric.f1(),
            term_f1: terms.pooled().f1(),
            link_grammar_fields: d.link_grammar_fields,
            pattern_fields: d.pattern_fields,
            salvage_fields: d.salvage_fields,
            parse_failures: d.parse_failures,
            degraded_records: d.degraded_records,
            panics: out.metrics.errors.panics,
            budget_errors: out.metrics.errors.budget,
            failed_records: failed,
        });
    }
    ChaosReport {
        seed: cfg.seed,
        records: cfg.records,
        interrupted,
        levels,
    }
}

/// Parses a noise-level specification:
///
/// * `"0.3"` — a single level;
/// * `"0,0.1,0.3"` — an explicit list;
/// * `"A..B"` or `"A..B:STEP"` — an inclusive range (default step `0.1`).
pub fn parse_levels(spec: &str) -> Result<Vec<f64>, String> {
    let parse_one = |s: &str| -> Result<f64, String> {
        let v: f64 = s
            .trim()
            .parse()
            .map_err(|_| format!("bad noise level `{s}`"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("noise level {v} outside 0..=1"));
        }
        Ok(v)
    };
    if let Some((lo, rest)) = spec.split_once("..") {
        let (hi, step) = match rest.split_once(':') {
            Some((hi, step)) => (parse_one(hi)?, parse_one(step)?),
            None => (parse_one(rest)?, 0.1),
        };
        let lo = parse_one(lo)?;
        if step <= 0.0 {
            return Err(format!("range step {step} must be positive"));
        }
        if hi < lo {
            return Err(format!("empty range {lo}..{hi}"));
        }
        // Integer stepping avoids the accumulated float drift that would
        // drop or duplicate the endpoint.
        let n = ((hi - lo) / step + 1e-9).floor() as usize;
        let mut levels: Vec<f64> = (0..=n).map(|i| lo + step * i as f64).collect();
        if let Some(last) = levels.last_mut() {
            *last = last.min(hi);
        }
        return Ok(levels);
    }
    spec.split(',').map(parse_one).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn parse_levels_single_list_and_range() {
        assert!(close(&parse_levels("0.3").expect("single"), &[0.3]));
        assert!(close(
            &parse_levels("0,0.1,0.3").expect("list"),
            &[0.0, 0.1, 0.3]
        ));
        assert!(close(
            &parse_levels("0..0.5").expect("range"),
            &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        ));
        assert!(close(
            &parse_levels("0.1..0.3:0.05").expect("stepped range"),
            &[0.1, 0.15, 0.2, 0.25, 0.3]
        ));
    }

    #[test]
    fn parse_levels_rejects_garbage() {
        assert!(parse_levels("zebra").is_err());
        assert!(parse_levels("1.5").is_err());
        assert!(parse_levels("0.5..0.1").is_err());
        assert!(parse_levels("0..0.5:0").is_err());
    }

    #[test]
    fn pre_raised_interrupt_yields_an_empty_partial_report() {
        let flag = AtomicBool::new(true);
        let report = run_chaos_with(
            &ChaosConfig {
                levels: vec![0.0, 0.3],
                seed: 7,
                records: 2,
                jobs: 1,
            },
            Some(&flag),
        );
        assert!(report.interrupted);
        assert!(
            report.levels.is_empty(),
            "no level may start after the flag"
        );
    }

    #[test]
    fn chaos_sweep_is_clean_at_level_zero_and_total_under_noise() {
        let report = run_chaos(&ChaosConfig {
            levels: vec![0.0, 0.3],
            seed: 7,
            records: 4,
            jobs: 2,
        });
        assert_eq!(report.levels.len(), 2);
        assert_eq!(report.total_panics(), 0, "corruption must never panic");
        let clean = &report.levels[0];
        assert!(
            clean.numeric_f1 > 0.999,
            "clean corpus should reproduce the paper's perfect numeric score, got {}",
            clean.numeric_f1
        );
        assert_eq!(clean.salvage_fields, 0, "salvage must be inert at noise 0");
        assert_eq!(clean.degraded_records, 0);
        for level in &report.levels {
            assert_eq!(level.failed_records, 0);
        }
    }
}
