//! Ontology checks (`CMR-D020` … `CMR-D023`): CUI uniqueness, normalized
//! surface-form collisions, dangling checklist CUIs, empty surfaces.

use crate::{Diagnostic, Severity};
use cmr_ontology::{
    normalize, Concept, CONCEPTS, PREDEFINED_MEDICAL_CUIS, PREDEFINED_SURGICAL_CUIS,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Workspace-relative path of the concept tables.
pub const ASSET: &str = "crates/ontology/src/data.rs";

/// Runs every ontology check over an arbitrary concept table and
/// checklists. `checklists` pairs a checklist name with its CUIs.
pub fn check_concepts(
    concepts: &[Concept],
    checklists: &[(&str, &[&str])],
    out: &mut Vec<Diagnostic>,
) {
    // CMR-D020: duplicate CUIs.
    let mut cuis: HashSet<&str> = HashSet::new();
    for c in concepts {
        if !cuis.insert(c.cui) {
            out.push(
                Diagnostic::new(
                    "CMR-D020",
                    Severity::Warning,
                    ASSET,
                    format!("CONCEPTS[{}]", c.cui),
                    format!("CUI {} is assigned to more than one concept", c.cui),
                )
                .with_fix("give each concept a unique CUI"),
            );
        }
    }

    // CMR-D021 / CMR-D023: normalized surface collisions and empty
    // surfaces. The index uses or_insert, so on a collision the later
    // concept's surface is unreachable.
    let mut by_norm: BTreeMap<String, Vec<(&str, &str)>> = BTreeMap::new();
    for c in concepts {
        for surface in std::iter::once(&c.preferred).chain(c.synonyms.iter()) {
            let norm = normalize(surface);
            if norm.is_empty() {
                out.push(Diagnostic::new(
                    "CMR-D023",
                    Severity::Warning,
                    ASSET,
                    format!("CONCEPTS[{}] \"{surface}\"", c.cui),
                    format!(
                        "surface \"{surface}\" normalizes to the empty string and can never match"
                    ),
                ));
                continue;
            }
            by_norm.entry(norm).or_default().push((c.cui, surface));
        }
    }
    for (norm, owners) in &by_norm {
        let distinct: HashSet<&str> = owners.iter().map(|(cui, _)| *cui).collect();
        if distinct.len() > 1 {
            let list = owners
                .iter()
                .map(|(cui, s)| format!("{cui} \"{s}\""))
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diagnostic::new(
                "CMR-D021",
                Severity::Note,
                ASSET,
                format!("normalized \"{norm}\""),
                format!(
                    "surfaces of different concepts normalize identically ({list}); lookup resolves to the first, the rest are unreachable"
                ),
            ));
        }
    }

    // CMR-D022: checklist CUIs no concept defines.
    let defined: HashMap<&str, &str> = concepts.iter().map(|c| (c.cui, c.preferred)).collect();
    for (name, list) in checklists {
        for cui in *list {
            if !defined.contains_key(cui) {
                out.push(
                    Diagnostic::new(
                        "CMR-D022",
                        Severity::Warning,
                        ASSET,
                        format!("{name}[{cui}]"),
                        format!("checklist {name} references CUI {cui}, which no concept defines"),
                    )
                    .with_fix("remove the entry or add the concept"),
                );
            }
        }
    }
}

/// Runs the ontology checks over the committed tables.
pub fn check(out: &mut Vec<Diagnostic>) {
    check_concepts(
        CONCEPTS,
        &[
            ("PREDEFINED_MEDICAL_CUIS", PREDEFINED_MEDICAL_CUIS),
            ("PREDEFINED_SURGICAL_CUIS", PREDEFINED_SURGICAL_CUIS),
        ],
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_ontology::{Rarity, SemanticType};

    fn concept(
        cui: &'static str,
        preferred: &'static str,
        synonyms: &'static [&'static str],
    ) -> Concept {
        Concept {
            cui,
            preferred,
            synonyms,
            semtype: SemanticType::Disease,
            rarity: Rarity::Common,
        }
    }

    #[test]
    fn committed_ontology_is_clean_at_warning() {
        let mut out = Vec::new();
        check(&mut out);
        let bad: Vec<_> = out
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(bad.is_empty(), "committed ontology regressed: {bad:#?}");
    }

    #[test]
    fn duplicate_cui_is_flagged() {
        let mut out = Vec::new();
        check_concepts(
            &[concept("C1", "gout", &[]), concept("C1", "angina", &[])],
            &[],
            &mut out,
        );
        assert!(out.iter().any(|d| d.code == "CMR-D020"), "{out:#?}");
    }

    #[test]
    fn surface_collision_is_a_note() {
        let mut out = Vec::new();
        check_concepts(
            &[
                concept("C1", "hypertension", &["high blood pressure"]),
                concept("C2", "essential hypertension", &["hypertension"]),
            ],
            &[],
            &mut out,
        );
        let d021: Vec<_> = out.iter().filter(|d| d.code == "CMR-D021").collect();
        assert_eq!(d021.len(), 1, "{out:#?}");
        assert_eq!(d021[0].severity, Severity::Note);
        assert!(d021[0].message.contains("C1"));
        assert!(d021[0].message.contains("C2"));
    }

    #[test]
    fn dangling_checklist_cui_is_flagged() {
        let mut out = Vec::new();
        check_concepts(
            &[concept("C1", "gout", &[])],
            &[("LIST", &["C1", "C9"])],
            &mut out,
        );
        let d022: Vec<_> = out.iter().filter(|d| d.code == "CMR-D022").collect();
        assert_eq!(d022.len(), 1, "{out:#?}");
        assert!(d022[0].span.contains("C9"));
    }

    #[test]
    fn empty_surface_is_flagged() {
        let mut out = Vec::new();
        check_concepts(&[concept("C1", "gout", &["---"])], &[], &mut out);
        assert!(out.iter().any(|d| d.code == "CMR-D023"), "{out:#?}");
    }
}
