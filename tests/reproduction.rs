//! Reproduction guardrails: the paper's headline results must keep their
//! *shape* (who wins, where the failure modes sit) on every build.
//!
//! These run the same harness as `cargo run -p cmr-bench --bin repro`, on
//! the paper-default corpus.

use cmr_bench::*;
use cmr_core::{AssociationMethod, FeatureOptions};
use cmr_ontology::OntologyProfile;

#[test]
fn e1_numeric_is_perfect_at_house_style() {
    let corpus = paper_corpus();
    let report = run_numeric(&corpus, AssociationMethod::LinkWithFallback);
    assert!(report.all_perfect(), "{:?}", report.rows);
    // The link-grammar path must be doing the bulk of the work, with the
    // pattern fallback handling fragments — not the other way around.
    let link = report
        .by_method
        .iter()
        .find(|(n, _)| n == "link-grammar")
        .unwrap()
        .1;
    let pattern = report
        .by_method
        .iter()
        .find(|(n, _)| n == "pattern")
        .unwrap()
        .1;
    assert!(link > pattern * 3, "link {link} vs pattern {pattern}");
}

#[test]
fn e2_smoking_matches_paper_band() {
    let corpus = paper_corpus();
    let result = run_smoking(&corpus, FeatureOptions::paper_smoking());
    let acc = result.mean_accuracy();
    assert!(
        (0.85..=0.98).contains(&acc),
        "accuracy {acc} outside the paper band"
    );
    let (lo, hi) = result.feature_count_range();
    assert!(lo >= 3 && hi <= 12, "feature range {lo}-{hi}");
    // 45 labeled cases, each tested once per repetition.
    let tested: usize = result.confusion.iter().flatten().sum();
    assert_eq!(tested, 45 * 10);
}

#[test]
fn t1_shape_holds_under_paper_profile() {
    let corpus = paper_corpus();
    let paper = run_table1(&corpus, OntologyProfile::Paper);
    let full = run_table1(&corpus, OntologyProfile::Full);
    let recall = |r: &Table1Report, i: usize| r.rows[i].score.recall();
    let precision = |r: &Table1Report, i: usize| r.rows[i].score.precision();
    // Row order: PMH-pre, PMH-other, PSH-pre, PSH-other.
    // 1. Predefined surgical recall collapses (the paper's 35%).
    assert!(
        recall(&paper, 2) < 0.6,
        "PSH-pre recall {}",
        recall(&paper, 2)
    );
    // 2. It is the worst recall of the four attributes.
    for i in [0, 1, 3] {
        assert!(recall(&paper, 2) <= recall(&paper, i) + 1e-9, "row {i}");
    }
    // 3. Other-surgical precision is the lowest precision.
    for i in [0, 1, 2] {
        assert!(
            precision(&paper, 3) <= precision(&paper, i) + 1e-9,
            "row {i}"
        );
    }
    // 4. Predefined medical is the best-behaved attribute (paper: 96.7/96.7).
    assert!(recall(&paper, 0) > 0.9 && precision(&paper, 0) > 0.9);
    // 5. The full ontology fixes what the paper says it would fix.
    assert!(
        recall(&full, 2) > recall(&paper, 2) + 0.3,
        "synonyms restore PSH recall"
    );
    assert!(
        precision(&full, 3) >= precision(&paper, 3),
        "vocabulary restores precision"
    );
}

#[test]
fn a1_pattern_degrades_with_style_but_link_fallback_does_not() {
    let report = run_ablation_assoc(&[0.0, 1.0], 2005);
    let get = |style: f64, name: &str| {
        report
            .cells
            .iter()
            .find(|(s, n, _)| *s == style && *n == name)
            .map(|(_, _, r)| *r)
            .unwrap()
    };
    assert!(get(0.0, "link+fallback") > 0.99);
    assert!(
        get(1.0, "link+fallback") > 0.95,
        "robust to style variation"
    );
    assert!(
        get(1.0, "pattern-only") < get(1.0, "link+fallback"),
        "patterns generalize worse (the paper's §3.1 motivation)"
    );
    assert!(
        get(1.0, "link-only") < get(1.0, "link+fallback"),
        "fragments need the fallback"
    );
}

#[test]
fn x1_numeric_features_help_alcohol() {
    let corpus = paper_corpus();
    let (without, with) = run_alcohol(&corpus);
    assert!(
        with.mean_accuracy() > without.mean_accuracy(),
        "numeric boolean features must help: {} vs {}",
        with.mean_accuracy(),
        without.mean_accuracy()
    );
}

#[test]
fn figure1_diagram_shape() {
    let f = run_figure1();
    // The paper counts 4 links for the example clause and names the O link.
    assert!(f.contains("O"), "object link rendered");
    assert!(f.contains("144/90"));
    assert!(f.contains("LEFT-WALL"));
    assert!(f.contains("d(pressure, 144/90)"));
}
