//! Gold-standard labels for generated records.
//!
//! Each generated record carries the ground truth for all attributes the
//! paper's task schema extracts (18 fields, 24 attributes; §5): the eight
//! numeric attributes, the four multi-valued medical-term attributes
//! (predefined/other × medical/surgical history), and the categorical
//! attributes (smoking is the one the paper completed; alcohol use and
//! body shape are the proposed extensions).

use serde::{Deserialize, Serialize};

/// Smoking behavior — the categorical attribute the paper evaluates
/// (never / former / current).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmokingStatus {
    /// Never smoked.
    Never,
    /// Former smoker.
    Former,
    /// Currently smokes.
    Current,
}

impl SmokingStatus {
    /// Canonical label string (the dataset's class name).
    pub fn label(&self) -> &'static str {
        match self {
            SmokingStatus::Never => "never",
            SmokingStatus::Former => "former",
            SmokingStatus::Current => "current",
        }
    }
}

/// Alcohol use — the paper's future-work categorical with numeric classes
/// (never / social / 1–2 days per week / >2 days per week).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlcoholUse {
    /// No alcohol.
    Never,
    /// Social/occasional drinking without a stated frequency.
    Social,
    /// Drinks 1–2 days per week.
    UpTo2PerWeek,
    /// Drinks more than 2 days per week.
    MoreThan2PerWeek,
}

impl AlcoholUse {
    /// Canonical label string.
    pub fn label(&self) -> &'static str {
        match self {
            AlcoholUse::Never => "never",
            AlcoholUse::Social => "social",
            AlcoholUse::UpTo2PerWeek => "1-2 per week",
            AlcoholUse::MoreThan2PerWeek => ">2 per week",
        }
    }
}

/// Body shape from the physical examination (§3.3's four categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BodyShape {
    /// Thin.
    Thin,
    /// Normal build.
    Normal,
    /// Overweight.
    Overweight,
    /// Obese.
    Obese,
}

impl BodyShape {
    /// Canonical label string.
    pub fn label(&self) -> &'static str {
        match self {
            BodyShape::Thin => "thin",
            BodyShape::Normal => "normal",
            BodyShape::Overweight => "overweight",
            BodyShape::Obese => "obese",
        }
    }

    /// The adjective as dictated in the examination sentence.
    pub fn adjective(&self) -> &'static str {
        match self {
            BodyShape::Thin => "thin",
            BodyShape::Normal => "well-nourished",
            BodyShape::Overweight => "overweight",
            BodyShape::Obese => "obese",
        }
    }
}

/// One generated consultation note plus its gold labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldRecord {
    /// Patient number (the Appendix anonymizes names to numbers).
    pub patient_id: usize,
    /// Patient age in years (dictated as "{age}-year-old").
    pub age: i64,
    /// Blood pressure systolic/diastolic.
    pub blood_pressure: (i64, i64),
    /// Pulse in bpm.
    pub pulse: i64,
    /// Temperature in °F.
    pub temperature: f64,
    /// Weight in pounds.
    pub weight: i64,
    /// Age at menarche.
    pub menarche_age: i64,
    /// Gravida (number of pregnancies).
    pub gravida: i64,
    /// Para (number of live births).
    pub para: i64,
    /// Age at first live birth.
    pub first_birth_age: i64,
    /// Past medical history: gold concept *preferred names*.
    pub medical_history: Vec<String>,
    /// Past surgical history: gold concept preferred names.
    pub surgical_history: Vec<String>,
    /// Smoking status; `None` when the record does not document it.
    pub smoking: Option<SmokingStatus>,
    /// Alcohol use; `None` when undocumented.
    pub alcohol: Option<AlcoholUse>,
    /// Body shape from the physical exam.
    pub shape: Option<BodyShape>,
    /// Binary: family history of breast cancer.
    pub family_history_breast_cancer: bool,
    /// Binary: recreational drug use.
    pub drug_use: bool,
    /// Binary: any documented drug allergy.
    pub allergies_present: bool,
    /// The full record text in the Appendix's semi-structured format.
    pub text: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(SmokingStatus::Former.label(), "former");
        assert_eq!(AlcoholUse::MoreThan2PerWeek.label(), ">2 per week");
        assert_eq!(BodyShape::Obese.label(), "obese");
        assert_eq!(BodyShape::Normal.adjective(), "well-nourished");
    }
}
