//! Irregular morphology exception tables.
//!
//! These play the role of WordNet's `*.exc` exception files: forms whose
//! lemma is not reachable through suffix rules. The tables are biased toward
//! verbs and nouns that actually occur in dictated clinical notes.

/// Irregular verb forms → lemma (includes past, past participle and
/// suppletive present forms).
pub const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("am", "be"),
    ("is", "be"),
    ("are", "be"),
    ("was", "be"),
    ("were", "be"),
    ("been", "be"),
    ("being", "be"),
    ("has", "have"),
    ("had", "have"),
    ("having", "have"),
    ("does", "do"),
    ("did", "do"),
    ("done", "do"),
    ("went", "go"),
    ("gone", "go"),
    ("underwent", "undergo"),
    ("undergone", "undergo"),
    ("took", "take"),
    ("taken", "take"),
    ("gave", "give"),
    ("given", "give"),
    ("got", "get"),
    ("gotten", "get"),
    ("came", "come"),
    ("become", "become"),
    ("became", "become"),
    ("felt", "feel"),
    ("found", "find"),
    ("saw", "see"),
    ("seen", "see"),
    ("showed", "show"),
    ("shown", "show"),
    ("said", "say"),
    ("told", "tell"),
    ("quit", "quit"),
    ("began", "begin"),
    ("begun", "begin"),
    ("drank", "drink"),
    ("drunk", "drink"),
    ("ate", "eat"),
    ("eaten", "eat"),
    ("slept", "sleep"),
    ("lost", "lose"),
    ("left", "leave"),
    ("kept", "keep"),
    ("grew", "grow"),
    ("grown", "grow"),
    ("knew", "know"),
    ("known", "know"),
    ("led", "lead"),
    ("fell", "fall"),
    ("fallen", "fall"),
    ("broke", "break"),
    ("broken", "break"),
    ("wore", "wear"),
    ("worn", "wear"),
    ("drew", "draw"),
    ("drawn", "draw"),
    ("sat", "sit"),
    ("stood", "stand"),
    ("understood", "understand"),
    ("ran", "run"),
    ("run", "run"),
    ("swam", "swim"),
    ("swum", "swim"),
    ("lay", "lie"),
    ("lain", "lie"),
    ("meant", "mean"),
    ("met", "meet"),
    ("paid", "pay"),
    ("put", "put"),
    ("read", "read"),
    ("set", "set"),
    ("spoke", "speak"),
    ("spoken", "speak"),
    ("spent", "spend"),
    ("thought", "think"),
    ("wrote", "write"),
    ("written", "write"),
    ("brought", "bring"),
    ("bought", "buy"),
    ("caught", "catch"),
    ("taught", "teach"),
    ("sought", "seek"),
    ("fought", "fight"),
    ("held", "hold"),
    ("heard", "hear"),
    ("made", "make"),
    ("sent", "send"),
    ("built", "build"),
    ("bled", "bleed"),
    ("fed", "feed"),
    ("bit", "bite"),
    ("bitten", "bite"),
    ("hurt", "hurt"),
    ("cut", "cut"),
    ("hit", "hit"),
    ("let", "let"),
    ("shut", "shut"),
    ("spread", "spread"),
    ("arose", "arise"),
    ("arisen", "arise"),
    ("woke", "wake"),
    ("woken", "wake"),
    ("chose", "choose"),
    ("chosen", "choose"),
    ("rose", "rise"),
    ("risen", "rise"),
    ("withdrew", "withdraw"),
    ("withdrawn", "withdraw"),
];

/// Irregular noun plurals → singular, including Greco-Latin medical plurals.
pub const IRREGULAR_NOUNS: &[(&str, &str)] = &[
    ("children", "child"),
    ("women", "woman"),
    ("men", "man"),
    ("people", "person"),
    ("feet", "foot"),
    ("teeth", "tooth"),
    ("mice", "mouse"),
    ("geese", "goose"),
    ("lives", "life"),
    ("wives", "wife"),
    ("knives", "knife"),
    ("halves", "half"),
    ("selves", "self"),
    ("leaves", "leaf"),
    // Greco-Latin clinical plurals.
    ("diagnoses", "diagnosis"),
    ("prognoses", "prognosis"),
    ("stenoses", "stenosis"),
    ("metastases", "metastasis"),
    ("anastomoses", "anastomosis"),
    ("neuroses", "neurosis"),
    ("psychoses", "psychosis"),
    ("thromboses", "thrombosis"),
    ("fibroses", "fibrosis"),
    ("scleroses", "sclerosis"),
    ("emboli", "embolus"),
    ("thrombi", "thrombus"),
    ("bronchi", "bronchus"),
    ("fungi", "fungus"),
    ("nuclei", "nucleus"),
    ("radii", "radius"),
    ("uteri", "uterus"),
    ("foci", "focus"),
    ("vertebrae", "vertebra"),
    ("scapulae", "scapula"),
    ("fistulae", "fistula"),
    ("sequelae", "sequela"),
    ("bacteria", "bacterium"),
    ("data", "datum"),
    ("media", "medium"),
    ("criteria", "criterion"),
    ("phenomena", "phenomenon"),
    ("carcinomata", "carcinoma"),
    ("ganglia", "ganglion"),
    ("atria", "atrium"),
    ("septa", "septum"),
    ("ova", "ovum"),
    ("biopsies", "biopsy"),
    ("ostia", "ostium"),
    ("axes", "axis"),
    ("apices", "apex"),
    ("cortices", "cortex"),
    ("indices", "index"),
    ("appendices", "appendix"),
    ("matrices", "matrix"),
    ("calculi", "calculus"),
    ("stimuli", "stimulus"),
    ("alveoli", "alveolus"),
    ("villi", "villus"),
    ("nares", "naris"),
];

/// Irregular adjective/adverb comparatives and superlatives → base.
pub const IRREGULAR_ADJS: &[(&str, &str)] = &[
    ("better", "good"),
    ("best", "good"),
    ("worse", "bad"),
    ("worst", "bad"),
    ("less", "little"),
    ("least", "little"),
    ("more", "much"),
    ("most", "much"),
    ("further", "far"),
    ("furthest", "far"),
    ("farther", "far"),
    ("farthest", "far"),
    ("elder", "old"),
    ("eldest", "old"),
];

/// Lemma → irregular past tense for the inflection generator.
/// Only verbs that the corpus generator and tests need to *produce*.
pub const IRREGULAR_PAST: &[(&str, &str)] = &[
    ("be", "was"),
    ("have", "had"),
    ("do", "did"),
    ("go", "went"),
    ("undergo", "underwent"),
    ("take", "took"),
    ("give", "gave"),
    ("get", "got"),
    ("come", "came"),
    ("feel", "felt"),
    ("find", "found"),
    ("see", "saw"),
    ("show", "showed"),
    ("say", "said"),
    ("tell", "told"),
    ("quit", "quit"),
    ("begin", "began"),
    ("drink", "drank"),
    ("eat", "ate"),
    ("think", "thought"),
    ("make", "made"),
    ("know", "knew"),
    ("hold", "held"),
    ("keep", "kept"),
    ("leave", "left"),
    ("lose", "lost"),
    ("mean", "meant"),
    ("meet", "met"),
    ("pay", "paid"),
    ("put", "put"),
    ("read", "read"),
    ("run", "ran"),
    ("send", "sent"),
    ("set", "set"),
    ("sit", "sat"),
    ("sleep", "slept"),
    ("speak", "spoke"),
    ("spend", "spent"),
    ("stand", "stood"),
    ("write", "wrote"),
];

/// Lemma → irregular past participle (only where it differs from the past).
pub const IRREGULAR_PART: &[(&str, &str)] = &[
    ("be", "been"),
    ("go", "gone"),
    ("undergo", "undergone"),
    ("take", "taken"),
    ("give", "given"),
    ("get", "gotten"),
    ("see", "seen"),
    ("show", "shown"),
    ("begin", "begun"),
    ("drink", "drunk"),
    ("eat", "eaten"),
    ("know", "known"),
    ("speak", "spoken"),
    ("write", "written"),
    ("do", "done"),
    ("come", "come"),
    ("run", "run"),
];

/// Lemma → irregular plural for the inflection generator.
pub const IRREGULAR_PLURAL: &[(&str, &str)] = &[
    ("child", "children"),
    ("woman", "women"),
    ("man", "men"),
    ("person", "people"),
    ("foot", "feet"),
    ("tooth", "teeth"),
    ("life", "lives"),
    ("diagnosis", "diagnoses"),
    ("metastasis", "metastases"),
    ("biopsy", "biopsies"),
    ("vertebra", "vertebrae"),
    ("bronchus", "bronchi"),
    ("uterus", "uteri"),
    ("criterion", "criteria"),
    ("datum", "data"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tables_have_no_duplicate_keys() {
        for table in [IRREGULAR_VERBS, IRREGULAR_NOUNS, IRREGULAR_ADJS] {
            let mut seen = HashSet::new();
            for (k, _) in table {
                assert!(seen.insert(*k), "duplicate irregular key {k}");
            }
        }
    }

    #[test]
    fn tables_are_lowercase() {
        for table in [
            IRREGULAR_VERBS,
            IRREGULAR_NOUNS,
            IRREGULAR_ADJS,
            IRREGULAR_PAST,
            IRREGULAR_PART,
            IRREGULAR_PLURAL,
        ] {
            for (k, v) in table {
                assert_eq!(*k, k.to_lowercase());
                assert_eq!(*v, v.to_lowercase());
            }
        }
    }

    #[test]
    fn past_and_participle_lemmas_lemmatize_back() {
        // Inflection table values must round-trip through the analysis table.
        let verbs: std::collections::HashMap<_, _> = IRREGULAR_VERBS.iter().copied().collect();
        for (lemma, past) in IRREGULAR_PAST {
            if let Some(l) = verbs.get(past) {
                assert_eq!(l, lemma, "past {past}");
            }
        }
    }
}
