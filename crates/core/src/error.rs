//! The crate-level error taxonomy.
//!
//! Library code in this workspace never panics on malformed input: every
//! failure mode is a value. [`CmrError`] is the umbrella type callers that
//! want a single error channel (the CLI, scripted harnesses) can collapse
//! the specific errors into; the extraction APIs themselves keep their
//! precise types ([`crate::BudgetExceeded`],
//! [`crate::ParseFailureKind`]).

use std::fmt;

/// Any failure the extraction system can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmrError {
    /// A per-record extraction budget tripped.
    Budget(crate::BudgetExceeded),
    /// A sentence failed to link-parse (tiered extraction normally absorbs
    /// this; it surfaces only through APIs that expose single parses).
    Parse(crate::ParseFailureKind),
}

impl fmt::Display for CmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmrError::Budget(b) => write!(
                f,
                "extraction budget exceeded after {} sentences",
                b.sentences_done
            ),
            CmrError::Parse(kind) => {
                let reason = match kind {
                    crate::ParseFailureKind::Empty => "sentence empty after stripping",
                    crate::ParseFailureKind::TooLong => "sentence exceeds parser window",
                    crate::ParseFailureKind::NoDisjuncts => "word with no usable disjunct",
                    crate::ParseFailureKind::NoLinkage => "no planar connected linkage",
                    crate::ParseFailureKind::Cancelled => "search cancelled by deadline",
                };
                write!(f, "link parse failed: {reason}")
            }
        }
    }
}

impl std::error::Error for CmrError {}

impl From<crate::BudgetExceeded> for CmrError {
    fn from(b: crate::BudgetExceeded) -> CmrError {
        CmrError::Budget(b)
    }
}

impl From<crate::ParseFailureKind> for CmrError {
    fn from(kind: crate::ParseFailureKind) -> CmrError {
        CmrError::Parse(kind)
    }
}

impl From<cmr_linkgram::ParseFailure> for CmrError {
    fn from(failure: cmr_linkgram::ParseFailure) -> CmrError {
        CmrError::Parse(failure.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: CmrError = crate::BudgetExceeded { sentences_done: 7 }.into();
        assert!(e.to_string().contains("7 sentences"));
        let e: CmrError = cmr_linkgram::ParseFailure::NoLinkage.into();
        assert_eq!(e, CmrError::Parse(crate::ParseFailureKind::NoLinkage));
        assert!(e.to_string().contains("linkage"));
    }
}
