//! The link grammar dictionary for clinical dictation English.
//!
//! Words are assigned *classes*; each class has one expression. Assignment
//! is two-staged, which is how the parser stays open-vocabulary without a
//! 60k-word dictionary:
//!
//! 1. an explicit word table covers the closed class (determiners,
//!    prepositions, auxiliaries, conjunctions, …);
//! 2. any other word falls back to a generic class chosen by its POS tag
//!    (the same role the UNKNOWN-WORD device plays in the original parser).
//!
//! Connector inventory (a pragmatic subset of Sleator & Temperley's):
//!
//! | link | meaning                                   |
//! |------|-------------------------------------------|
//! | `Wd` | wall → head of a declarative sentence     |
//! | `Wn` | wall → head of a nominal fragment         |
//! | `S`  | subject noun → finite verb (`Ss`/`Sp`)    |
//! | `O`  | verb → object noun                        |
//! | `D`  | determiner → noun                         |
//! | `A`  | attributive adjective → noun              |
//! | `AN` | noun modifier → head noun (compounds)     |
//! | `NM` | head noun → trailing number ("age 10")    |
//! | `M`  | noun → postnominal modifier (preposition) |
//! | `MV` | verb → post-verbal modifier               |
//! | `J`  | preposition → its object                  |
//! | `JT` | time noun → "ago"                         |
//! | `P`  | be → predicative adjective                |
//! | `Pv` | be → passive participle                   |
//! | `Pg` | verb → gerund complement                  |
//! | `T`  | have → past participle                    |
//! | `I`  | modal/to → infinitive                     |
//! | `TO` | verb → infinitival "to"                   |
//! | `E`  | pre-verbal adverb → verb                  |
//! | `EB` | be → post-copular adverb                  |
//! | `EA` | adverb → adjective                        |
//! | `R`  | noun → relative pronoun                   |
//! | `MX` | head → coordinator ("and", ",")           |
//! | `N`  | "not" after auxiliary                     |

use crate::expr::{expand, parse_expr, Disjunct};
use cmr_postag::{Tag, TaggedToken};
use cmr_text::{intern, Sym};
use std::collections::HashMap;

/// Maximum disjuncts one class expression may expand to.
const EXPANSION_CAP: usize = 100_000;

/// Generic class expressions, selected by POS tag for words not in the word
/// table.
const CLASS_DEFS: &[(&str, &str)] = &[
    // The wall starts every parse: declarative sentence head, or (at a cost)
    // the head noun of a nominal fragment.
    ("LEFT-WALL", "Wd+ or [Wn+]"),
    // Nouns. Role alternatives: subject (with optional wall), fragment head,
    // object, prepositional object, time-phrase head, compound modifier.
    // Coordination (MX) may sit closer or farther than the role connector.
    (
        "noun-sg",
        "{@AN-} & {@A-} & {D-} & {NM+} & {R+} & {@M+} & {@MX+} & \
         (({Wd-} & Ss+) or [Wn-] or O- or J- or [JT+] or AN+) & {@MX+}",
    ),
    (
        "noun-pl",
        "{@AN-} & {@A-} & {D-} & {NM+} & {R+} & {@M+} & {@MX+} & \
         (({Wd-} & Sp+) or [Wn-] or O- or J- or [JT+] or AN+) & {@MX+}",
    ),
    // Numbers: determiner of a unit noun, trailing numeric modifier, or a
    // full nominal (object/prepositional object/fragment head).
    (
        "number",
        "(D+ or NM- or ({NM+} & {@MX+} & (O- or J- or [Wn-] or ({Wd-} & Ss+)) & {@MX+}))",
    ),
    // Finite verbs.
    ("verb-z", "{@E-} & Ss- & {O+ or Pg+ or TO+} & {@MV+}"),
    ("verb-p", "{@E-} & Sp- & {O+ or Pg+ or TO+} & {@MV+}"),
    ("verb-d", "{@E-} & S- & {O+ or Pg+ or TO+} & {@MV+}"),
    // Base verb after modal/to.
    ("verb-base", "{@E-} & I- & {O+ or Pg+ or TO+} & {@MV+}"),
    // Gerund: complement of a verb, or nominal subject/object; takes its own
    // object and modifiers.
    // The bare-object reading ([O-]) is costed so that a gerund after a
    // verb prefers the Pg complement analysis ("quit smoking").
    (
        "verb-g",
        "{@E-} & (Pg- or ({Wd-} & Ss+) or [Wn-] or [O-] or J- or [A+]) & {O+} & {@MV+}",
    ),
    // Past participle: after have (T), passive after be (Pv), or (costly)
    // prenominal adjective reading.
    (
        "verb-n",
        "({@E-} & (T- or Pv-) & {O+ or Pg+ or TO+} & {@MV+}) or [A+]",
    ),
    // Adjectives: attributive, or predicative after be/feel.
    (
        "adj",
        "{@EA-} & (A+ or (P- & {@MV+} & {TO+}) or ([Wn-] & {@MV+}))",
    ),
    // Adverbs.
    ("adv", "E+ or MV- or EB- or EA+ or [Wn-]"),
    // Prepositions.
    ("prep", "(M- or MV- or [Wn-]) & J+"),
    // Determiners & possessives.
    ("det", "D+"),
    // Pronouns (subject/object).
    ("pron", "({Wd-} & (Ss+ or Sp+)) or O- or J-"),
    // Coordinators: attach leftward to the first conjunct head, take the
    // next conjunct as object. A comma may instead glue onto a following
    // "and" (the Oxford comma in ", and weight of 154 pounds").
    ("coord", "({XC-} & MX- & (J+ or [MV+])) or XC+"),
    // Relative pronouns: modify a noun, act as subject of the relative verb.
    ("rel", "R- & (Ss+ or Sp+)"),
    // Modals.
    ("modal", "{@E-} & S- & I+ & {@MV+}"),
    // Infinitival "to".
    ("to", "(TO- or MV- or M-) & I+"),
    // "not"/"never" directly after an auxiliary are handled as E+ adverbs by
    // the adv class; "n't" sticks to the auxiliary (N).
    ("neg", "N- or E+ or EB-"),
    // "ago": takes the time noun phrase on its left, optionally modifying a
    // verb (in fragments there is none to modify).
    ("ago", "JT- & {MV- or [Wn-]}"),
    // be/have/do get dedicated classes.
    (
        "be-z",
        "{@E-} & Ss- & {EB+} & (O+ or P+ or Pv+ or Pg+ or MV+ or TO+) & {@MV+} & {N+}",
    ),
    (
        "be-p",
        "{@E-} & Sp- & {EB+} & (O+ or P+ or Pv+ or Pg+ or MV+ or TO+) & {@MV+} & {N+}",
    ),
    (
        "be-d",
        "{@E-} & S- & {EB+} & (O+ or P+ or Pv+ or Pg+ or MV+ or TO+) & {@MV+} & {N+}",
    ),
    // "be" after modal: "will be".
    ("be-base", "I- & {EB+} & (O+ or P+ or Pv+ or Pg+) & {@MV+}"),
    // been/being.
    ("be-n", "T- & {EB+} & (O+ or P+ or Pv+ or Pg+) & {@MV+}"),
    ("be-g", "Pg- & {EB+} & (O+ or P+ or Pv+) & {@MV+}"),
    ("have-z", "{@E-} & Ss- & (T+ or O+ or TO+) & {@MV+} & {N+}"),
    ("have-p", "{@E-} & Sp- & (T+ or O+ or TO+) & {@MV+} & {N+}"),
    ("have-d", "{@E-} & S- & (T+ or O+ or TO+) & {@MV+} & {N+}"),
    ("do-z", "{@E-} & Ss- & {N+} & {I+ or O+} & {@MV+}"),
    ("do-p", "{@E-} & Sp- & {N+} & {I+ or O+} & {@MV+}"),
    ("do-d", "{@E-} & S- & {N+} & {I+ or O+} & {@MV+}"),
];

/// Explicit word table: word → class name.
const WORD_CLASSES: &[(&str, &str)] = &[
    ("the", "det"),
    ("a", "det"),
    ("an", "det"),
    ("this", "det"),
    ("that", "det"),
    ("these", "det"),
    ("those", "det"),
    ("no", "det"),
    ("any", "det"),
    ("some", "det"),
    ("each", "det"),
    ("every", "det"),
    ("all", "det"),
    ("both", "det"),
    ("another", "det"),
    ("her", "det"),
    ("his", "det"),
    ("their", "det"),
    ("its", "det"),
    ("my", "det"),
    ("our", "det"),
    ("your", "det"),
    ("she", "pron"),
    ("he", "pron"),
    ("it", "pron"),
    ("they", "pron"),
    ("we", "pron"),
    ("i", "pron"),
    ("you", "pron"),
    ("him", "pron"),
    ("them", "pron"),
    ("none", "pron"),
    ("who", "rel"),
    ("which", "rel"),
    ("and", "coord"),
    ("or", "coord"),
    ("but", "coord"),
    (",", "coord"),
    ("of", "prep"),
    ("in", "prep"),
    ("on", "prep"),
    ("at", "prep"),
    ("by", "prep"),
    ("for", "prep"),
    ("with", "prep"),
    ("without", "prep"),
    ("from", "prep"),
    ("into", "prep"),
    ("during", "prep"),
    ("after", "prep"),
    ("before", "prep"),
    ("since", "prep"),
    ("until", "prep"),
    ("about", "prep"),
    ("per", "prep"),
    ("between", "prep"),
    ("over", "prep"),
    ("under", "prep"),
    ("within", "prep"),
    ("through", "prep"),
    ("to", "to"),
    ("not", "neg"),
    ("never", "adv"),
    ("ago", "ago"),
    ("is", "be-z"),
    ("was", "be-d"),
    ("are", "be-p"),
    ("were", "be-d"),
    ("am", "be-p"),
    ("be", "be-base"),
    ("been", "be-n"),
    ("being", "be-g"),
    ("has", "have-z"),
    ("have", "have-p"),
    ("had", "have-d"),
    ("does", "do-z"),
    ("do", "do-p"),
    ("did", "do-d"),
    ("will", "modal"),
    ("would", "modal"),
    ("can", "modal"),
    ("could", "modal"),
    ("may", "modal"),
    ("might", "modal"),
    ("should", "modal"),
    ("must", "modal"),
    ("shall", "modal"),
];

/// POS-tag fallback table: tag → class name. `tag_class` and the interned
/// `tag_ids` index are both derived from this one table so they cannot
/// diverge.
const TAG_CLASSES: &[(Tag, &str)] = &[
    (Tag::NN, "noun-sg"),
    (Tag::NNP, "noun-sg"),
    (Tag::NNS, "noun-pl"),
    (Tag::CD, "number"),
    (Tag::JJ, "adj"),
    (Tag::JJR, "adj"),
    (Tag::JJS, "adj"),
    (Tag::VBZ, "verb-z"),
    (Tag::VBP, "verb-p"),
    (Tag::VB, "verb-base"),
    (Tag::VBD, "verb-d"),
    (Tag::VBG, "verb-g"),
    (Tag::VBN, "verb-n"),
    (Tag::RB, "adv"),
    (Tag::RBR, "adv"),
    (Tag::RBS, "adv"),
    (Tag::IN, "prep"),
    (Tag::DT, "det"),
    (Tag::PRPS, "det"),
    (Tag::PRP, "pron"),
    (Tag::EX, "pron"),
    (Tag::CC, "coord"),
    (Tag::MD, "modal"),
    (Tag::TO, "to"),
    (Tag::WP, "rel"),
    (Tag::WDT, "rel"),
];

/// A defect in a dictionary definition, found while compiling it.
#[derive(Debug, Clone, PartialEq)]
pub enum DictError {
    /// A class expression failed to parse.
    BadClass {
        /// The class whose expression is malformed.
        class: &'static str,
        /// The underlying expression parse error.
        error: crate::expr::ParseError,
    },
    /// The dictionary defines no `LEFT-WALL` class (or it compiles to no
    /// disjuncts), so nothing could ever anchor a linkage.
    MissingWall,
}

impl std::fmt::Display for DictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictError::BadClass { class, error } => {
                write!(f, "dictionary class {class}: {error}")
            }
            DictError::MissingWall => write!(f, "dictionary has no usable LEFT-WALL class"),
        }
    }
}

impl std::error::Error for DictError {}

/// A class's disjuncts in ready-to-parse form, computed once per
/// dictionary instead of once per parse:
///
/// * connector lists reversed to the parser's farthest-first order,
/// * sorted by (left, right) shape then cost, duplicates collapsed to the
///   cheapest (exactly what the parser's old per-parse prune did),
/// * indexed by the interned base of the farthest (head) connector on each
///   side, so the region split's candidate scan is a hash probe on a `u32`.
#[derive(Debug, Clone)]
pub(crate) struct WordShape {
    pub(crate) disjuncts: Vec<Disjunct>,
    pub(crate) by_left_head: HashMap<Sym, Vec<u16>>,
    pub(crate) by_right_head: HashMap<Sym, Vec<u16>>,
}

impl WordShape {
    fn build(raw: &[Disjunct]) -> WordShape {
        let mut disjuncts: Vec<Disjunct> = raw
            .iter()
            .map(|d| {
                let mut nd = d.clone();
                nd.left.reverse();
                nd.right.reverse();
                nd
            })
            .collect();
        disjuncts.sort_by(|a, b| {
            (&a.left, &a.right)
                .cmp(&(&b.left, &b.right))
                .then(a.cost.total_cmp(&b.cost))
        });
        disjuncts.dedup_by(|b, a| a.left == b.left && a.right == b.right);
        debug_assert!(disjuncts.len() <= u16::MAX as usize, "shape index is u16");
        let mut by_left_head: HashMap<Sym, Vec<u16>> = HashMap::new();
        let mut by_right_head: HashMap<Sym, Vec<u16>> = HashMap::new();
        for (i, d) in disjuncts.iter().enumerate() {
            if let Some(c) = d.left.first() {
                by_left_head.entry(c.base_sym()).or_default().push(i as u16);
            }
            if let Some(c) = d.right.first() {
                by_right_head
                    .entry(c.base_sym())
                    .or_default()
                    .push(i as u16);
            }
        }
        WordShape {
            disjuncts,
            by_left_head,
            by_right_head,
        }
    }
}

/// The compiled dictionary.
#[derive(Debug, Clone)]
pub struct Dictionary {
    classes: HashMap<&'static str, Vec<Disjunct>>,
    words: HashMap<&'static str, &'static str>,
    /// LEFT-WALL disjuncts, validated at construction so [`Dictionary::wall`]
    /// is infallible.
    wall: Vec<Disjunct>,
    /// Parse-ready shapes, one per class, indexed by the ids below.
    shapes: Vec<WordShape>,
    /// Word-table lookup keyed on the interned lowercase form: value is the
    /// interned class key (the word itself) and the shape index.
    word_ids: HashMap<Sym, (Sym, u16)>,
    /// POS-tag fallback: value is the interned class name and shape index.
    tag_ids: HashMap<Tag, (Sym, u16)>,
    /// Shape index of LEFT-WALL.
    wall_id: u16,
    /// Class key for tokens no rule covers (`"-"`).
    unknown: Sym,
}

impl Default for Dictionary {
    fn default() -> Self {
        Self::clinical_english()
    }
}

impl Dictionary {
    /// Builds the built-in clinical English dictionary.
    ///
    /// The built-in definitions are static and covered by tests, so a
    /// compile failure here is a bug in this crate, not a runtime
    /// condition; the `expect` documents that invariant. Callers that want
    /// the failure as a value use [`Dictionary::try_clinical_english`].
    pub fn clinical_english() -> Dictionary {
        Self::try_clinical_english().expect("built-in clinical dictionary compiles")
    }

    /// Builds the built-in clinical English dictionary, reporting any
    /// definition defect as a [`DictError`] instead of panicking.
    pub fn try_clinical_english() -> Result<Dictionary, DictError> {
        let mut classes = HashMap::new();
        let mut shapes = Vec::with_capacity(CLASS_DEFS.len());
        let mut shape_ids: HashMap<&'static str, u16> = HashMap::new();
        for (name, text) in CLASS_DEFS {
            let expr =
                parse_expr(text).map_err(|error| DictError::BadClass { class: name, error })?;
            let expanded = expand(&expr, EXPANSION_CAP);
            shape_ids.insert(name, shapes.len() as u16);
            shapes.push(WordShape::build(&expanded));
            classes.insert(*name, expanded);
        }
        let words: HashMap<&'static str, &'static str> = WORD_CLASSES.iter().copied().collect();
        let wall = classes
            .get("LEFT-WALL")
            .filter(|w| !w.is_empty())
            .cloned()
            .ok_or(DictError::MissingWall)?;
        let wall_id = *shape_ids.get("LEFT-WALL").ok_or(DictError::MissingWall)?;
        // The static tables are internally consistent (each word/tag class
        // names a defined class); tests cover it, the expect documents it.
        let id_of = |class: &str| -> u16 {
            *shape_ids
                .get(class)
                .expect("word/tag tables reference defined classes")
        };
        let mut word_ids = HashMap::with_capacity(WORD_CLASSES.len());
        for (word, class) in WORD_CLASSES {
            let sym = intern(word);
            word_ids.insert(sym, (sym, id_of(class)));
        }
        let mut tag_ids = HashMap::with_capacity(TAG_CLASSES.len());
        for (tag, class) in TAG_CLASSES {
            tag_ids.insert(*tag, (intern(class), id_of(class)));
        }
        Ok(Dictionary {
            classes,
            words,
            wall,
            shapes,
            word_ids,
            tag_ids,
            wall_id,
            unknown: intern("-"),
        })
    }

    /// Disjuncts of the left wall (validated non-empty at construction).
    pub fn wall(&self) -> &[Disjunct] {
        &self.wall
    }

    /// The class key a token resolves to: the word itself when it is in the
    /// explicit word table, otherwise the generic class of its POS tag.
    /// Two token sequences with equal key sequences get identical disjunct
    /// tables — which is what makes parse results cacheable across, e.g.,
    /// the same vitals template with different numbers.
    pub fn class_key(&self, tok: &TaggedToken) -> &'static str {
        let lower = tok.lower();
        if let Some((word, _)) = self.words.get_key_value(lower) {
            return word;
        }
        self.tag_class(tok.tag).unwrap_or("-")
    }

    /// Interned equivalent of [`Dictionary::class_key`]: the parser builds
    /// cache signatures from these, so a signature probe hashes `u32`s
    /// instead of a vector of string pointers.
    pub fn class_key_sym(&self, tok: &TaggedToken) -> Sym {
        if let Some(&(key, _)) = self.word_ids.get(&tok.lower) {
            return key;
        }
        match self.tag_ids.get(&tok.tag) {
            Some(&(key, _)) => key,
            None => self.unknown,
        }
    }

    /// The parse-ready shape a token resolves to, or `None` when no rule
    /// covers it (stray punctuation), which fails the parse as before.
    pub(crate) fn shape_of(&self, tok: &TaggedToken) -> Option<&WordShape> {
        let id = if let Some(&(_, id)) = self.word_ids.get(&tok.lower) {
            id
        } else {
            self.tag_ids.get(&tok.tag).map(|&(_, id)| id)?
        };
        self.shapes.get(id as usize)
    }

    /// Parse-ready LEFT-WALL shape.
    pub(crate) fn wall_shape(&self) -> &WordShape {
        &self.shapes[self.wall_id as usize]
    }

    fn tag_class(&self, tag: Tag) -> Option<&'static str> {
        TAG_CLASSES
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, class)| *class)
    }

    /// Disjuncts for a word given its tagged form. Returns an empty slice
    /// for words that cannot take part in a linkage (stray punctuation),
    /// which makes the whole parse fail — the pattern fallback then runs, as
    /// in the paper.
    pub fn disjuncts(&self, tok: &TaggedToken) -> &[Disjunct] {
        let lower = tok.lower();
        if let Some(class) = self.words.get(lower) {
            return self.class(class);
        }
        match self.tag_class(tok.tag) {
            Some(class) => self.class(class),
            None => &[],
        }
    }

    fn class(&self, name: &str) -> &[Disjunct] {
        self.classes.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of classes (for diagnostics).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total compiled disjuncts across classes (for diagnostics).
    pub fn disjunct_count(&self) -> usize {
        self.classes.values().map(Vec::len).sum()
    }

    /// Class names in deterministic (sorted) order, for asset analyzers
    /// that iterate the whole dictionary.
    pub fn class_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.classes.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Compiled disjuncts of a class by name, or `None` for an unknown
    /// class.
    pub fn class_disjuncts(&self, name: &str) -> Option<&[Disjunct]> {
        self.classes.get(name).map(Vec::as_slice)
    }
}

/// The raw `(class, connector expression)` definition table the built-in
/// dictionary compiles from, exposed for static analysis.
pub fn class_defs() -> &'static [(&'static str, &'static str)] {
    CLASS_DEFS
}

/// The raw `(word, class)` table, in source order (later entries shadow
/// earlier ones at build time), exposed for static analysis.
pub fn word_classes() -> &'static [(&'static str, &'static str)] {
    WORD_CLASSES
}

/// The raw `(POS tag, class)` fallback table, exposed for static analysis.
pub fn tag_classes() -> &'static [(Tag, &'static str)] {
    TAG_CLASSES
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_postag::PosTagger;
    use cmr_text::tokenize;

    #[test]
    fn builds_without_panicking() {
        let d = Dictionary::clinical_english();
        assert!(d.class_count() > 20);
        assert!(d.disjunct_count() > 100);
    }

    #[test]
    fn fallible_constructor_succeeds_on_builtin_grammar() {
        // This is the invariant that lets clinical_english() use expect().
        let d = Dictionary::try_clinical_english().expect("built-in grammar compiles");
        assert!(!d.wall().is_empty());
    }

    #[test]
    fn wall_has_disjuncts() {
        let d = Dictionary::clinical_english();
        assert!(!d.wall().is_empty());
    }

    #[test]
    fn word_table_beats_pos_fallback() {
        let d = Dictionary::clinical_english();
        let tagged = PosTagger::new().tag(&tokenize("of"));
        let dis = d.disjuncts(&tagged[0]);
        // prep: (M- or MV- or [Wn-]) & J+ → 3 disjuncts
        assert_eq!(dis.len(), 3);
        assert!(dis.iter().all(|x| x.right.iter().any(|c| c.base == "J")));
    }

    #[test]
    fn unknown_nouns_get_generic_class() {
        let d = Dictionary::clinical_english();
        let tagged = PosTagger::new().tag(&tokenize("hydrochlorothiazide"));
        assert!(!d.disjuncts(&tagged[0]).is_empty());
    }

    #[test]
    fn stray_punctuation_has_no_disjuncts() {
        let d = Dictionary::clinical_english();
        let tagged = PosTagger::new().tag(&tokenize(":"));
        assert!(d.disjuncts(&tagged[0]).is_empty());
    }

    #[test]
    fn comma_is_a_coordinator() {
        let d = Dictionary::clinical_english();
        let tagged = PosTagger::new().tag(&tokenize(","));
        assert!(!d.disjuncts(&tagged[0]).is_empty());
    }

    #[test]
    fn expansion_sizes_are_sane() {
        let d = Dictionary::clinical_english();
        // No class should exceed a few thousand disjuncts.
        assert!(d.disjunct_count() < 20_000, "total {}", d.disjunct_count());
    }
}
