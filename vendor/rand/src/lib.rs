//! Offline stand-in for `rand` 0.10.
//!
//! Implements the trait surface this workspace uses — `SeedableRng`,
//! `RngExt` (`random`, `random_range`, `random_bool`), `seq::SliceRandom`
//! (`choose`, `shuffle`) — over a deterministic xoshiro256++ generator
//! seeded through SplitMix64. The stream differs from the real crate's
//! ChaCha12 `StdRng`, so seed-tied corpora differ from ones generated with
//! real rand, but all statistical properties the generators rely on hold
//! and every seed is reproducible across platforms and runs.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derives a full seed from a `u64` (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, the standard recommended seeding.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from all bit patterns / the unit interval.
pub trait StandardUniform: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Primitive types uniformly samplable from a range (i128 round-trip is
/// lossless for every implementor).
pub trait SampleUniform: Copy + PartialOrd {
    #[doc(hidden)]
    fn to_i128(self) -> i128;
    #[doc(hidden)]
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges a value can be drawn from.
///
/// Blanket impls over [`SampleUniform`] (rather than one impl per primitive)
/// so `rng.random_range(32..=78)` leaves an integer-type variable behind and
/// literal fallback to `i32` still applies.
pub trait SampleRange<T> {
    /// Samples uniformly from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        let offset = (rng.next_u64() as u128) % ((end - start) as u128);
        T::from_i128(start + offset as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        let offset = (rng.next_u64() as u128) % ((end - start) as u128 + 1);
        T::from_i128(start + offset as i128)
    }
}

/// The user-facing sampling methods (rand 0.10 naming; `Rng` aliases it).
pub trait RngExt: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Pre-0.10 alias, still widely imported.
pub use RngExt as Rng;

/// Named generators.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Iterator returned by [`SliceRandom::sample`].
    pub struct SliceSampleIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceSampleIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceSampleIter<'_, T> {}

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer when the slice
        /// is shorter than `amount`).
        fn sample<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceSampleIter<'_, Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }

        fn sample<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceSampleIter<'_, T> {
            // Partial Fisher–Yates over the index vector.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.random_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            SliceSampleIter {
                slice: self,
                indices: idx.into_iter(),
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.random_range(0..=i));
            }
        }
    }

    /// 0.10 name for the read-only half of [`SliceRandom`].
    pub use SliceRandom as IndexedRandom;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(32..=78);
            assert!((32..=78).contains(&v));
            let u: usize = rng.random_range(0..10);
            assert!(u < 10);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.35)).count();
        assert!((3000..4000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle changed the order");
    }

    #[test]
    fn choose_covers_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
