//! Closed-class word table.
//!
//! Function words are few and unambiguous enough to enumerate; they anchor
//! the contextual disambiguation of open-class words around them.

use crate::tag::Tag;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Closed-class entries: word → tags in preference order (first is default).
pub const CLOSED: &[(&str, &[Tag])] = &[
    // determiners
    ("the", &[Tag::DT]),
    ("a", &[Tag::DT]),
    ("an", &[Tag::DT]),
    ("this", &[Tag::DT]),
    ("that", &[Tag::DT, Tag::IN, Tag::WDT]),
    ("these", &[Tag::DT]),
    ("those", &[Tag::DT]),
    ("each", &[Tag::DT]),
    ("every", &[Tag::DT]),
    ("some", &[Tag::DT]),
    ("any", &[Tag::DT]),
    ("no", &[Tag::DT]),
    ("all", &[Tag::DT]),
    ("both", &[Tag::DT]),
    ("either", &[Tag::DT]),
    ("neither", &[Tag::DT]),
    ("another", &[Tag::DT]),
    ("such", &[Tag::DT]),
    // pronouns
    ("she", &[Tag::PRP]),
    ("he", &[Tag::PRP]),
    ("it", &[Tag::PRP]),
    ("they", &[Tag::PRP]),
    ("we", &[Tag::PRP]),
    ("i", &[Tag::PRP]),
    ("you", &[Tag::PRP]),
    ("them", &[Tag::PRP]),
    ("him", &[Tag::PRP]),
    ("me", &[Tag::PRP]),
    ("us", &[Tag::PRP]),
    ("herself", &[Tag::PRP]),
    ("himself", &[Tag::PRP]),
    ("itself", &[Tag::PRP]),
    ("none", &[Tag::PRP]),
    ("her", &[Tag::PRPS, Tag::PRP]),
    ("his", &[Tag::PRPS]),
    ("their", &[Tag::PRPS]),
    ("its", &[Tag::PRPS]),
    ("my", &[Tag::PRPS]),
    ("our", &[Tag::PRPS]),
    ("your", &[Tag::PRPS]),
    // prepositions / subordinators
    ("of", &[Tag::IN]),
    ("in", &[Tag::IN]),
    ("on", &[Tag::IN]),
    ("at", &[Tag::IN]),
    ("by", &[Tag::IN]),
    ("for", &[Tag::IN]),
    ("with", &[Tag::IN]),
    ("without", &[Tag::IN]),
    ("from", &[Tag::IN]),
    ("into", &[Tag::IN]),
    ("during", &[Tag::IN]),
    ("after", &[Tag::IN]),
    ("before", &[Tag::IN]),
    ("since", &[Tag::IN]),
    ("until", &[Tag::IN]),
    ("about", &[Tag::IN, Tag::RB]),
    ("against", &[Tag::IN]),
    ("between", &[Tag::IN]),
    ("through", &[Tag::IN]),
    ("over", &[Tag::IN]),
    ("under", &[Tag::IN]),
    ("within", &[Tag::IN]),
    ("per", &[Tag::IN]),
    ("as", &[Tag::IN]),
    ("if", &[Tag::IN]),
    ("because", &[Tag::IN]),
    ("while", &[Tag::IN]),
    ("although", &[Tag::IN]),
    ("though", &[Tag::IN]),
    ("whether", &[Tag::IN]),
    ("than", &[Tag::IN]),
    ("up", &[Tag::IN, Tag::RB]),
    ("out", &[Tag::IN, Tag::RB]),
    ("off", &[Tag::IN, Tag::RB]),
    ("down", &[Tag::IN, Tag::RB]),
    // conjunctions
    ("and", &[Tag::CC]),
    ("or", &[Tag::CC]),
    ("but", &[Tag::CC]),
    ("nor", &[Tag::CC]),
    ("plus", &[Tag::CC]),
    // infinitival "to"
    ("to", &[Tag::TO]),
    // modals
    ("will", &[Tag::MD]),
    ("would", &[Tag::MD]),
    ("can", &[Tag::MD]),
    ("could", &[Tag::MD]),
    ("may", &[Tag::MD]),
    ("might", &[Tag::MD]),
    ("shall", &[Tag::MD]),
    ("should", &[Tag::MD]),
    ("must", &[Tag::MD]),
    // be/have/do (explicit forms; tags chosen by form)
    ("be", &[Tag::VB]),
    ("am", &[Tag::VBP]),
    ("is", &[Tag::VBZ]),
    ("are", &[Tag::VBP]),
    ("was", &[Tag::VBD]),
    ("were", &[Tag::VBD]),
    ("been", &[Tag::VBN]),
    ("being", &[Tag::VBG]),
    ("have", &[Tag::VBP, Tag::VB]),
    ("has", &[Tag::VBZ]),
    ("had", &[Tag::VBD, Tag::VBN]),
    ("having", &[Tag::VBG]),
    ("do", &[Tag::VBP, Tag::VB]),
    ("does", &[Tag::VBZ]),
    ("did", &[Tag::VBD]),
    ("done", &[Tag::VBN]),
    ("doing", &[Tag::VBG]),
    // negation & frequent adverbs that must never be nouns
    ("not", &[Tag::RB]),
    ("n't", &[Tag::RB]),
    ("never", &[Tag::RB]),
    ("also", &[Tag::RB]),
    ("very", &[Tag::RB]),
    ("too", &[Tag::RB]),
    ("so", &[Tag::RB]),
    ("just", &[Tag::RB]),
    ("there", &[Tag::EX, Tag::RB]),
    ("here", &[Tag::RB]),
    ("then", &[Tag::RB]),
    ("now", &[Tag::RB]),
    ("ago", &[Tag::RB]),
    ("ever", &[Tag::RB]),
    ("again", &[Tag::RB]),
    ("still", &[Tag::RB]),
    ("currently", &[Tag::RB]),
    ("formerly", &[Tag::RB]),
    ("previously", &[Tag::RB]),
    ("approximately", &[Tag::RB]),
    ("once", &[Tag::RB]),
    ("twice", &[Tag::RB]),
    // wh-words
    ("who", &[Tag::WP]),
    ("whom", &[Tag::WP]),
    ("which", &[Tag::WDT]),
    ("what", &[Tag::WP]),
    ("when", &[Tag::WRB]),
    ("where", &[Tag::WRB]),
    ("why", &[Tag::WRB]),
    ("how", &[Tag::WRB]),
];

fn table() -> &'static HashMap<&'static str, &'static [Tag]> {
    static T: OnceLock<HashMap<&'static str, &'static [Tag]>> = OnceLock::new();
    T.get_or_init(|| CLOSED.iter().copied().collect())
}

/// Looks up the closed-class tags for a lower-cased word.
pub fn closed_class(word: &str) -> Option<&'static [Tag]> {
    table().get(word).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        assert_eq!(closed_class("the"), Some(&[Tag::DT][..]));
        assert_eq!(closed_class("of"), Some(&[Tag::IN][..]));
        assert!(closed_class("pressure").is_none());
    }

    #[test]
    fn no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for (w, tags) in CLOSED {
            assert!(seen.insert(*w), "duplicate closed-class entry {w}");
            assert!(!tags.is_empty());
        }
    }

    #[test]
    fn entries_lowercase() {
        for (w, _) in CLOSED {
            assert_eq!(*w, w.to_lowercase());
        }
    }
}
