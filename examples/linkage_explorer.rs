//! Linkage explorer: parse any sentence and inspect the linkage diagram,
//! link labels, constituents and POS tags — the debugging view the paper's
//! authors would have used against the original Link Grammar parser.
//!
//! ```text
//! cargo run --example linkage_explorer -- "She quit smoking five years ago."
//! cargo run --example linkage_explorer           # uses built-in demo sentences
//! ```

use cmr::prelude::*;

fn explore(parser: &LinkParser, sentence: &str) {
    println!("======================================================================");
    println!("sentence: {sentence}");
    let tokens = tokenize(sentence);
    let tagged = cmr::postag::PosTagger::new().tag(&tokens);
    let tags: Vec<String> = tagged
        .iter()
        .map(|t| format!("{}/{}", t.token.text, t.tag))
        .collect();
    println!("tags:     {}", tags.join(" "));
    match parser.parse(&tagged) {
        Some(linkage) => {
            println!("cost:     {:.3}", linkage.cost);
            println!("{}", linkage.diagram());
            let c = linkage.constituents();
            let words = |idxs: &[usize]| {
                idxs.iter()
                    .map(|&i| tokens[i].text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            println!("subject:    [{}]", words(&c.subject));
            println!("verb:       [{}]", words(&c.verb));
            println!("object:     [{}]", words(&c.object));
            println!("supplement: [{}]", words(&c.supplement));
        }
        None => println!("NO LINKAGE — the pattern fallback would handle this text."),
    }
    println!();
}

fn main() {
    let parser = LinkParser::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for s in [
            "Blood pressure is 144/90.",
            "She quit smoking five years ago.",
            "She has never smoked.",
            "She is a woman who underwent a mammogram.",
            "Significant for diabetes and hypertension.",
            "Blood pressure: 144/90.",
        ] {
            explore(&parser, s);
        }
    } else {
        for s in &args {
            explore(&parser, s);
        }
    }
}
