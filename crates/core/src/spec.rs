//! Field specifications: what to extract, from where, in what form.

use cmr_lexicon::{expand_abbreviation, phrase_variants};
use serde::{Deserialize, Serialize};

/// Expected value shape of a numeric attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueKind {
    /// Integer (pulse, weight, gravida).
    Int,
    /// Decimal (temperature).
    Float,
    /// Slash pair (blood pressure `144/90`).
    Ratio,
}

/// Specification of one numeric attribute.
///
/// §3.1: feature identification uses "an exact text search of the feature
/// name … target synonyms and inflected (sic: "infected") variants of the feature and its
/// synonyms". [`FeatureSpec::matching_phrases`] materializes exactly that
/// expansion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Canonical attribute name (`"blood_pressure"`).
    pub name: String,
    /// Keyword phrases: the feature name and its manually specified
    /// synonyms, lower-case.
    pub keywords: Vec<String>,
    /// Sections this attribute is dictated in (case-insensitive header
    /// names). Empty = search the whole record.
    pub sections: Vec<String>,
    /// Expected numeric shape.
    pub kind: ValueKind,
    /// Plausible range, used to reject implausible associations.
    pub range: Option<(f64, f64)>,
    /// Additionally match the `"{N}-year-old"` dictation pattern (ages).
    pub year_old_pattern: bool,
}

impl FeatureSpec {
    /// Creates a spec with canonical name, keywords and sections.
    pub fn new(name: &str, keywords: &[&str], sections: &[&str], kind: ValueKind) -> FeatureSpec {
        FeatureSpec {
            name: name.to_string(),
            keywords: keywords.iter().map(|s| s.to_lowercase()).collect(),
            sections: sections.iter().map(|s| s.to_string()).collect(),
            kind,
            range: None,
            year_old_pattern: false,
        }
    }

    /// Sets the plausible value range.
    pub fn range(mut self, lo: f64, hi: f64) -> FeatureSpec {
        self.range = Some((lo, hi));
        self
    }

    /// Enables the `"{N}-year-old"` pattern.
    pub fn year_old(mut self) -> FeatureSpec {
        self.year_old_pattern = true;
        self
    }

    /// All surface phrases that identify this feature: every keyword, its
    /// inflected variants (head-word inflection for multi-word phrases) and
    /// abbreviation expansions. Lower-case, deduplicated.
    pub fn matching_phrases(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |p: String| {
            if !p.is_empty() && !out.contains(&p) {
                out.push(p);
            }
        };
        for kw in &self.keywords {
            push(kw.clone());
            for v in phrase_variants(kw) {
                push(v);
            }
            if let Some(exp) = expand_abbreviation(kw) {
                push(exp.to_string());
                for v in phrase_variants(exp) {
                    push(v);
                }
            }
        }
        out
    }

    /// True when `value` fits this spec's kind and range.
    pub fn accepts(&self, value: &cmr_text::NumberValue) -> bool {
        use cmr_text::NumberValue as NV;
        let kind_ok = match (self.kind, value) {
            (ValueKind::Ratio, NV::Ratio(..)) => true,
            (ValueKind::Ratio, _) => false,
            (ValueKind::Int, NV::Int(_)) => true,
            (ValueKind::Int, _) => false,
            (ValueKind::Float, NV::Float(_) | NV::Int(_)) => true,
            (ValueKind::Float, NV::Ratio(..)) => false,
        };
        if !kind_ok {
            return false;
        }
        match self.range {
            None => true,
            Some((lo, hi)) => {
                let v = value.as_f64();
                v >= lo && v <= hi
            }
        }
    }
}

/// Specification of a multi-valued medical-term attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TermFieldSpec {
    /// Canonical field name (`"past_medical_history"`).
    pub name: String,
    /// Sections to scan.
    pub sections: Vec<String>,
}

/// Specification of a categorical attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoricalFieldSpec {
    /// Canonical field name (`"smoking"`).
    pub name: String,
    /// Sections whose text feeds the feature extractor.
    pub sections: Vec<String>,
    /// Class labels.
    pub classes: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_text::NumberValue;

    #[test]
    fn matching_phrases_include_variants_and_abbreviations() {
        let spec = FeatureSpec::new(
            "blood_pressure",
            &["blood pressure", "bp"],
            &["Vitals"],
            ValueKind::Ratio,
        );
        let phrases = spec.matching_phrases();
        assert!(phrases.contains(&"blood pressure".to_string()));
        assert!(
            phrases.contains(&"blood pressures".to_string()),
            "inflected variant"
        );
        assert!(phrases.contains(&"bp".to_string()));
    }

    #[test]
    fn phrase_expansion_dedups() {
        let spec = FeatureSpec::new("x", &["pulse", "pulse"], &[], ValueKind::Int);
        let phrases = spec.matching_phrases();
        let mut sorted = phrases.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(phrases.len(), sorted.len());
    }

    #[test]
    fn accepts_checks_kind() {
        let bp = FeatureSpec::new("bp", &["blood pressure"], &[], ValueKind::Ratio);
        assert!(bp.accepts(&NumberValue::Ratio(144, 90)));
        assert!(!bp.accepts(&NumberValue::Int(144)));
        let pulse = FeatureSpec::new("pulse", &["pulse"], &[], ValueKind::Int).range(20.0, 250.0);
        assert!(pulse.accepts(&NumberValue::Int(84)));
        assert!(!pulse.accepts(&NumberValue::Int(999)), "range");
        assert!(!pulse.accepts(&NumberValue::Float(84.5)), "kind");
        let temp = FeatureSpec::new("temp", &["temperature"], &[], ValueKind::Float);
        assert!(temp.accepts(&NumberValue::Float(98.3)));
        assert!(
            temp.accepts(&NumberValue::Int(98)),
            "ints acceptable as floats"
        );
    }
}
