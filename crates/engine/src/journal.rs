//! The write-ahead run journal: crash-recovery for batch extraction.
//!
//! Format — NDJSON, one flushed line per event:
//!
//! ```text
//! {"version":3,"config_fingerprint":"6c62…","asset_fingerprint":"a3f9…","corpus_hash":"08b1…","records":N}
//! {"snapshot":{"completed":K,"output_fingerprint":"5e1c…"},"crc":"77aa…"}        (optional, at most one)
//! {"entry":{"index":K,"output":{"Ok":{…extracted record…}}},"crc":"9f3a…"}
//! {"entry":{"index":K+1,"output":{"Err":{"Budget":{"sentences_done":4}}}},"crc":"08b1…"}
//! …
//! ```
//!
//! The first line is the [`RunManifest`]: fingerprints of everything that
//! determines the output bytes (engine config, rule assets, the corpus
//! itself), so a resume against a *different* run is rejected instead of
//! silently merging incompatible outputs. Each subsequent line is one
//! completed record, appended from the engine's ordered sink — the sink
//! runs strictly in input order, so a journal is always a contiguous
//! prefix `0..k` of the run. Every entry line carries a trailing FNV-1a
//! checksum of its serialized entry, so a line that *looks* complete but
//! was assembled from torn fragments (or rotted on disk) is caught, not
//! parsed.
//!
//! Crash tolerance: every line is written with a trailing `\n` in one
//! `write_all` followed by a flush, so a process killed mid-write leaves
//! at most one torn final line, which [`read_journal`] detects (no
//! trailing newline) and drops. The reported [`JournalRead::valid_len`]
//! is the byte offset of the last intact line; [`JournalWriter::append_to`]
//! truncates there before appending, so a resumed journal is
//! self-healing. A damaged line that is *not* final — or a complete
//! final line failing its checksum — is structural corruption and is
//! rejected as [`JournalError::Corrupt`] with the byte offset, never
//! silently skipped. Durability is against process death (the threat
//! model here), not OS crash — lines reach the page cache, no fsync per
//! record.
//!
//! Resume contract: replaying the journaled entries and processing the
//! remaining `k..n` records yields output byte-identical to an
//! uninterrupted run, because extraction is deterministic per record and
//! serialization is canonical.
//!
//! Compaction (v3): once a long run has journaled many records, replay
//! cost is O(completed). [`JournalWriter::compact`] rewrites the journal
//! as manifest + one [`Snapshot`] line — the completed count and a
//! rolling [`OutputFingerprint`] over every output line emitted so far —
//! then entries continue from there. Resume against a compacted journal
//! replays only the post-snapshot remainder; the snapshot fingerprint
//! lets the resuming process verify (and truncate to) the prefix already
//! present in a durable output file. The rewrite goes through a temp
//! file and an atomic rename, so a crash mid-compaction leaves either
//! the old journal or the new one, never a hybrid. v2 journals (no
//! snapshots, same entry lines) remain readable and resumable.
//!
//! Fault injection: the write paths carry `journal::manifest`,
//! `journal::append`, `journal::truncate`, and `journal::compact`
//! failpoints (see cmr-failpoint; no-ops unless built with
//! `--features failpoints`).

use crate::engine::{EngineConfig, EngineError};
use cmr_core::ExtractedRecord;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::Path;

/// Journal format version; bumped on any incompatible layout change.
/// v2 added the per-line entry checksum; v3 added the optional
/// compaction snapshot line.
pub const JOURNAL_VERSION: u32 = 3;

/// Oldest journal format this build can still read and resume. v2
/// journals differ from v3 only in lacking snapshot lines, so they
/// replay unchanged.
pub const JOURNAL_COMPAT_VERSION: u32 = 2;

/// Whether a journal written at `version` is readable by this build.
fn version_compatible(version: u32) -> bool {
    (JOURNAL_COMPAT_VERSION..=JOURNAL_VERSION).contains(&version)
}

/// Identity of a run: everything that determines its output bytes.
///
/// The three fingerprints are stored as 16-digit hex strings, not JSON
/// numbers: a u64 hash routinely exceeds `i64::MAX`, which plain JSON
/// integers (and this workspace's serializer) cannot represent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Journal format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Fingerprint of the output-affecting engine configuration (hex).
    pub config_fingerprint: String,
    /// Fingerprint of the compiled-in rule assets (hex).
    pub asset_fingerprint: String,
    /// Hash of the input corpus (order-sensitive, length-prefixed; hex).
    pub corpus_hash: String,
    /// Number of records in the corpus.
    pub records: usize,
}

/// Formats a fingerprint the way [`RunManifest`] stores it.
fn hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

impl RunManifest {
    /// The manifest of a fresh run over `texts` with `cfg`.
    pub fn for_run(cfg: &EngineConfig, texts: &[String]) -> RunManifest {
        RunManifest::for_corpus(cfg, corpus_hash(texts), texts.len())
    }

    /// The manifest of a fresh run whose corpus was hashed incrementally
    /// (see [`CorpusHasher`]) — the streaming counterpart of
    /// [`RunManifest::for_run`], for corpora never materialized in memory.
    pub fn for_corpus(cfg: &EngineConfig, corpus_hash: u64, records: usize) -> RunManifest {
        RunManifest {
            version: JOURNAL_VERSION,
            config_fingerprint: hex(config_fingerprint(cfg)),
            asset_fingerprint: hex(crate::engine::asset_fingerprint()),
            corpus_hash: hex(corpus_hash),
            records,
        }
    }

    /// Explains the first incompatibility with `current`, or `None` when a
    /// journal under `self` may be resumed as `current`. Any version in
    /// the compatibility window ([`JOURNAL_COMPAT_VERSION`]..=
    /// [`JOURNAL_VERSION`]) is resumable.
    pub fn mismatch(&self, current: &RunManifest) -> Option<String> {
        if !version_compatible(self.version) {
            return Some(format!(
                "journal format v{} (this build writes v{})",
                self.version, current.version
            ));
        }
        if self.config_fingerprint != current.config_fingerprint {
            return Some("engine configuration changed since the journal was written".into());
        }
        if self.asset_fingerprint != current.asset_fingerprint {
            return Some("rule assets changed since the journal was written".into());
        }
        if self.records != current.records || self.corpus_hash != current.corpus_hash {
            return Some(format!(
                "input corpus changed ({} records then, {} now)",
                self.records, current.records
            ));
        }
        None
    }
}

/// One journaled record: its input index and its full outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Index in the input stream.
    pub index: usize,
    /// The record's outcome, exactly as the sink saw it.
    pub output: Result<ExtractedRecord, EngineError>,
}

/// On-disk shape of an entry line: the entry plus a trailing checksum of
/// its canonical serialization (16-hex-digit FNV-1a, like the manifest
/// fingerprints). Internal — the public API speaks [`JournalEntry`].
#[derive(Debug, Deserialize)]
struct JournalLine {
    entry: JournalEntry,
    crc: String,
}

/// The checksum a well-formed entry line carries for `entry_json`.
fn line_crc(entry_json: &str) -> String {
    hex(fnv1a(entry_json.as_bytes(), FNV_OFFSET))
}

/// A compaction snapshot: everything resume needs in place of the entry
/// lines the compaction discarded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Records `0..completed` were journaled (and their output emitted)
    /// before the snapshot was taken; entry lines resume at `completed`.
    pub completed: usize,
    /// Rolling [`OutputFingerprint`] over the `completed` output lines
    /// already emitted, as a 16-digit hex string. Lets a resuming
    /// process verify that a durable output file still carries the
    /// exact prefix the snapshot summarizes.
    pub output_fingerprint: String,
}

/// On-disk shape of a snapshot line, mirroring [`JournalLine`].
#[derive(Debug, Deserialize)]
struct SnapshotLine {
    snapshot: Snapshot,
    crc: String,
}

/// Appends manifest and entry lines, one flushed `write_all` per line.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Starts a fresh journal at `path` (truncating), writing the manifest
    /// line immediately.
    pub fn create(path: &Path, manifest: &RunManifest) -> std::io::Result<JournalWriter> {
        let mut writer = JournalWriter {
            file: File::create(path)?,
        };
        let line = serde_json::to_string(manifest)
            .map_err(|e| std::io::Error::other(format!("journal serialization failed: {e:?}")))?;
        writer.write_line("journal::manifest", line)?;
        Ok(writer)
    }

    /// Reopens an existing journal for resume: truncates to `valid_len`
    /// (dropping a torn final line, see [`read_journal`]) and positions at
    /// the end for appending.
    pub fn append_to(path: &Path, valid_len: u64) -> std::io::Result<JournalWriter> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        if let Some(inj) = cmr_failpoint::io_inject("journal::truncate") {
            return Err(inj.into_io_error());
        }
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(JournalWriter { file })
    }

    /// Compacts the journal at `path` down to manifest + snapshot and
    /// reopens it for appending, discarding every entry line: resume
    /// cost drops from O(completed) to O(remainder).
    ///
    /// The caller's existing writer for `path` must be dropped first.
    /// The rewrite lands in `<path>.compact-tmp` and is renamed over the
    /// journal atomically, so a crash here leaves either the old journal
    /// or the compacted one — never a torn hybrid. On any error the
    /// original journal is untouched and still valid.
    pub fn compact(
        path: &Path,
        manifest: &RunManifest,
        snapshot: &Snapshot,
    ) -> std::io::Result<JournalWriter> {
        let tmp = path.with_extension("compact-tmp");
        {
            let mut w = JournalWriter {
                file: File::create(&tmp)?,
            };
            let mline = serde_json::to_string(manifest).map_err(|e| {
                std::io::Error::other(format!("journal serialization failed: {e:?}"))
            })?;
            w.write_line("journal::compact", mline)?;
            let sjson = serde_json::to_string(snapshot).map_err(|e| {
                std::io::Error::other(format!("journal serialization failed: {e:?}"))
            })?;
            let crc = line_crc(&sjson);
            w.write_line(
                "journal::compact",
                format!("{{\"snapshot\":{sjson},\"crc\":\"{crc}\"}}"),
            )?;
        }
        if let Some(inj) = cmr_failpoint::io_inject("journal::compact") {
            let _ = std::fs::remove_file(&tmp);
            return Err(inj.into_io_error());
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Appends one completed record, checksummed.
    pub fn append(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        let entry_json = serde_json::to_string(entry)
            .map_err(|e| std::io::Error::other(format!("journal serialization failed: {e:?}")))?;
        let crc = line_crc(&entry_json);
        self.write_line(
            "journal::append",
            format!("{{\"entry\":{entry_json},\"crc\":\"{crc}\"}}"),
        )
    }

    fn write_line(&mut self, failpoint: &str, mut line: String) -> std::io::Result<()> {
        line.push('\n');
        if let Some(inj) = cmr_failpoint::io_inject(failpoint) {
            if let cmr_failpoint::IoInjection::Partial(n) = inj {
                // A torn write: the prefix lands on disk, then the
                // operation fails — exactly what a kill or a full disk
                // mid-`write` leaves behind.
                let cut = n.min(line.len());
                self.file.write_all(&line.as_bytes()[..cut])?;
                let _ = self.file.flush();
                return Err(cmr_failpoint::IoInjection::Partial(n).into_io_error());
            }
            return Err(inj.into_io_error());
        }
        // One unbuffered write per line: the OS sees whole lines or a
        // single torn tail, never interleaved fragments. The flush is a
        // no-op on `File` but keeps the write-then-flush contract explicit
        // for any buffered writer swapped in later.
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// A parsed journal: the manifest, the contiguous completed prefix, and
/// where the intact bytes end.
#[derive(Debug)]
pub struct JournalRead {
    /// The manifest from line one.
    pub manifest: RunManifest,
    /// The compaction snapshot, if the journal has been compacted.
    pub snapshot: Option<Snapshot>,
    /// Journaled outcomes for records `snapshot_completed()..completed()`
    /// — from `0` when the journal was never compacted.
    pub entries: Vec<JournalEntry>,
    /// Byte offset just past the last intact line; a torn tail (kill
    /// mid-write) lies beyond it and is dropped on resume.
    pub valid_len: u64,
}

impl JournalRead {
    /// Records covered by the snapshot alone (0 when uncompacted).
    pub fn snapshot_completed(&self) -> usize {
        self.snapshot.as_ref().map_or(0, |s| s.completed)
    }

    /// Total records this journal accounts for: snapshot + entry lines.
    pub fn completed(&self) -> usize {
        self.snapshot_completed() + self.entries.len()
    }
}

/// Why a journal could not be read.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// A structurally impossible journal: an unparseable or
    /// checksum-failing *complete* line, or a gap in the record indices.
    /// Only a torn *final* line (no trailing newline) is tolerated; a
    /// damaged line with intact lines after it is never skipped.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Byte offset where the offending line starts.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "cannot read journal: {e}"),
            JournalError::Corrupt {
                line,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "journal corrupt at line {line} (byte offset {offset}): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Streaming journal reader: validates the manifest (and snapshot, if
/// present) up front, then yields entries one at a time from a buffered
/// reader, so replaying a large journal never materializes it. The same
/// torn-tail and corruption rules as [`read_journal`] apply — in fact
/// `read_journal` is this iterator, collected.
#[derive(Debug)]
pub struct JournalReplay {
    reader: BufReader<File>,
    manifest: RunManifest,
    snapshot: Option<Snapshot>,
    /// A complete line read during open() that turned out to be the
    /// first entry (not a snapshot), held for the first `next_entry`.
    pending: Option<String>,
    next_index: usize,
    entries_seen: usize,
    valid_len: u64,
    line_no: usize,
    done: bool,
}

impl JournalReplay {
    /// Opens the journal at `path`, reading and validating the manifest
    /// line and — when the format version allows it — the optional
    /// snapshot line that may follow.
    pub fn open(path: &Path) -> Result<JournalReplay, JournalError> {
        let mut reader = BufReader::new(File::open(path)?);
        let first = match read_complete_line(&mut reader)? {
            Some(line) => line,
            None => {
                return Err(JournalError::Corrupt {
                    line: 1,
                    offset: 0,
                    reason: "no complete manifest line (journal truncated at birth)".into(),
                })
            }
        };
        let manifest: RunManifest =
            serde_json::from_str(&first).map_err(|e| JournalError::Corrupt {
                line: 1,
                offset: 0,
                reason: format!("manifest does not parse: {e:?}"),
            })?;
        let mut replay = JournalReplay {
            reader,
            valid_len: first.len() as u64 + 1,
            manifest,
            snapshot: None,
            pending: None,
            next_index: 0,
            entries_seen: 0,
            line_no: 1,
            done: false,
        };
        // A journal written by an unsupported format version has lines
        // this reader cannot judge; stop here so the caller's `mismatch`
        // check reports the version cleanly instead of a misleading
        // corruption error.
        if !version_compatible(replay.manifest.version) {
            replay.done = true;
            return Ok(replay);
        }
        // Peek line 2: a compacted journal carries its snapshot there.
        if let Some(line) = read_complete_line(&mut replay.reader)? {
            if line.contains("\"snapshot\"") {
                let offset = replay.valid_len;
                let parsed: SnapshotLine =
                    serde_json::from_str(&line).map_err(|e| JournalError::Corrupt {
                        line: 2,
                        offset,
                        reason: format!("snapshot does not parse: {e:?}"),
                    })?;
                let sjson =
                    serde_json::to_string(&parsed.snapshot).map_err(|e| JournalError::Corrupt {
                        line: 2,
                        offset,
                        reason: format!("snapshot does not reserialize: {e:?}"),
                    })?;
                let expected = line_crc(&sjson);
                if parsed.crc != expected {
                    return Err(JournalError::Corrupt {
                        line: 2,
                        offset,
                        reason: format!(
                            "snapshot checksum mismatch (line says {}, content hashes to {expected})",
                            parsed.crc
                        ),
                    });
                }
                replay.next_index = parsed.snapshot.completed;
                replay.snapshot = Some(parsed.snapshot);
                replay.line_no = 2;
                replay.valid_len += line.len() as u64 + 1;
            } else {
                replay.pending = Some(line);
            }
        }
        Ok(replay)
    }

    /// The manifest from line one.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// The compaction snapshot, if the journal has been compacted.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.snapshot.as_ref()
    }

    /// Byte offset just past the last intact line seen so far; final
    /// once `next_entry` has returned `None`.
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// Total records accounted for so far: snapshot + entries yielded.
    pub fn completed(&self) -> usize {
        self.snapshot.as_ref().map_or(0, |s| s.completed) + self.entries_seen
    }

    /// The next journaled entry, or `None` at the end of the intact
    /// prefix (a torn trailing line is dropped, not an error). After an
    /// `Err` the iterator is exhausted.
    pub fn next_entry(&mut self) -> Option<Result<JournalEntry, JournalError>> {
        if self.done {
            return None;
        }
        let line = match self.pending.take() {
            Some(line) => line,
            None => match read_complete_line(&mut self.reader) {
                Ok(Some(line)) => line,
                Ok(None) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            },
        };
        self.line_no += 1;
        let offset = self.valid_len;
        let line_no = self.line_no;
        let corrupt = |reason: String| JournalError::Corrupt {
            line: line_no,
            offset,
            reason,
        };
        let step = (|| {
            let parsed: JournalLine = serde_json::from_str(&line)
                .map_err(|e| corrupt(format!("entry does not parse: {e:?}")))?;
            let entry_json = serde_json::to_string(&parsed.entry)
                .map_err(|e| corrupt(format!("entry does not reserialize: {e:?}")))?;
            let expected = line_crc(&entry_json);
            if parsed.crc != expected {
                return Err(corrupt(format!(
                    "entry checksum mismatch (line says {}, content hashes to {expected})",
                    parsed.crc
                )));
            }
            if parsed.entry.index != self.next_index {
                return Err(corrupt(format!(
                    "entry index {} where {} was expected (journal must be a contiguous prefix)",
                    parsed.entry.index, self.next_index
                )));
            }
            if self.completed() + 1 > self.manifest.records {
                return Err(corrupt(format!(
                    "{} entries for a {}-record corpus",
                    self.completed() + 1,
                    self.manifest.records
                )));
            }
            Ok(parsed.entry)
        })();
        match step {
            Ok(entry) => {
                self.next_index += 1;
                self.entries_seen += 1;
                self.valid_len += line.len() as u64 + 1;
                Some(Ok(entry))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads one `\n`-terminated line, without the newline. `None` means
/// clean EOF *or* a torn tail (bytes with no trailing newline — a kill
/// mid-write); either way the intact prefix ended before these bytes.
fn read_complete_line(reader: &mut BufReader<File>) -> Result<Option<String>, JournalError> {
    let mut buf = Vec::new();
    reader.read_until(b'\n', &mut buf)?;
    if buf.last() != Some(&b'\n') {
        return Ok(None);
    }
    buf.pop();
    String::from_utf8(buf).map(Some).map_err(|_| {
        // Offset/line bookkeeping lives in the caller; a non-UTF-8
        // complete line is rejected there with context.
        JournalError::Corrupt {
            line: 0,
            offset: 0,
            reason: "complete line is not UTF-8".into(),
        }
    })
}

/// Reads and validates a journal, collecting every entry. Tolerates
/// exactly one torn trailing line (no newline — a kill mid-write);
/// rejects anything else malformed, including checksum failures, with
/// the byte offset of the damage (see [`JournalError::Corrupt`]). For
/// large journals prefer the streaming [`JournalReplay`], which this
/// wraps.
pub fn read_journal(path: &Path) -> Result<JournalRead, JournalError> {
    let mut replay = JournalReplay::open(path)?;
    let mut entries = Vec::new();
    while let Some(step) = replay.next_entry() {
        entries.push(step?);
    }
    Ok(JournalRead {
        manifest: replay.manifest,
        snapshot: replay.snapshot,
        entries,
        valid_len: replay.valid_len,
    })
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Order-sensitive FNV-1a hash of the corpus, with each text
/// length-prefixed so record boundaries are part of the identity.
pub fn corpus_hash(texts: &[String]) -> u64 {
    let mut h = CorpusHasher::new();
    for t in texts {
        h.add(t);
    }
    h.finish()
}

/// Incremental [`corpus_hash`]: feed records one at a time so a corpus
/// streamed from disk is fingerprinted without ever being materialized.
/// `corpus_hash(texts)` and `add`-ing each text produce the same hash.
#[derive(Debug, Clone)]
pub struct CorpusHasher {
    hash: u64,
    records: usize,
}

impl Default for CorpusHasher {
    fn default() -> Self {
        CorpusHasher::new()
    }
}

impl CorpusHasher {
    /// An empty-corpus hasher.
    pub fn new() -> CorpusHasher {
        CorpusHasher {
            hash: FNV_OFFSET,
            records: 0,
        }
    }

    /// Folds in the next record, length-prefixed like [`corpus_hash`].
    pub fn add(&mut self, text: &str) {
        self.hash = fnv1a(&(text.len() as u64).to_le_bytes(), self.hash);
        self.hash = fnv1a(text.as_bytes(), self.hash);
        self.records += 1;
    }

    /// How many records have been folded in.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The corpus hash over everything added so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

/// Rolling hash over emitted output lines — the fingerprint a
/// compaction [`Snapshot`] carries. Each line (without its newline) is
/// folded in length-prefixed, so resume can verify that the first
/// `completed` lines of a durable output file are exactly the ones the
/// snapshot summarizes, and continue the roll from there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputFingerprint {
    hash: u64,
}

impl Default for OutputFingerprint {
    fn default() -> Self {
        OutputFingerprint::new()
    }
}

impl OutputFingerprint {
    /// The fingerprint of zero output lines.
    pub fn new() -> OutputFingerprint {
        OutputFingerprint { hash: FNV_OFFSET }
    }

    /// Restores the rolling state a [`Snapshot`] recorded, so hashing
    /// continues across a process restart. `None` if `hex` is not a
    /// 16-digit hex fingerprint.
    pub fn from_hex(fingerprint: &str) -> Option<OutputFingerprint> {
        if fingerprint.len() != 16 {
            return None;
        }
        u64::from_str_radix(fingerprint, 16)
            .ok()
            .map(|hash| OutputFingerprint { hash })
    }

    /// Folds in the next output line (newline excluded).
    pub fn add_line(&mut self, line: &str) {
        self.hash = fnv1a(&(line.len() as u64).to_le_bytes(), self.hash);
        self.hash = fnv1a(line.as_bytes(), self.hash);
    }

    /// The fingerprint as the 16-digit hex string snapshots store.
    pub fn as_hex(&self) -> String {
        hex(self.hash)
    }
}

/// Verifies that the first `snapshot.completed` lines of `output` are
/// exactly the prefix the snapshot fingerprinted. On success, returns
/// the byte offset just past that prefix (where a resuming process
/// truncates the output file and continues appending) and the restored
/// rolling fingerprint. A short or divergent output file is an error:
/// resume cannot reconstruct a compacted-away prefix.
pub fn verify_output_prefix<R: BufRead>(
    output: &mut R,
    snapshot: &Snapshot,
) -> std::io::Result<(u64, OutputFingerprint)> {
    let mut fp = OutputFingerprint::new();
    let mut offset = 0u64;
    for line_no in 0..snapshot.completed {
        let mut buf = Vec::new();
        output.read_until(b'\n', &mut buf)?;
        if buf.last() != Some(&b'\n') {
            return Err(std::io::Error::other(format!(
                "output file holds {line_no} complete lines but the journal snapshot \
                 covers {}; cannot resume",
                snapshot.completed
            )));
        }
        offset += buf.len() as u64;
        buf.pop();
        let line = String::from_utf8(buf)
            .map_err(|_| std::io::Error::other("output file line is not UTF-8"))?;
        fp.add_line(&line);
    }
    if fp.as_hex() != snapshot.output_fingerprint {
        return Err(std::io::Error::other(format!(
            "output file prefix hashes to {} but the journal snapshot recorded {}; \
             the output was modified since the snapshot — cannot resume",
            fp.as_hex(),
            snapshot.output_fingerprint
        )));
    }
    Ok((offset, fp))
}

/// Fingerprint of the *output-affecting* engine configuration. Scheduling
/// knobs (`jobs`, `queue_depth`) are excluded by design: the engine
/// guarantees byte-identical output for any worker count, so resuming
/// with a different `--jobs` is sound and allowed.
pub fn config_fingerprint(cfg: &EngineConfig) -> u64 {
    let key = format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{}|{:?}",
        cfg.method,
        cfg.term_patterns,
        cfg.salvage,
        cfg.max_record_millis,
        cfg.max_record_sentences,
        cfg.fail_fast,
        cfg.retry,
    );
    fnv1a(key.as_bytes(), FNV_OFFSET)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn scratch_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cmr-journal-{name}-{}.ndjson", std::process::id()))
    }

    fn manifest() -> RunManifest {
        RunManifest {
            version: JOURNAL_VERSION,
            config_fingerprint: hex(11),
            asset_fingerprint: hex(22),
            corpus_hash: hex(33),
            records: 3,
        }
    }

    fn entry(index: usize) -> JournalEntry {
        JournalEntry {
            index,
            output: Err(EngineError::Budget {
                sentences_done: index,
            }),
        }
    }

    #[test]
    fn write_then_read_roundtrips() {
        let path = scratch_path("roundtrip");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.manifest, manifest());
        assert_eq!(read.entries.len(), 2);
        assert_eq!(read.entries[1].index, 1);
        assert_eq!(
            read.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "fully intact journal is valid to its end"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_and_resume_heals_it() {
        let path = scratch_path("torn");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        drop(w);
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-write of entry 1.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"index\":1,\"outp").unwrap();
        drop(f);

        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 1, "torn line is not an entry");
        assert_eq!(read.valid_len, intact);

        // Resume truncates the tear and appends cleanly.
        let mut w = JournalWriter::append_to(&path, read.valid_len).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.entries.len(), 2);
        assert_eq!(healed.entries[1].index, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gap_in_indices_is_corrupt() {
        let path = scratch_path("gap");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(2)).unwrap();
        drop(w);
        assert!(matches!(
            read_journal(&path),
            Err(JournalError::Corrupt { line: 3, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_on_a_complete_line_is_corrupt() {
        let path = scratch_path("garbage");
        let w = JournalWriter::create(&path, &manifest()).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json\n").unwrap();
        drop(f);
        assert!(matches!(
            read_journal(&path),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn manifest_mismatch_reports_the_reason() {
        let a = manifest();
        assert_eq!(a.mismatch(&a), None);
        let mut b = a.clone();
        b.corpus_hash = hex(99);
        assert!(a.mismatch(&b).unwrap().contains("corpus"));
        let mut c = a.clone();
        c.config_fingerprint = hex(99);
        assert!(a.mismatch(&c).unwrap().contains("configuration"));
        let mut d = a.clone();
        d.version = 0;
        assert!(
            d.mismatch(&a).unwrap().contains("format"),
            "a journal older than the compatibility window is not resumable"
        );
        let mut e = a.clone();
        e.version = JOURNAL_COMPAT_VERSION;
        assert_eq!(e.mismatch(&a), None, "versions in the window resume");

        // The hex encoding must survive values above i64::MAX, which JSON
        // integers cannot carry.
        let wide = hex(u64::MAX - 3);
        assert_eq!(wide, "fffffffffffffffc");
    }

    #[test]
    fn damaged_non_final_line_is_rejected_with_byte_offset() {
        let path = scratch_path("damaged-mid");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let manifest_end = data
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap();
        // Flip entry 0's index digit: the line still parses, but the
        // checksum no longer matches the content.
        let needle = b"\"index\":0";
        let pos = (manifest_end..data.len())
            .find(|&i| data[i..].starts_with(needle))
            .unwrap();
        data[pos + needle.len() - 1] = b'9';
        std::fs::write(&path, &data).unwrap();

        match read_journal(&path) {
            Err(JournalError::Corrupt {
                line: 2,
                offset,
                reason,
            }) => {
                assert_eq!(offset, manifest_end as u64, "offset names the damaged line");
                assert!(reason.contains("checksum"), "reason was: {reason}");
            }
            other => panic!("expected Corrupt at line 2, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_rot_on_a_complete_final_line_is_corrupt_not_dropped() {
        let path = scratch_path("rot-final");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let needle = b"\"sentences_done\":0";
        let pos = (0..data.len())
            .find(|&i| data[i..].starts_with(needle))
            .unwrap();
        data[pos + needle.len() - 1] = b'7';
        std::fs::write(&path, &data).unwrap();
        assert!(
            matches!(
                read_journal(&path),
                Err(JournalError::Corrupt { line: 2, .. })
            ),
            "a complete line failing its checksum is corruption even at the tail"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn old_format_version_surfaces_via_manifest_mismatch_not_corruption() {
        let path = scratch_path("v1");
        // A v1 journal: no per-line checksums, version 1 in the manifest.
        std::fs::write(
            &path,
            concat!(
                "{\"version\":1,\"config_fingerprint\":\"000000000000000b\",",
                "\"asset_fingerprint\":\"0000000000000016\",",
                "\"corpus_hash\":\"0000000000000021\",\"records\":3}\n",
                "{\"index\":0,\"output\":{\"Err\":{\"Budget\":{\"sentences_done\":0}}}}\n",
            ),
        )
        .unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 0, "old entries are not interpreted");
        let why = read.manifest.mismatch(&manifest()).unwrap();
        assert!(why.contains("format"), "mismatch was: {why}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_then_resume_replays_only_the_remainder() {
        let path = scratch_path("compact");
        let mut m = manifest();
        m.records = 6;
        let mut w = JournalWriter::create(&path, &m).unwrap();
        let mut fp = OutputFingerprint::new();
        for i in 0..4 {
            w.append(&entry(i)).unwrap();
            fp.add_line(&format!("output line {i}"));
        }
        drop(w);

        let snap = Snapshot {
            completed: 4,
            output_fingerprint: fp.as_hex(),
        };
        let mut w = JournalWriter::compact(&path, &m, &snap).unwrap();
        w.append(&entry(4)).unwrap();
        drop(w);

        let read = read_journal(&path).unwrap();
        assert_eq!(read.snapshot.as_ref(), Some(&snap));
        assert_eq!(read.snapshot_completed(), 4);
        assert_eq!(read.entries.len(), 1, "only the post-snapshot remainder");
        assert_eq!(read.entries[0].index, 4);
        assert_eq!(read.completed(), 5);
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 3, "manifest + snapshot + one entry");

        // Resume heals and appends past the snapshot.
        let mut w = JournalWriter::append_to(&path, read.valid_len).unwrap();
        w.append(&entry(5)).unwrap();
        drop(w);
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.completed(), 6);
        assert_eq!(healed.entries.last().unwrap().index, 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_replay_yields_what_read_journal_collects() {
        let path = scratch_path("replay");
        let mut w = JournalWriter::create(&path, &manifest()).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let collected = read_journal(&path).unwrap();
        let mut replay = JournalReplay::open(&path).unwrap();
        assert_eq!(replay.manifest(), &collected.manifest);
        let mut n = 0;
        while let Some(step) = replay.next_entry() {
            assert_eq!(step.unwrap().index, collected.entries[n].index);
            n += 1;
        }
        assert_eq!(n, collected.entries.len());
        assert_eq!(replay.valid_len(), collected.valid_len);
        assert_eq!(replay.completed(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v2_journal_is_still_readable_and_resumable() {
        let path = scratch_path("v2");
        let mut old = manifest();
        old.version = 2;
        let mut w = JournalWriter::create(&path, &old).unwrap();
        w.append(&entry(0)).unwrap();
        drop(w);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 1, "v2 entry lines parse unchanged");
        assert!(read.snapshot.is_none());
        assert_eq!(
            read.manifest.mismatch(&manifest()),
            None,
            "v2 is inside the compatibility window"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_checksum_is_validated() {
        let path = scratch_path("snap-crc");
        let m = manifest();
        let w = JournalWriter::create(&path, &m).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(
            b"{\"snapshot\":{\"completed\":2,\"output_fingerprint\":\"00000000000000aa\"},\"crc\":\"0000000000000000\"}\n",
        )
        .unwrap();
        drop(f);
        match read_journal(&path) {
            Err(JournalError::Corrupt {
                line: 2, reason, ..
            }) => {
                assert!(reason.contains("snapshot checksum"), "reason was: {reason}");
            }
            other => panic!("expected snapshot corruption, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn output_fingerprint_roundtrips_through_hex() {
        let mut a = OutputFingerprint::new();
        a.add_line("{\"x\":1}");
        a.add_line("{\"x\":2}");
        let restored = OutputFingerprint::from_hex(&a.as_hex()).unwrap();
        let mut b = restored;
        let mut c = a;
        b.add_line("tail");
        c.add_line("tail");
        assert_eq!(b, c, "rolling state survives the hex round-trip");
        assert!(OutputFingerprint::from_hex("xyz").is_none());

        let mut split = OutputFingerprint::new();
        split.add_line("ab");
        split.add_line("c");
        let mut joined = OutputFingerprint::new();
        joined.add_line("abc");
        assert_ne!(split, joined, "line boundaries are part of the identity");
    }

    #[test]
    fn corpus_hasher_matches_batch_hash() {
        let texts: Vec<String> = vec!["alpha".into(), "beta".into(), "".into()];
        let mut h = CorpusHasher::new();
        for t in &texts {
            h.add(t);
        }
        assert_eq!(h.finish(), corpus_hash(&texts));
        assert_eq!(h.records(), 3);
    }

    #[test]
    fn corpus_hash_is_order_and_boundary_sensitive() {
        let ab = corpus_hash(&["ab".into(), "c".into()]);
        let a_bc = corpus_hash(&["a".into(), "bc".into()]);
        let reversed = corpus_hash(&["c".into(), "ab".into()]);
        assert_ne!(ab, a_bc, "length prefix separates boundaries");
        assert_ne!(ab, reversed, "order matters");
        assert_eq!(ab, corpus_hash(&["ab".into(), "c".into()]));
    }
}
