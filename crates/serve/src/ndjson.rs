//! The NDJSON note reader shared by `cmr extract -` and the batch
//! endpoint.
//!
//! One place decides what counts as a record line: blank and
//! whitespace-only lines are *separators*, not empty notes (a trailing
//! newline used to produce a spurious parse-failure record), `\r\n`
//! endings are stripped, and each surviving line is decoded as a gold
//! record object (`{"text": ...}`), a bare JSON string, or — as a
//! fallback for plain-text streams — taken verbatim.

use serde::Value;

/// Normalizes one raw NDJSON line: strips the trailing `\r`/`\n` and
/// rejects blank or whitespace-only lines (returns `None`). The CLI's
/// stdin reader and the `/extract/batch` endpoint both route every line
/// through here, so "skip blanks" has exactly one definition.
pub fn clean_note_line(raw: &str) -> Option<&str> {
    let line = raw.trim_end_matches(['\r', '\n']);
    if line.trim().is_empty() {
        None
    } else {
        Some(line)
    }
}

/// Pulls the note text out of one (already cleaned) NDJSON line: an
/// object with a `text` field (e.g. a `cmr generate --out -` gold
/// record), a bare JSON string, or — as a fallback — the raw line itself.
pub fn note_text_from_ndjson(line: &str) -> String {
    match serde_json::parse_value_str(line) {
        Ok(Value::String(s)) => s,
        Ok(Value::Object(fields)) => fields
            .iter()
            .find(|(k, _)| k == "text")
            .and_then(|(_, v)| match v {
                Value::String(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_default(),
        _ => line.to_string(),
    }
}

/// Full decode of one raw line: clean, then extract the note text.
/// `None` means the line was blank and must not produce a record.
pub fn note_from_line(raw: &str) -> Option<String> {
    clean_note_line(raw).map(note_text_from_ndjson)
}

/// Iterates the note texts in an NDJSON byte buffer (a batch request
/// body), skipping blank lines and any trailing newline. Invalid UTF-8
/// lines surface as `Err` with the 1-based line number.
pub fn notes_in_body(body: &[u8]) -> impl Iterator<Item = Result<String, usize>> + '_ {
    body.split(|&b| b == b'\n')
        .enumerate()
        .filter_map(|(idx, raw)| match std::str::from_utf8(raw) {
            Ok(line) => note_from_line(line).map(Ok),
            Err(_) => Some(Err(idx + 1)),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_whitespace_lines_are_skipped() {
        assert_eq!(clean_note_line(""), None);
        assert_eq!(clean_note_line("\n"), None);
        assert_eq!(clean_note_line("\r\n"), None);
        assert_eq!(clean_note_line("   \t  \n"), None);
        assert_eq!(clean_note_line("note\n"), Some("note"));
        assert_eq!(clean_note_line("note\r\n"), Some("note"));
    }

    #[test]
    fn note_text_decodes_objects_strings_and_raw_lines() {
        assert_eq!(
            note_text_from_ndjson(r#"{"patient_id":7,"text":"Vitals: pulse 84."}"#),
            "Vitals: pulse 84."
        );
        assert_eq!(
            note_text_from_ndjson(r#""plain string note""#),
            "plain string note"
        );
        assert_eq!(note_text_from_ndjson("not json at all"), "not json at all");
        // An object without a text field decodes to empty (the record
        // then extracts to an empty frame rather than garbage).
        assert_eq!(note_text_from_ndjson(r#"{"id":1}"#), "");
    }

    #[test]
    fn body_iteration_skips_blanks_and_trailing_newline() {
        let body = b"{\"text\":\"a\"}\n\n   \n\"b\"\nraw c\n";
        let notes: Vec<_> = notes_in_body(body).collect();
        assert_eq!(
            notes,
            vec![
                Ok("a".to_string()),
                Ok("b".to_string()),
                Ok("raw c".to_string())
            ]
        );
    }

    #[test]
    fn invalid_utf8_reports_line_number() {
        let body = b"\"ok\"\n\xff\xfe\n";
        let notes: Vec<_> = notes_in_body(body).collect();
        assert_eq!(notes, vec![Ok("ok".to_string()), Err(2)]);
    }
}
