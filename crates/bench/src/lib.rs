//! # cmr-bench — the reproduction harness
//!
//! One runner per table/figure of the paper plus the ablations listed in
//! DESIGN.md §4. The `repro` binary renders the reports; Criterion benches
//! measure the substrate costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
