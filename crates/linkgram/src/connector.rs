//! Connectors: the typed half-links of link grammar.
//!
//! A connector has a *name* (uppercase base plus optional lowercase
//! subscript), a *direction* (`+` right, `-` left) and an optional *multi*
//! flag (`@`, may form several links). Two connectors match when they point
//! toward each other and their names unify: bases equal, subscripts equal
//! position-wise with `*` (or exhaustion) as a wildcard — exactly the rule of
//! Sleator & Temperley's parser.

use cmr_text::{intern, Sym};
use std::fmt;

/// Link direction of a connector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// `-`: connects to a word on the left.
    Left,
    /// `+`: connects to a word on the right.
    Right,
}

/// A connector, e.g. `@MV+` or `Ss-`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Connector {
    /// Uppercase base, e.g. `MV`.
    pub base: String,
    /// Lowercase subscript, e.g. `s` in `Ss`.
    pub subscript: String,
    /// Direction.
    pub dir: Dir,
    /// Multi-connector (`@` prefix): may form one *or more* links.
    pub multi: bool,
    /// Interned base, compared before the subscript strings on the match
    /// fast path. Kept last so the derived `Ord` still sorts by base text.
    base_sym: Sym,
}

impl Connector {
    /// Parses a connector from text like `@MV+`, `Ss-`, `O+`.
    ///
    /// Returns `None` when the text is not a well-formed connector.
    pub fn parse(text: &str) -> Option<Connector> {
        let mut s = text.trim();
        let multi = if let Some(rest) = s.strip_prefix('@') {
            s = rest;
            true
        } else {
            false
        };
        let dir = if let Some(rest) = s.strip_suffix('+') {
            s = rest;
            Dir::Right
        } else if let Some(rest) = s.strip_suffix('-') {
            s = rest;
            Dir::Left
        } else {
            return None;
        };
        if s.is_empty() {
            return None;
        }
        let split = s
            .find(|c: char| c.is_ascii_lowercase() || c == '*')
            .unwrap_or(s.len());
        let (base, subscript) = s.split_at(split);
        if base.is_empty() || !base.chars().all(|c| c.is_ascii_uppercase()) {
            return None;
        }
        if !subscript
            .chars()
            .all(|c| c.is_ascii_lowercase() || c == '*')
        {
            return None;
        }
        Some(Connector {
            base: base.to_string(),
            subscript: subscript.to_string(),
            dir,
            multi,
            base_sym: intern(base),
        })
    }

    /// Interned base name, for table keys and O(1) equality probes.
    pub fn base_sym(&self) -> Sym {
        self.base_sym
    }

    /// True when `self` (a right-pointing connector on an earlier word) can
    /// link with `other` (a left-pointing connector on a later word).
    pub fn matches(&self, other: &Connector) -> bool {
        debug_assert_eq!(
            self.dir,
            Dir::Right,
            "matches() expects self to point right"
        );
        debug_assert_eq!(
            other.dir,
            Dir::Left,
            "matches() expects other to point left"
        );
        if self.base_sym != other.base_sym {
            return false;
        }
        subscripts_unify(&self.subscript, &other.subscript)
    }

    /// The label a link formed from this connector pair carries: the base
    /// plus the more specific of the two subscripts.
    pub fn link_label(&self, other: &Connector) -> String {
        let sub = if self.subscript.len() >= other.subscript.len() {
            &self.subscript
        } else {
            &other.subscript
        };
        format!("{}{}", self.base, sub)
    }
}

/// Position-wise subscript unification with `*` wildcards; a missing
/// position unifies with anything.
fn subscripts_unify(a: &str, b: &str) -> bool {
    a.chars()
        .zip(b.chars())
        .all(|(x, y)| x == y || x == '*' || y == '*')
}

impl fmt::Display for Connector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.multi {
            write!(f, "@")?;
        }
        write!(f, "{}{}", self.base, self.subscript)?;
        match self.dir {
            Dir::Left => write!(f, "-"),
            Dir::Right => write!(f, "+"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Connector {
        Connector::parse(s).expect("test literals are valid connectors")
    }

    #[test]
    fn parse_forms() {
        assert_eq!(c("O+").base, "O");
        assert_eq!(c("O+").dir, Dir::Right);
        assert_eq!(c("Ss-").subscript, "s");
        assert!(c("@MV+").multi);
        assert!(!c("MV+").multi);
        assert_eq!(c("S*b-").subscript, "*b");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Connector::parse("").is_none());
        assert!(Connector::parse("O").is_none());
        assert!(Connector::parse("+").is_none());
        assert!(Connector::parse("lower+").is_none());
        assert!(Connector::parse("O!+").is_none());
    }

    #[test]
    fn matching_bases() {
        assert!(c("O+").matches(&c("O-")));
        assert!(!c("O+").matches(&c("S-")));
    }

    #[test]
    fn subscript_wildcards() {
        assert!(
            c("S+").matches(&c("Ss-")),
            "missing subscript is a wildcard"
        );
        assert!(c("Ss+").matches(&c("S-")));
        assert!(c("Ss+").matches(&c("Ss-")));
        assert!(!c("Ss+").matches(&c("Sp-")));
        assert!(c("S*b+").matches(&c("Ssb-")));
        assert!(!c("S*b+").matches(&c("Ssa-")));
    }

    #[test]
    fn labels_take_specific_subscript() {
        assert_eq!(c("S+").link_label(&c("Ss-")), "Ss");
        assert_eq!(c("Sp+").link_label(&c("S-")), "Sp");
        assert_eq!(c("O+").link_label(&c("O-")), "O");
    }

    #[test]
    fn display_roundtrip() {
        for s in ["O+", "Ss-", "@MV+", "S*b-"] {
            assert_eq!(c(s).to_string(), s);
        }
    }
}
