//! Experiment runners — one per table/figure of the paper, plus ablations.
//!
//! Each runner returns a structured report; the `repro` binary renders them
//! as text tables shaped like the paper's.

use cmr_core::{AssociationMethod, CategoricalExtractor, ExtractedRecord, FeatureOptions, Schema};
use cmr_corpus::{Corpus, CorpusBuilder, GoldRecord};
use cmr_engine::{Engine, EngineConfig};
use cmr_eval::{MultiValueScore, PrecisionRecall};
use cmr_ml::{CrossValidation, CvResult};
use cmr_ontology::{Ontology, OntologyProfile, ValueSet};
use cmr_text::{NumberValue, Record};

/// The default corpus for all experiments: the paper's setting.
pub fn paper_corpus() -> Corpus {
    CorpusBuilder::new().build()
}

/// Extracts every record of a corpus through the parallel engine (one
/// worker per core, no budget). Outputs come back in corpus order, so the
/// scoring loops below stay position-aligned with the gold records.
pub fn extract_corpus(
    corpus: &Corpus,
    cfg: EngineConfig,
    ontology: Ontology,
) -> Vec<ExtractedRecord> {
    let engine = Engine::new(cfg, Schema::paper(), ontology);
    let texts: Vec<&str> = corpus.records.iter().map(|r| r.text.as_str()).collect();
    engine
        .extract_batch(&texts)
        .items
        .into_iter()
        .map(|r| r.expect("no budget configured; extraction cannot fail"))
        .collect()
}

// ---------------------------------------------------------------------------
// E1 — numeric attributes (§5: "Precision (recall) for all eight numeric
// attributes is 100%").
// ---------------------------------------------------------------------------

/// Per-attribute precision/recall for the numeric experiment.
#[derive(Debug, Clone)]
pub struct NumericReport {
    /// (attribute, accumulator) rows in schema order.
    pub rows: Vec<(String, PrecisionRecall)>,
    /// Count of associations resolved by each mechanism.
    pub by_method: Vec<(String, usize)>,
}

impl NumericReport {
    /// True when every attribute hit 100/100.
    pub fn all_perfect(&self) -> bool {
        self.rows
            .iter()
            .all(|(_, pr)| pr.precision() == 1.0 && pr.recall() == 1.0)
    }
}

/// Gold numeric value for an attribute of a record.
pub(crate) fn gold_numeric(rec: &GoldRecord, attr: &str) -> Option<NumberValue> {
    Some(match attr {
        "blood_pressure" => NumberValue::Ratio(rec.blood_pressure.0, rec.blood_pressure.1),
        "pulse" => NumberValue::Int(rec.pulse),
        "temperature" => NumberValue::Float(rec.temperature),
        "weight" => NumberValue::Int(rec.weight),
        "menarche_age" => NumberValue::Int(rec.menarche_age),
        "gravida" => NumberValue::Int(rec.gravida),
        "para" => NumberValue::Int(rec.para),
        "first_birth_age" => NumberValue::Int(rec.first_birth_age),
        "age" => NumberValue::Int(rec.age),
        _ => return None,
    })
}

pub(crate) fn values_equal(a: &NumberValue, b: &NumberValue) -> bool {
    match (a, b) {
        (NumberValue::Float(x), NumberValue::Float(y)) => (x - y).abs() < 1e-9,
        (NumberValue::Int(x), NumberValue::Float(y))
        | (NumberValue::Float(y), NumberValue::Int(x)) => (*x as f64 - y).abs() < 1e-9,
        _ => a == b,
    }
}

/// Runs the numeric experiment with a given association method.
pub fn run_numeric(corpus: &Corpus, method: AssociationMethod) -> NumericReport {
    run_numeric_cfg(
        corpus,
        EngineConfig {
            method,
            ..EngineConfig::default()
        },
    )
}

/// Runs the numeric experiment with full engine control (the association
/// ablation turns the salvage tier off so the methods are compared bare).
pub fn run_numeric_cfg(corpus: &Corpus, cfg: EngineConfig) -> NumericReport {
    let outputs = extract_corpus(corpus, cfg, Ontology::full());
    let mut rows: Vec<(String, PrecisionRecall)> = Schema::paper_numeric_names()
        .iter()
        .map(|n| (n.to_string(), PrecisionRecall::new()))
        .collect();
    let mut link = 0usize;
    let mut pattern = 0usize;
    let mut yearold = 0usize;
    let mut proximity = 0usize;
    let mut salvage = 0usize;
    for (rec, out) in corpus.records.iter().zip(&outputs) {
        for (attr, pr) in rows.iter_mut() {
            let gold = gold_numeric(rec, attr);
            let got = out.numeric(attr);
            match (got, gold) {
                (Some(g), Some(t)) if values_equal(&g, &t) => pr.true_positives += 1,
                (Some(_), Some(_)) => {
                    pr.false_positives += 1;
                    pr.false_negatives += 1;
                }
                (Some(_), None) => pr.false_positives += 1,
                (None, Some(_)) => pr.false_negatives += 1,
                (None, None) => {}
            }
        }
        for m in out.numeric_methods.values() {
            match m {
                cmr_core::MethodUsed::LinkGrammar => link += 1,
                cmr_core::MethodUsed::Pattern => pattern += 1,
                cmr_core::MethodUsed::YearOld => yearold += 1,
                cmr_core::MethodUsed::Proximity => proximity += 1,
                cmr_core::MethodUsed::Salvage => salvage += 1,
            }
        }
    }
    NumericReport {
        rows,
        by_method: vec![
            ("link-grammar".into(), link),
            ("pattern".into(), pattern),
            ("year-old".into(), yearold),
            ("proximity".into(), proximity),
            ("salvage".into(), salvage),
        ],
    }
}

// ---------------------------------------------------------------------------
// E2 — smoking classification (§5: 45 cases, 5-fold CV × 10, ≈92.2%,
// 4–7 features).
// ---------------------------------------------------------------------------

/// Labeled smoking examples: (Social History text, class label).
pub fn smoking_examples(corpus: &Corpus) -> Vec<(String, String)> {
    corpus
        .records
        .iter()
        .filter_map(|rec| {
            let status = rec.smoking?;
            let parsed = Record::parse(&rec.text);
            let social = parsed.section("Social History")?;
            Some((social.body.clone(), status.label().to_string()))
        })
        .collect()
}

/// Runs the smoking cross-validation with given feature options.
pub fn run_smoking(corpus: &Corpus, options: FeatureOptions) -> CvResult {
    let examples = smoking_examples(corpus);
    let clf = CategoricalExtractor::new(options);
    clf.cross_validate(&examples, CrossValidation::default())
}

// ---------------------------------------------------------------------------
// X1 — alcohol classification with numeric boolean features (§3.3's
// proposed extension).
// ---------------------------------------------------------------------------

/// Labeled alcohol examples.
pub fn alcohol_examples(corpus: &Corpus) -> Vec<(String, String)> {
    corpus
        .records
        .iter()
        .filter_map(|rec| {
            let use_ = rec.alcohol?;
            let parsed = Record::parse(&rec.text);
            let social = parsed.section("Social History")?;
            Some((social.body.clone(), use_.label().to_string()))
        })
        .collect()
}

/// Alcohol CV with and without the numeric boolean features, to show the
/// extension's effect.
pub fn run_alcohol(corpus: &Corpus) -> (CvResult, CvResult) {
    let examples = alcohol_examples(corpus);
    let without = CategoricalExtractor::new(FeatureOptions::paper_smoking())
        .cross_validate(&examples, CrossValidation::default());
    let with = CategoricalExtractor::new(FeatureOptions::paper_alcohol())
        .cross_validate(&examples, CrossValidation::default());
    (without, with)
}

// ---------------------------------------------------------------------------
// X2 — the remaining categorical attributes of the schema (§5: "we have not
// completed classification of all categorical fields"): body shape and
// three binary fields, completed here with the same machinery.
// ---------------------------------------------------------------------------

/// Labeled examples for a categorical field: (section text, label).
fn field_examples(
    corpus: &Corpus,
    section: &str,
    label_of: impl Fn(&GoldRecord) -> Option<String>,
) -> Vec<(String, String)> {
    corpus
        .records
        .iter()
        .filter_map(|rec| {
            let label = label_of(rec)?;
            let parsed = Record::parse(&rec.text);
            Some((parsed.section(section)?.body.clone(), label))
        })
        .collect()
}

/// Cross-validates every categorical field the paper left incomplete.
/// Returns (field name, CV result, n cases).
pub fn run_remaining_categorical(corpus: &Corpus) -> Vec<(&'static str, CvResult, usize)> {
    type LabelFn = Box<dyn Fn(&GoldRecord) -> Option<String>>;
    let yn = |b: bool| Some(if b { "yes" } else { "no" }.to_string());
    let fields: Vec<(&'static str, &str, LabelFn)> = vec![
        (
            "shape",
            "Physical examination",
            Box::new(|r: &GoldRecord| r.shape.map(|s| s.label().to_string())),
        ),
        (
            "family_history_breast_cancer",
            "Family History",
            Box::new(move |r: &GoldRecord| yn(r.family_history_breast_cancer)),
        ),
        (
            "drug_use",
            "Social History",
            Box::new(move |r: &GoldRecord| yn(r.drug_use)),
        ),
        (
            "allergies_present",
            "Allergies",
            Box::new(move |r: &GoldRecord| yn(r.allergies_present)),
        ),
    ];
    fields
        .into_iter()
        .map(|(name, section, label_of)| {
            let examples = field_examples(corpus, section, label_of);
            let n = examples.len();
            let clf = CategoricalExtractor::new(FeatureOptions::paper_smoking());
            (
                name,
                clf.cross_validate(&examples, CrossValidation::default()),
                n,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// A5 — ablation: classifier choice. §3.3 claims "the ID3 decision tree is
// supposed to use less features than other decision tree algorithms".
// ---------------------------------------------------------------------------

/// One classifier-ablation row: name, mean accuracy, and the feature-count
/// range where the classifier has one (trees do, Naive Bayes does not).
pub type ClassifierRow = (&'static str, f64, Option<(usize, usize)>);

/// Classifier-ablation rows for the smoking task.
pub fn run_ablation_classifier(corpus: &Corpus) -> Vec<ClassifierRow> {
    use cmr_ml::{Id3Params, NaiveBayes, SplitCriterion};
    let examples = smoking_examples(corpus);
    let clf = CategoricalExtractor::new(FeatureOptions::paper_smoking());
    let data = clf.build_dataset(&examples);
    let mut out = Vec::new();
    for (name, criterion) in [
        ("ID3 (information gain)", SplitCriterion::InformationGain),
        ("tree (Gini)", SplitCriterion::GiniGain),
        ("tree (gain ratio)", SplitCriterion::GainRatio),
    ] {
        let cv = CrossValidation {
            params: Id3Params {
                criterion,
                ..Id3Params::default()
            },
            ..CrossValidation::default()
        };
        let r = cv.run(&data);
        out.push((name, r.mean_accuracy(), Some(r.feature_count_range())));
    }
    let r = CrossValidation::default().run_with::<NaiveBayes>(&data);
    out.push(("Naive Bayes (all features)", r.mean_accuracy(), None));
    out
}

// ---------------------------------------------------------------------------
// T1 — Table 1: medical term extraction.
// ---------------------------------------------------------------------------

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Attribute name as in the paper's Table 1.
    pub attribute: &'static str,
    /// Pooled scores over all subjects.
    pub score: MultiValueScore,
}

/// The Table 1 report: four attributes.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// Runs the medical-term experiment under an ontology profile with the
/// paper's pattern inventory.
pub fn run_table1(corpus: &Corpus, profile: OntologyProfile) -> Table1Report {
    run_table1_with(corpus, profile, cmr_core::PatternSet::Paper)
}

/// Runs the medical-term experiment with a chosen pattern inventory
/// (ablation A6: the paper's four patterns cannot reach terms longer than
/// three words).
pub fn run_table1_with(
    corpus: &Corpus,
    profile: OntologyProfile,
    patterns: cmr_core::PatternSet,
) -> Table1Report {
    let outputs = extract_corpus(
        corpus,
        EngineConfig {
            term_patterns: patterns,
            ..EngineConfig::default()
        },
        Ontology::with_profile(profile),
    );
    // Gold partition uses the *full* ontology (truth is independent of the
    // extractor's vocabulary).
    let full = Ontology::full();
    let med_set = ValueSet::predefined_medical_history();
    let surg_set = ValueSet::predefined_surgical_history();

    let mut pre_med = MultiValueScore::new();
    let mut other_med = MultiValueScore::new();
    let mut pre_surg = MultiValueScore::new();
    let mut other_surg = MultiValueScore::new();

    for (rec, out) in corpus.records.iter().zip(&outputs) {
        let (gold_pre_med, gold_other_med) = partition_gold(&rec.medical_history, &full, &med_set);
        let (gold_pre_surg, gold_other_surg) =
            partition_gold(&rec.surgical_history, &full, &surg_set);
        pre_med.add_subject(&out.predefined_medical, &gold_pre_med);
        other_med.add_subject(&out.other_medical, &gold_other_med);
        pre_surg.add_subject(&out.predefined_surgical, &gold_pre_surg);
        other_surg.add_subject(&out.other_surgical, &gold_other_surg);
    }
    Table1Report {
        rows: vec![
            Table1Row {
                attribute: "Predefined Past Medical History",
                score: pre_med,
            },
            Table1Row {
                attribute: "Other Past Medical History",
                score: other_med,
            },
            Table1Row {
                attribute: "Predefined Past Surgical History",
                score: pre_surg,
            },
            Table1Row {
                attribute: "Other Past Surgical History",
                score: other_surg,
            },
        ],
    }
}

fn partition_gold(gold: &[String], onto: &Ontology, set: &ValueSet) -> (Vec<String>, Vec<String>) {
    gold.iter()
        .cloned()
        .partition(|name| onto.lookup(name).map(|c| set.contains(c)).unwrap_or(false))
}

// ---------------------------------------------------------------------------
// F1 — Figure 1: the linkage diagram.
// ---------------------------------------------------------------------------

/// Renders the paper's Figure 1 linkage diagram (plus the full vitals
/// sentence) and the distance table that drives association.
pub fn run_figure1() -> String {
    let parser = cmr_linkgram::LinkParser::new();
    let weights = cmr_linkgram::LinkWeights::default();
    let mut out = String::new();
    let clause = "Blood pressure is 144/90.";
    let full =
        "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.";
    for text in [clause, full] {
        out.push_str(&format!("Sentence: {text}\n"));
        match parser.parse_sentence(text) {
            Some(linkage) => {
                out.push_str(&linkage.diagram());
                out.push('\n');
                // Distances from each feature keyword to each number.
                for (feat, num) in [
                    ("pressure", "144/90"),
                    ("pulse", "84"),
                    ("temperature", "98.3"),
                    ("weight", "154"),
                ] {
                    let f = linkage.words.iter().position(|w| w == feat);
                    let n = linkage.words.iter().position(|w| w == num);
                    if let (Some(f), Some(n)) = (f, n) {
                        out.push_str(&format!(
                            "  d({feat}, {num}) = {:.2}\n",
                            linkage.distance(f, n, &weights)
                        ));
                    }
                }
            }
            None => out.push_str("  (no linkage)\n"),
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// A1 — ablation: association method.
// ---------------------------------------------------------------------------

/// Association-method ablation across style variations: recall of correct
/// numeric values per method.
#[derive(Debug, Clone)]
pub struct AssocAblation {
    /// (style, method name, micro recall over the 8 attributes).
    pub cells: Vec<(f64, &'static str, f64)>,
}

/// Runs the association ablation.
pub fn run_ablation_assoc(styles: &[f64], seed: u64) -> AssocAblation {
    let mut cells = Vec::new();
    for &style in styles {
        let corpus = CorpusBuilder::new()
            .seed(seed)
            .style_variation(style)
            .build();
        for (name, method) in [
            ("link+fallback", AssociationMethod::LinkWithFallback),
            ("link-only", AssociationMethod::LinkOnly),
            ("pattern-only", AssociationMethod::PatternOnly),
            ("proximity", AssociationMethod::Proximity),
        ] {
            // Salvage off: the point of this ablation is how the structured
            // association methods compare, and the keyword-scan salvage tier
            // would paper over link-only's fragment blindness.
            let report = run_numeric_cfg(
                &corpus,
                EngineConfig {
                    method,
                    salvage: false,
                    ..EngineConfig::default()
                },
            );
            let mut pooled = PrecisionRecall::new();
            for (_, pr) in &report.rows {
                pooled.merge(pr);
            }
            cells.push((style, name, pooled.recall()));
        }
    }
    AssocAblation { cells }
}

// ---------------------------------------------------------------------------
// A2 — ablation: feature-extraction options.
// ---------------------------------------------------------------------------

/// Named option variants for the feature ablation.
pub fn feature_option_variants() -> Vec<(&'static str, FeatureOptions)> {
    let base = FeatureOptions::paper_smoking();
    vec![
        ("paper (all POS, lemma on)", base.clone()),
        (
            "lemma off",
            FeatureOptions {
                use_lemma: false,
                ..base.clone()
            },
        ),
        (
            "verbs only",
            FeatureOptions {
                nouns: false,
                adjectives: false,
                adverbs: false,
                ..base.clone()
            },
        ),
        (
            "nouns only",
            FeatureOptions {
                verbs: false,
                adjectives: false,
                adverbs: false,
                ..base.clone()
            },
        ),
        (
            "head words only",
            FeatureOptions {
                head_only: true,
                ..base.clone()
            },
        ),
        (
            "verb constituent only",
            FeatureOptions {
                subject: false,
                object: false,
                supplement: false,
                ..base
            },
        ),
    ]
}

// ---------------------------------------------------------------------------
// A3 — style sweep (the paper's degradation conjecture).
// ---------------------------------------------------------------------------

/// Style-sweep report: numeric recall and smoking accuracy per style level.
#[derive(Debug, Clone)]
pub struct StyleSweep {
    /// (style, numeric micro recall, smoking CV accuracy).
    pub rows: Vec<(f64, f64, f64)>,
}

/// Runs the style sweep.
pub fn run_style_sweep(styles: &[f64], seed: u64) -> StyleSweep {
    let mut rows = Vec::new();
    for &style in styles {
        let corpus = CorpusBuilder::new()
            .seed(seed)
            .style_variation(style)
            .build();
        let numeric = run_numeric(&corpus, AssociationMethod::LinkWithFallback);
        let mut pooled = PrecisionRecall::new();
        for (_, pr) in &numeric.rows {
            pooled.merge(pr);
        }
        let smoking = run_smoking(&corpus, FeatureOptions::paper_smoking());
        rows.push((style, pooled.recall(), smoking.mean_accuracy()));
    }
    StyleSweep { rows }
}

// ---------------------------------------------------------------------------
// X3 — negation handling (extension): the paper's extractor reports terms
// the note explicitly rules out. Family History is the natural test bed:
// two thirds of records dictate "Negative for breast cancer"-style lines.
// ---------------------------------------------------------------------------

/// Detecting "family history of breast cancer" by term presence in the
/// Family History section, with and without the negation filter.
/// Returns (without, with) accumulators against the binary gold flag.
pub fn run_negation(corpus: &Corpus) -> (PrecisionRecall, PrecisionRecall) {
    let plain = cmr_core::MedicalTermExtractor::new(Ontology::full());
    let filtered = cmr_core::MedicalTermExtractor::new(Ontology::full()).with_negation_filter(true);
    let mut without = PrecisionRecall::new();
    let mut with = PrecisionRecall::new();
    for rec in &corpus.records {
        let parsed = Record::parse(&rec.text);
        let Some(section) = parsed.section("Family History") else {
            continue;
        };
        let gold = rec.family_history_breast_cancer;
        for (ex, acc) in [(&plain, &mut without), (&filtered, &mut with)] {
            let found = ex
                .extract(&section.body)
                .iter()
                .any(|h| h.concept.preferred == "breast cancer");
            match (found, gold) {
                (true, true) => acc.true_positives += 1,
                (true, false) => acc.false_positives += 1,
                (false, true) => acc.false_negatives += 1,
                (false, false) => {}
            }
        }
    }
    (without, with)
}

// ---------------------------------------------------------------------------
// K1 — knowledge: cohort mining over extracted records (the paper's title
// and §1 motivation).
// ---------------------------------------------------------------------------

/// Builds a cohort from a corpus: extraction plus trained smoking labels.
pub fn build_cohort(corpus: &Corpus) -> cmr_knowledge::Cohort {
    build_cohort_with(corpus, cmr_core::PatternSet::Paper)
}

/// Builds a cohort with a chosen term-pattern inventory. The contrast
/// matters: the corpus plants a real smoker→COPD correlation, but COPD's
/// preferred name is four words — *unreachable* by the paper's patterns —
/// so the knowledge layer can only surface the factor when extraction can
/// see it.
pub fn build_cohort_with(corpus: &Corpus, patterns: cmr_core::PatternSet) -> cmr_knowledge::Cohort {
    let outputs = extract_corpus(
        corpus,
        EngineConfig {
            term_patterns: patterns,
            ..EngineConfig::default()
        },
        Ontology::full(),
    );
    let mut clf = CategoricalExtractor::new(FeatureOptions::paper_smoking());
    clf.train(&smoking_examples(corpus));
    let mut cohort = cmr_knowledge::Cohort::new();
    for (rec, out) in corpus.records.iter().zip(&outputs) {
        let parsed = Record::parse(&rec.text);
        let social = parsed.section("Social History").map(|s| s.body.clone());
        let smoking = social
            .as_deref()
            .and_then(|t| clf.classify(t))
            .unwrap_or("");
        cohort.push_extracted(out, &[("smoking", smoking)]);
    }
    cohort
}

/// Mines the cohort: (top rules, significant associations as formatted
/// strings).
pub fn run_knowledge(corpus: &Corpus) -> (Vec<cmr_knowledge::Rule>, Vec<String>) {
    run_knowledge_with(corpus, cmr_core::PatternSet::Paper)
}

/// Mines the cohort built with a chosen pattern inventory.
pub fn run_knowledge_with(
    corpus: &Corpus,
    patterns: cmr_core::PatternSet,
) -> (Vec<cmr_knowledge::Rule>, Vec<String>) {
    let cohort = build_cohort_with(corpus, patterns);
    let rules = cmr_knowledge::mine_rules(&cohort, cmr_knowledge::RuleParams::default());
    let mut findings = Vec::new();
    for attr in cohort.attributes() {
        if !attr.starts_with("has:") && !attr.starts_with("had:") {
            continue;
        }
        for class in ["current", "former", "never"] {
            if let Some((chi2, sig)) =
                cmr_knowledge::association(&cohort, "smoking", class, &attr, "yes")
            {
                if sig {
                    findings.push(format!(
                        "smoking={class} vs {attr}: chi2 = {chi2:.2} (significant at 95%)"
                    ));
                }
            }
        }
    }
    (rules, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoking_examples_match_distribution() {
        let corpus = paper_corpus();
        let ex = smoking_examples(&corpus);
        assert_eq!(ex.len(), 45, "45 of 50 records document smoking");
        let never = ex.iter().filter(|(_, l)| l == "never").count();
        let former = ex.iter().filter(|(_, l)| l == "former").count();
        let current = ex.iter().filter(|(_, l)| l == "current").count();
        assert_eq!((never, former, current), (28, 5, 12));
    }

    #[test]
    fn figure1_renders() {
        let f = run_figure1();
        assert!(f.contains("LEFT-WALL"));
        assert!(f.contains("144/90"));
        assert!(f.contains("d(pulse, 84)"));
    }

    #[test]
    fn gold_numeric_covers_all_paper_attrs() {
        let corpus = CorpusBuilder::new().records(1).build();
        for attr in Schema::paper_numeric_names() {
            assert!(gold_numeric(&corpus.records[0], attr).is_some(), "{attr}");
        }
    }
}
