//! Deterministic fault injection for cmr's I/O paths.
//!
//! A *failpoint* is a named hook compiled into a write or socket path:
//!
//! ```ignore
//! if let Some(inj) = cmr_failpoint::io_inject("journal::append") {
//!     return Err(inj.into_io_error());
//! }
//! ```
//!
//! Without the `failpoints` cargo feature every hook is an inlined
//! function returning `None` — dead code the optimizer removes, so
//! production builds carry no injection machinery (CI greps the release
//! binary to prove it). With the feature on, hooks consult a global
//! registry configured either programmatically ([`FailpointRegistry`])
//! or from the `CMR_FAILPOINTS` environment variable.
//!
//! # Schedule grammar
//!
//! ```text
//! spec    := item (';' item)*
//! item    := 'seed=' u64 | name '=' action trigger?
//! action  := 'return-err' | 'panic' | 'enospc'
//!          | 'partial-write(' bytes ')' | 'delay(' millis ')'
//! trigger := '@' n      fire exactly once, on the n-th call (1-based)
//!          | '%' p      fire each call with probability p (0..=1)
//!                       (default: fire on every call)
//! ```
//!
//! Example: `journal::append=enospc@3;serve::write=delay(5)%0.25;seed=42`.
//!
//! # Determinism
//!
//! Probabilistic triggers draw from a per-failpoint xorshift stream
//! seeded by `(schedule seed) ⊕ fnv1a(name)`, and `@n` triggers count
//! calls per failpoint — so for a fixed spec, seed, and call sequence the
//! fired events are identical on every run. Each fire is appended to an
//! event log ([`events`]) that replay harnesses compare across runs.
//!
//! Panics are raised by [`io_inject`] at the call site (never while the
//! registry lock is held) and delays sleep before returning `None`, so a
//! `delay` schedule perturbs timing without changing control flow.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]
#![warn(missing_docs)]

use std::fmt;

/// Whether this build includes the real fault-injection layer.
pub const ENABLED: bool = cfg!(feature = "failpoints");

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with a generic injected I/O error.
    ReturnErr,
    /// Fail the operation with an `ENOSPC`-class (`StorageFull`) error.
    Enospc,
    /// Write only the first `n` bytes, then fail — a torn write.
    PartialWrite(usize),
    /// Sleep for the given milliseconds, then proceed normally.
    Delay(u64),
    /// Panic at the call site (simulates a crash mid-operation).
    Panic,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::ReturnErr => write!(f, "return-err"),
            Action::Enospc => write!(f, "enospc"),
            Action::PartialWrite(n) => write!(f, "partial-write({n})"),
            Action::Delay(ms) => write!(f, "delay({ms})"),
            Action::Panic => write!(f, "panic"),
        }
    }
}

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// On every call.
    Always,
    /// Exactly once, on the n-th call (1-based).
    Nth(u64),
    /// Each call independently, with this probability (0..=1), drawn
    /// from the failpoint's seeded stream.
    Prob(f64),
}

/// One recorded fire: which failpoint, on which of its calls, doing what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredEvent {
    /// The failpoint name.
    pub name: String,
    /// 1-based call counter at the moment it fired.
    pub call: u64,
    /// The action taken.
    pub action: Action,
}

impl fmt::Display for FiredEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}={}", self.name, self.call, self.action)
    }
}

/// What [`io_inject`] asks an I/O call site to do.
#[derive(Debug)]
pub enum IoInjection {
    /// Fail with this error instead of performing the operation.
    Error(std::io::Error),
    /// Perform only the first `n` bytes of the write, then fail.
    Partial(usize),
}

impl IoInjection {
    /// The error to surface (partial writes become `StorageFull`, the
    /// same class a torn write on a full disk would produce).
    pub fn into_io_error(self) -> std::io::Error {
        match self {
            IoInjection::Error(e) => e,
            IoInjection::Partial(n) => std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                format!("failpoint: torn write after {n} bytes"),
            ),
        }
    }
}

/// A programmatic fault schedule; [`install`](Self::install) makes it the
/// process-wide active schedule.
#[derive(Debug, Clone, Default)]
pub struct FailpointRegistry {
    seed: u64,
    points: Vec<(String, Action, Trigger)>,
}

impl FailpointRegistry {
    /// An empty schedule with the given seed.
    pub fn new(seed: u64) -> FailpointRegistry {
        FailpointRegistry {
            seed,
            points: Vec::new(),
        }
    }

    /// Arms `name` with `action` under `trigger`.
    #[must_use]
    pub fn arm(mut self, name: &str, action: Action, trigger: Trigger) -> FailpointRegistry {
        self.points.push((name.to_string(), action, trigger));
        self
    }

    /// Parses the `CMR_FAILPOINTS` grammar (see the crate docs).
    pub fn parse(spec: &str) -> Result<FailpointRegistry, String> {
        let mut reg = FailpointRegistry::new(0);
        for raw in spec.split(';') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            let (name, rhs) = item
                .split_once('=')
                .ok_or_else(|| format!("failpoint spec item `{item}` is missing `=`"))?;
            let (name, rhs) = (name.trim(), rhs.trim());
            if name == "seed" {
                reg.seed = rhs
                    .parse::<u64>()
                    .map_err(|_| format!("failpoint seed `{rhs}` is not a u64"))?;
                continue;
            }
            let (action_text, trigger) = split_trigger(rhs)?;
            let action = parse_action(action_text)?;
            reg.points.push((name.to_string(), action, trigger));
        }
        Ok(reg)
    }

    /// Renders back to the spec grammar (parse → to_spec is stable).
    pub fn to_spec(&self) -> String {
        let mut parts: Vec<String> = self
            .points
            .iter()
            .map(|(name, action, trigger)| {
                let t = match trigger {
                    Trigger::Always => String::new(),
                    Trigger::Nth(n) => format!("@{n}"),
                    Trigger::Prob(p) => format!("%{p}"),
                };
                format!("{name}={action}{t}")
            })
            .collect();
        parts.push(format!("seed={}", self.seed));
        parts.join(";")
    }

    /// Installs this schedule process-wide, replacing any previous one
    /// and clearing the event log.
    ///
    /// Errors when the build does not include the `failpoints` feature.
    pub fn install(self) -> Result<(), String> {
        install_registry(self)
    }
}

fn split_trigger(rhs: &str) -> Result<(&str, Trigger), String> {
    // The trigger suffix starts at a '@' or '%' *after* the action token
    // (actions never contain either character).
    if let Some(at) = rhs.rfind('@') {
        let n = rhs[at + 1..]
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("failpoint trigger `@{}` is not a u64", &rhs[at + 1..]))?;
        if n == 0 {
            return Err("failpoint trigger `@0` is invalid (calls are 1-based)".to_string());
        }
        return Ok((rhs[..at].trim(), Trigger::Nth(n)));
    }
    if let Some(pc) = rhs.rfind('%') {
        let p = rhs[pc + 1..]
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("failpoint trigger `%{}` is not a number", &rhs[pc + 1..]))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("failpoint probability {p} is outside 0..=1"));
        }
        return Ok((rhs[..pc].trim(), Trigger::Prob(p)));
    }
    Ok((rhs.trim(), Trigger::Always))
}

fn parse_action(text: &str) -> Result<Action, String> {
    match text {
        "return-err" => return Ok(Action::ReturnErr),
        "enospc" => return Ok(Action::Enospc),
        "panic" => return Ok(Action::Panic),
        _ => {}
    }
    if let Some(arg) = text
        .strip_prefix("partial-write(")
        .and_then(|t| t.strip_suffix(')'))
    {
        let n = arg
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("partial-write argument `{arg}` is not a byte count"))?;
        return Ok(Action::PartialWrite(n));
    }
    if let Some(arg) = text
        .strip_prefix("delay(")
        .and_then(|t| t.strip_suffix(')'))
    {
        let ms = arg
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("delay argument `{arg}` is not milliseconds"))?;
        return Ok(Action::Delay(ms));
    }
    Err(format!(
        "unknown failpoint action `{text}` (expected return-err, enospc, panic, partial-write(n), or delay(ms))"
    ))
}

/// Checks the named failpoint: `Some(action)` when it fires this call.
///
/// Call sites that only need I/O semantics should prefer [`io_inject`],
/// which also enacts `delay` and `panic`.
#[inline(always)]
pub fn fire(name: &str) -> Option<Action> {
    imp::fire(name)
}

/// Checks the named failpoint at an I/O call site. Enacts `delay`
/// (sleeps, returns `None`) and `panic` (panics here) directly; maps the
/// error-shaped actions to an [`IoInjection`] for the caller to apply.
#[inline(always)]
pub fn io_inject(name: &str) -> Option<IoInjection> {
    match fire(name)? {
        Action::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Action::Panic => panic!("failpoint: panic injected at `{name}`"),
        Action::ReturnErr => Some(IoInjection::Error(std::io::Error::other(format!(
            "failpoint: injected I/O error at `{name}`"
        )))),
        Action::Enospc => Some(IoInjection::Error(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            format!("failpoint: injected ENOSPC at `{name}`"),
        ))),
        Action::PartialWrite(n) => Some(IoInjection::Partial(n)),
    }
}

/// Convenience macro form: `cmr_failpoint::fire!("journal::append")`.
///
/// Identical to calling [`fire`]; exists so call sites read as markers.
#[macro_export]
macro_rules! fire {
    ($name:expr) => {
        $crate::fire($name)
    };
}

/// Installs the schedule from `CMR_FAILPOINTS`, if set. Returns whether
/// a schedule was installed.
pub fn configure_from_env() -> Result<bool, String> {
    match std::env::var("CMR_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Parses and installs a schedule from the spec grammar.
pub fn configure(spec: &str) -> Result<(), String> {
    FailpointRegistry::parse(spec)?.install()
}

/// Disarms every failpoint (the event log survives until the next
/// [`FailpointRegistry::install`]).
pub fn clear() {
    imp::clear();
}

/// The fires recorded since the last install, in order.
pub fn events() -> Vec<FiredEvent> {
    imp::events()
}

fn install_registry(reg: FailpointRegistry) -> Result<(), String> {
    imp::install(reg)
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{Action, FailpointRegistry, FiredEvent, Trigger};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Fast path: a single relaxed load when nothing is armed.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();

    /// Bounds the event log; a sweep observing more fires than this per
    /// schedule is misconfigured, not under-observed.
    const MAX_EVENTS: usize = 65_536;

    #[derive(Default)]
    struct State {
        points: HashMap<String, Point>,
        events: Vec<FiredEvent>,
    }

    struct Point {
        action: Action,
        trigger: Trigger,
        calls: u64,
        rng: u64,
    }

    fn state() -> MutexGuard<'static, State> {
        let lock = STATE.get_or_init(|| Mutex::new(State::default()));
        // A panic action never unwinds while this lock is held (panics
        // are enacted at the call site), but a caller's unrelated panic
        // could still poison it; the state is always internally
        // consistent, so recover rather than cascade.
        match lock.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = FNV_OFFSET;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// splitmix64: turns `seed ⊕ fnv1a(name)` into a well-mixed non-zero
    /// xorshift state.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// xorshift64*: one draw in [0, 1).
    fn next_unit(state: &mut u64) -> f64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        let bits = x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11;
        (bits as f64) / ((1u64 << 53) as f64)
    }

    pub(super) fn install(reg: FailpointRegistry) -> Result<(), String> {
        let mut st = state();
        st.points.clear();
        st.events.clear();
        for (name, action, trigger) in reg.points {
            let rng = {
                let mixed = mix(reg.seed ^ fnv1a(name.as_bytes()));
                if mixed == 0 {
                    1
                } else {
                    mixed
                }
            };
            st.points.insert(
                name,
                Point {
                    action,
                    trigger,
                    calls: 0,
                    rng,
                },
            );
        }
        ACTIVE.store(!st.points.is_empty(), Ordering::SeqCst);
        Ok(())
    }

    pub(super) fn clear() {
        let mut st = state();
        st.points.clear();
        ACTIVE.store(false, Ordering::SeqCst);
    }

    pub(super) fn events() -> Vec<FiredEvent> {
        state().events.clone()
    }

    pub(super) fn fire(name: &str) -> Option<Action> {
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
        let mut st = state();
        let point = st.points.get_mut(name)?;
        point.calls += 1;
        let fired = match point.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => point.calls == n,
            Trigger::Prob(p) => next_unit(&mut point.rng) < p,
        };
        if !fired {
            return None;
        }
        let action = point.action;
        let call = point.calls;
        if st.events.len() < MAX_EVENTS {
            st.events.push(FiredEvent {
                name: name.to_string(),
                call,
                action,
            });
        }
        Some(action)
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::{Action, FailpointRegistry, FiredEvent};

    #[inline(always)]
    pub(super) fn fire(_name: &str) -> Option<Action> {
        None
    }

    pub(super) fn install(_reg: FailpointRegistry) -> Result<(), String> {
        Err("this build does not include the fault-injection layer \
             (rebuild with `--features failpoints`)"
            .to_string())
    }

    #[inline(always)]
    pub(super) fn clear() {}

    #[inline(always)]
    pub(super) fn events() -> Vec<FiredEvent> {
        Vec::new()
    }
}

#[cfg(all(test, feature = "failpoints"))]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; tests serialize on this.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK.get_or_init(|| Mutex::new(()));
        match lock.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn unarmed_failpoints_do_not_fire() {
        let _g = guard();
        clear();
        assert_eq!(fire("journal::append"), None);
        assert!(io_inject("journal::append").is_none());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = guard();
        configure("journal::append=enospc@3;seed=7").unwrap();
        assert_eq!(fire("journal::append"), None);
        assert_eq!(fire("journal::append"), None);
        assert_eq!(fire("journal::append"), Some(Action::Enospc));
        assert_eq!(fire("journal::append"), None);
        let ev = events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "journal::append");
        assert_eq!(ev[0].call, 3);
        clear();
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            configure(&format!("serve::write=return-err%0.5;seed={seed}")).unwrap();
            (0..64).map(|_| fire("serve::write").is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed replays the same fire sequence");
        assert_ne!(a, c, "different seed gives a different sequence");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        clear();
    }

    #[test]
    fn distinct_names_draw_distinct_streams() {
        let _g = guard();
        configure("a=return-err%0.5;b=return-err%0.5;seed=9").unwrap();
        let a: Vec<bool> = (0..64).map(|_| fire("a").is_some()).collect();
        let b: Vec<bool> = (0..64).map(|_| fire("b").is_some()).collect();
        assert_ne!(a, b);
        clear();
    }

    #[test]
    fn io_inject_maps_actions() {
        let _g = guard();
        configure("p=partial-write(7);seed=1").unwrap();
        match io_inject("p") {
            Some(IoInjection::Partial(7)) => {}
            other => panic!("expected Partial(7), got {other:?}"),
        }
        configure("e=enospc;seed=1").unwrap();
        match io_inject("e") {
            Some(IoInjection::Error(err)) => {
                assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
                assert!(err.to_string().contains("failpoint:"));
            }
            other => panic!("expected Error, got {other:?}"),
        }
        configure("d=delay(1);seed=1").unwrap();
        assert!(io_inject("d").is_none(), "delay proceeds normally");
        clear();
    }

    #[test]
    #[should_panic(expected = "failpoint: panic injected")]
    fn panic_action_panics_at_the_call_site() {
        let _g = guard();
        configure("boom=panic;seed=1").unwrap();
        let _ = io_inject("boom");
    }

    #[test]
    fn spec_roundtrips_and_rejects_garbage() {
        let _g = guard();
        let reg = FailpointRegistry::parse(
            "journal::append=partial-write(9)@2;serve::read=delay(3)%0.1;seed=5",
        )
        .unwrap();
        let spec = reg.to_spec();
        let again = FailpointRegistry::parse(&spec).unwrap();
        assert_eq!(spec, again.to_spec());

        assert!(FailpointRegistry::parse("x=warp-core-breach").is_err());
        assert!(FailpointRegistry::parse("x=enospc@0").is_err());
        assert!(FailpointRegistry::parse("x=enospc%1.5").is_err());
        assert!(FailpointRegistry::parse("seed=notanumber").is_err());
        assert!(FailpointRegistry::parse("justaname").is_err());
        clear();
    }

    #[test]
    fn macro_form_compiles_and_fires() {
        let _g = guard();
        configure("m=return-err;seed=1").unwrap();
        assert_eq!(crate::fire!("m"), Some(Action::ReturnErr));
        clear();
    }
}
