//! The resident extraction server.
//!
//! ```text
//! accept thread ──► idle set (readiness-polled) ──► bounded work queue ──► workers
//!       ▲                                                │
//!       └──────────── keep-alive connections ◄───────────┘
//! ```
//!
//! One thread owns the listener and every *idle* connection: it accepts,
//! peeks each idle socket for readability (a poor man's `select` — no
//! `epoll` without `libc`), and moves readable connections into a bounded
//! work queue. Workers pull a connection, read exactly one request (plus
//! any pipelined followers already buffered), run it through a warm
//! [`cmr_engine::ServiceWorker`], respond, and hand the connection back
//! to the accept thread. Admission control is the queue bound: a readable
//! connection that does not fit answers `429` with `Retry-After` and
//! closes — load sheds at the door, not by queueing without bound.
//!
//! Shutdown (SIGINT/SIGTERM raising the shared flag) drains: the
//! listener closes, idle connections drop (clients see a stale keep-alive
//! close and retry elsewhere), queued and in-flight requests complete
//! with `Connection: close`, workers exit, and [`Server::run`] returns —
//! every byte of every accepted request's response is flushed first.

use crate::http::{write_response, ChunkedWriter, Conn, ReadOutcome, Request};
use crate::ndjson;
use cmr_core::Schema;
use cmr_engine::{
    startup_lint_summary, EngineConfig, EngineError, LatencyKind, ServiceHandle, ServiceWorker,
};
use cmr_ontology::Ontology;
use cmr_sync::{TrackedCondvar, TrackedMutex};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io;
use std::io::Read as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accept-loop tick: the pause when a pass over the listener and the
/// idle set found nothing to do. Bounds idle CPU at ~1k peeks/sec/conn
/// and adds at most ~one tick of latency to request pickup.
const TICK: Duration = Duration::from_millis(1);

/// How long a worker waits for the first byte of a request on a
/// connection the accept thread already saw readable (generous — the
/// data is normally there before the worker gets the connection).
const FIRST_BYTE_WAIT: Duration = Duration::from_millis(250);

/// Per-read deadline once a request has started arriving; a peer that
/// stalls longer mid-request forfeits the connection.
const COMMIT_TIMEOUT: Duration = Duration::from_secs(10);

/// Whole-request deadline once the first byte has arrived. A slowloris
/// client dripping one byte per read resets `COMMIT_TIMEOUT` every time;
/// it cannot reset this.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port `0` picks a free one).
    pub addr: String,
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Bound of the ready-request queue; a readable connection beyond
    /// this answers `429`.
    pub queue_depth: usize,
    /// Per-request extraction wall-clock deadline, milliseconds
    /// (watchdog-enforced, like `cmr extract --timeout-ms`).
    pub timeout_ms: Option<u64>,
    /// Per-request sentence budget.
    pub max_sentences: Option<usize>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            jobs: 0,
            queue_depth: 64,
            timeout_ms: None,
            max_sentences: None,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Why the server could not start or run.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind(String, io::Error),
    /// The startup asset lint found errors; the service refuses to come
    /// up over a broken knowledge base.
    Lint(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(addr, e) => write!(f, "binding {addr}: {e}"),
            ServeError::Lint(msg) => write!(f, "rule assets failed the startup lint:\n{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What a finished [`Server::run`] reports.
#[derive(Debug, Clone, Serialize)]
pub struct ServeSummary {
    /// Requests served (extract + batch + health + metrics).
    pub requests: u64,
    /// Connections refused with `429` at admission.
    pub rejected: u64,
}

/// `GET /health` response body. Serialize *and* Deserialize so
/// orchestrator-side parsing is pinned by the round-trip test below.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HealthReport {
    status: String,
    jobs: u64,
    uptime_ms: u64,
    requests: u64,
    rejected: u64,
    /// Watchdog/budget trips since boot (degradation, not failure).
    timeouts: u64,
    /// Transient-failure re-attempts since boot.
    retries: u64,
    /// Records that exhausted their retries and were quarantined.
    quarantined: u64,
    lint: cmr_analyze::Summary,
    assets: String,
}

/// State shared between the accept thread and every worker.
struct Shared {
    service: Arc<ServiceHandle>,
    queue: ConnQueue,
    idle_return: TrackedMutex<Vec<Conn>>,
    shutdown: Arc<AtomicBool>,
    cfg: ServeConfig,
    /// All responses written, any endpoint or status (including `429`).
    requests: AtomicU64,
    rejected: AtomicU64,
}

/// A bound, running-but-not-yet-serving server. Splitting bind from run
/// lets callers learn the actual address (port `0`) before the blocking
/// serve loop starts.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the warm engine state. The startup
    /// lint gate runs here: a broken rule asset fails `bind`, not the
    /// first request.
    pub fn bind(cfg: ServeConfig, shutdown: Arc<AtomicBool>) -> Result<Server, ServeError> {
        let engine_cfg = EngineConfig {
            jobs: cfg.jobs,
            max_record_millis: cfg.timeout_ms,
            max_record_sentences: cfg.max_sentences,
            ..EngineConfig::default()
        };
        let service = ServiceHandle::new(engine_cfg, Schema::paper(), Ontology::full()).map_err(
            |e| match e {
                EngineError::Lint { message } => ServeError::Lint(message),
                other => ServeError::Lint(other.to_string()),
            },
        )?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| ServeError::Bind(cfg.addr.clone(), e))?;
        let queue = ConnQueue::new(cfg.queue_depth.max(1));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                service,
                queue,
                idle_return: TrackedMutex::new("serve.idle_return", Vec::new()),
                shutdown,
                cfg,
                requests: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }),
        })
    }

    /// The actual bound address (resolves port `0`).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until the shutdown flag rises, then drains and returns.
    /// Every request accepted into the queue before the drain gets a
    /// complete response.
    pub fn run(self) -> io::Result<ServeSummary> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;
        let jobs = shared.service.jobs();
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(jobs);
            for widx in 0..jobs {
                let shared = Arc::clone(&shared);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("serve-worker-{widx}"))
                        .spawn_scoped(scope, move || worker_loop(&shared, widx))
                        .expect("spawning worker thread"),
                );
            }

            accept_loop(&listener, &shared);

            // Drain: no new connections, no revived keep-alives.
            drop(listener);
            shared.queue.close();
            for w in workers {
                let _ = w.join();
            }
            // Connections returned by workers racing the drain.
            shared.idle_return.lock().map(|mut v| v.clear()).ok();
        });
        Ok(ServeSummary {
            requests: shared.requests.load(Ordering::Relaxed),
            rejected: shared.rejected.load(Ordering::Relaxed),
        })
    }
}

/// The accept thread's loop: accept fresh connections, poll the idle set
/// for readability, feed the work queue, shed load with `429`.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut idle: VecDeque<Conn> = VecDeque::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            // Stale keep-alives just drop: a client that raced a request
            // into one sees EOF before any response bytes and retries on
            // a fresh connection (which the closed listener refuses).
            idle.clear();
            return;
        }
        let mut progressed = false;

        // Keep-alive connections coming back from workers.
        if let Ok(mut returned) = shared.idle_return.lock() {
            for conn in returned.drain(..) {
                if conn.stream.set_nonblocking(true).is_ok() {
                    idle.push_back(conn);
                }
            }
        }

        // Fresh connections enter the idle set; their first request
        // makes them readable like any keep-alive reuse.
        loop {
            if cmr_failpoint::io_inject("serve::accept").is_some() {
                // An injected accept fault is transient: skip this pass,
                // the listener backlog holds the connection for the next.
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progressed = true;
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(COMMIT_TIMEOUT));
                    if stream.set_nonblocking(true).is_ok() {
                        idle.push_back(Conn::new(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }

        // Readiness pass: move readable connections into the queue.
        let mut still_idle = VecDeque::with_capacity(idle.len());
        let mut peek = [0u8; 1];
        for conn in idle.drain(..) {
            let readable = if conn.has_buffered() {
                Some(true)
            } else {
                match conn.stream.peek(&mut peek) {
                    Ok(0) => None, // peer closed while idle
                    Ok(_) => Some(true),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => Some(false),
                    Err(_) => None,
                }
            };
            match readable {
                None => progressed = true, // dropped below
                Some(false) => still_idle.push_back(conn),
                Some(true) => {
                    progressed = true;
                    if conn.stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    if let Err(conn) = shared.queue.try_push(conn) {
                        reject_busy(conn, shared);
                    }
                }
            }
        }
        idle = still_idle;

        if !progressed {
            std::thread::sleep(TICK);
        }
    }
}

/// Answers `429 Too Many Requests` and closes: the queue is full, so the
/// cheapest honest signal is "come back later".
fn reject_busy(mut conn: Conn, shared: &Shared) {
    shared.rejected.fetch_add(1, Ordering::Relaxed);
    shared.requests.fetch_add(1, Ordering::Relaxed);
    // Drain what the client already sent before answering: closing a
    // socket with unread bytes in the receive buffer turns the close
    // into an RST, which can destroy the 429 before the client reads
    // it. Non-blocking — this runs on the accept thread.
    let mut sink = [0u8; 4096];
    if conn.stream.set_nonblocking(true).is_ok() {
        while matches!(conn.stream.read(&mut sink), Ok(1..)) {}
        let _ = conn.stream.set_nonblocking(false);
    }
    let _ = write_response(
        &mut conn.stream,
        429,
        "application/json",
        b"{\"error\":\"server busy, retry later\"}",
        false,
        &["Retry-After: 1"],
    );
    // FIN, not RST: the client sees response + EOF.
    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
    if conn.stream.set_nonblocking(true).is_ok() {
        while matches!(conn.stream.read(&mut sink), Ok(1..)) {}
    }
}

/// One worker: pull connections, serve requests, hand keep-alives back.
fn worker_loop(shared: &Shared, widx: usize) {
    // The pipeline (and its caches) is built inside the worker thread —
    // it is `!Sync` by design; the shared parse cache and interner behind
    // it are process-wide, so this worker starts warm after the first
    // request anywhere.
    let worker = shared.service.worker(widx);
    while let Some(conn) = shared.queue.pop() {
        serve_conn(shared, &worker, conn);
    }
}

/// Serves every request currently arriving on one connection, then
/// returns it to the idle set (or closes it).
fn serve_conn(shared: &Shared, worker: &ServiceWorker, mut conn: Conn) {
    loop {
        match conn.read_request(
            FIRST_BYTE_WAIT,
            COMMIT_TIMEOUT,
            REQUEST_DEADLINE,
            shared.cfg.max_body_bytes,
        ) {
            ReadOutcome::Request(req) => {
                let draining = shared.shutdown.load(Ordering::Relaxed);
                let keep_alive = req.keep_alive && !draining;
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if dispatch(shared, worker, &mut conn.stream, &req, keep_alive).is_err() {
                    return; // peer went away mid-response
                }
                if !keep_alive {
                    close_gracefully(conn);
                    return;
                }
                if conn.has_buffered() {
                    continue; // pipelined follower already here
                }
                if let Ok(mut returned) = shared.idle_return.lock() {
                    returned.push(conn);
                }
                return;
            }
            ReadOutcome::Idle => {
                // Readable when queued, nothing now (e.g. a spurious
                // wake): back to the idle set rather than camping here.
                if !shared.shutdown.load(Ordering::Relaxed) {
                    if let Ok(mut returned) = shared.idle_return.lock() {
                        returned.push(conn);
                    }
                }
                return;
            }
            ReadOutcome::Closed | ReadOutcome::Failed => return,
            ReadOutcome::Malformed(msg) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let body = error_body(msg);
                let _ =
                    write_response(&mut conn.stream, 400, "application/json", &body, false, &[]);
                close_gracefully(conn);
                return;
            }
            ReadOutcome::TooLarge => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let body = error_body("request body exceeds the configured limit");
                let _ =
                    write_response(&mut conn.stream, 413, "application/json", &body, false, &[]);
                close_gracefully(conn);
                return;
            }
        }
    }
}

/// Closes a connection FIN-first after its final response: shutting the
/// write side then draining whatever the peer already sent (pipelined
/// bytes we will not serve) keeps the close from degenerating into an
/// RST that could destroy the response in flight. Bounded and
/// non-blocking — only bytes already in the receive buffer are drained.
fn close_gracefully(conn: Conn) {
    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    if conn.stream.set_nonblocking(true).is_ok() {
        let mut stream = &conn.stream;
        while matches!(io::Read::read(&mut stream, &mut sink), Ok(1..)) {}
    }
}

/// `{"error": "..."}` with proper JSON escaping.
fn error_body(msg: &str) -> Vec<u8> {
    let quoted = serde_json::to_string(&msg.to_string()).unwrap_or_else(|_| "\"error\"".into());
    format!("{{\"error\":{quoted}}}").into_bytes()
}

/// Routes one request.
fn dispatch(
    shared: &Shared,
    worker: &ServiceWorker,
    stream: &mut TcpStream,
    req: &Request,
    keep_alive: bool,
) -> io::Result<()> {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/health") => {
            let metrics = shared.service.metrics();
            let report = HealthReport {
                status: "ready".to_string(),
                jobs: shared.service.jobs() as u64,
                uptime_ms: shared.service.uptime().as_millis() as u64,
                requests: shared.requests.load(Ordering::Relaxed),
                rejected: shared.rejected.load(Ordering::Relaxed),
                timeouts: metrics.errors.timeouts,
                retries: metrics.retries,
                quarantined: metrics.quarantined,
                lint: startup_lint_summary(),
                assets: format!("{:016x}", cmr_engine::asset_fingerprint()),
            };
            json_response(stream, 200, &report, keep_alive)
        }
        ("GET", "/metrics") => {
            let metrics = shared.service.metrics();
            json_response(stream, 200, &metrics, keep_alive)
        }
        ("POST", "/extract") => extract_one(shared, worker, stream, req, keep_alive),
        ("POST", "/extract/batch") => extract_batch(shared, worker, stream, req, keep_alive),
        ("GET" | "HEAD", "/extract" | "/extract/batch") | ("POST", "/health" | "/metrics") => {
            let allow = if req.target.starts_with("/extract") {
                "Allow: POST"
            } else {
                "Allow: GET"
            };
            let body = error_body("method not allowed");
            write_response(stream, 405, "application/json", &body, keep_alive, &[allow])
        }
        _ => {
            let body = error_body("no such endpoint (have: POST /extract, POST /extract/batch, GET /health, GET /metrics)");
            write_response(stream, 404, "application/json", &body, keep_alive, &[])
        }
    }
}

fn json_response<T: Serialize>(
    stream: &mut TcpStream,
    status: u16,
    value: &T,
    keep_alive: bool,
) -> io::Result<()> {
    match serde_json::to_string(value) {
        Ok(json) => write_response(
            stream,
            status,
            "application/json",
            json.as_bytes(),
            keep_alive,
            &[],
        ),
        Err(e) => {
            let body = error_body(&format!("serialization failed: {e}"));
            write_response(stream, 500, "application/json", &body, false, &[])
        }
    }
}

/// `POST /extract`: the body is one note — raw text, a JSON string, or a
/// JSON object with a `text` field (same decoding as `cmr extract -`).
fn extract_one(
    shared: &Shared,
    worker: &ServiceWorker,
    stream: &mut TcpStream,
    req: &Request,
    keep_alive: bool,
) -> io::Result<()> {
    let start = Instant::now();
    let Ok(body) = std::str::from_utf8(&req.body) else {
        let body = error_body("request body is not UTF-8");
        return write_response(stream, 400, "application/json", &body, keep_alive, &[]);
    };
    let text = ndjson::note_text_from_ndjson(body);
    let outcome = worker.extract(&text);
    let result = match &outcome {
        Ok(record) => json_response(stream, 200, record, keep_alive),
        Err(e) => {
            let status = match e {
                EngineError::Panicked { .. } => 500,
                _ => 422,
            };
            let body = error_body(&e.to_string());
            write_response(stream, status, "application/json", &body, keep_alive, &[])
        }
    };
    shared
        .service
        .record_latency(LatencyKind::Extract, start.elapsed().as_nanos() as u64);
    result
}

/// `POST /extract/batch`: NDJSON in, NDJSON out, one result line per
/// note line, blank lines skipped (shared reader with `cmr extract -`).
/// The response streams chunked so early records arrive while later ones
/// still extract; an in-band `{"error": ...}` line marks a failed record
/// without failing the batch.
fn extract_batch(
    shared: &Shared,
    worker: &ServiceWorker,
    stream: &mut TcpStream,
    req: &Request,
    keep_alive: bool,
) -> io::Result<()> {
    let start = Instant::now();
    let process = |note: Result<String, usize>| -> String {
        let line_start = Instant::now();
        let line = match note {
            Ok(text) => match worker.extract(&text) {
                Ok(record) => {
                    serde_json::to_string(&record).unwrap_or_else(|e| error_line(&e.to_string()))
                }
                Err(e) => error_line(&e.to_string()),
            },
            Err(line_no) => error_line(&format!("line {line_no} is not UTF-8")),
        };
        shared.service.record_latency(
            LatencyKind::BatchRecord,
            line_start.elapsed().as_nanos() as u64,
        );
        line
    };

    let result = if req.http11 {
        // Stream each record as its own chunk, as it is produced: the
        // client reads record k while record k+1 is still extracting.
        let mut w = ChunkedWriter::begin(stream, 200, "application/x-ndjson", keep_alive)?;
        for note in ndjson::notes_in_body(&req.body) {
            w.chunk(format!("{}\n", process(note)).as_bytes())?;
        }
        w.finish()
    } else {
        // HTTP/1.0 cannot take chunked: buffer and send with a length.
        let mut body = Vec::new();
        for note in ndjson::notes_in_body(&req.body) {
            body.extend_from_slice(process(note).as_bytes());
            body.push(b'\n');
        }
        write_response(stream, 200, "application/x-ndjson", &body, keep_alive, &[])
    };
    shared
        .service
        .record_latency(LatencyKind::Batch, start.elapsed().as_nanos() as u64);
    result
}

fn error_line(msg: &str) -> String {
    let quoted = serde_json::to_string(&msg.to_string()).unwrap_or_else(|_| "\"error\"".into());
    format!("{{\"error\":{quoted}}}")
}

/// The bounded ready-connection queue between the accept thread and the
/// workers. `close` wakes every popper once the remaining items drain —
/// the drain path's "finish what was admitted, take nothing new".
struct ConnQueue {
    state: TrackedMutex<QueueState>,
    ready: TrackedCondvar,
    cap: usize,
}

struct QueueState {
    items: VecDeque<Conn>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: TrackedMutex::new(
                "serve.conn_queue",
                QueueState {
                    items: VecDeque::with_capacity(cap),
                    closed: false,
                },
            ),
            ready: TrackedCondvar::new(),
            cap,
        }
    }

    /// Admits a connection unless the queue is full or closed (the
    /// connection comes back in `Err` so the caller can answer `429`).
    fn try_push(&self, conn: Conn) -> Result<(), Conn> {
        let Ok(mut state) = self.state.lock() else {
            return Err(conn);
        };
        if state.closed || state.items.len() >= self.cap {
            return Err(conn);
        }
        state.items.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and empty.
    fn pop(&self) -> Option<Conn> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(conn) = state.items.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).ok()?;
        }
    }

    fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Orchestrators parse `/health`; pin the shape (including the
    /// degradation counters) with a full serde round trip.
    #[test]
    fn health_report_round_trips_through_json() {
        let report = HealthReport {
            status: "ready".to_string(),
            jobs: 2,
            uptime_ms: 1234,
            requests: 56,
            rejected: 7,
            timeouts: 3,
            retries: 9,
            quarantined: 1,
            lint: cmr_analyze::Summary {
                errors: 0,
                warnings: 2,
                notes: 44,
            },
            assets: "00000000deadbeef".to_string(),
        };
        let json = serde_json::to_string(&report).expect("serialize");
        for field in [
            "\"timeouts\":3",
            "\"retries\":9",
            "\"quarantined\":1",
            "\"status\":\"ready\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let back: HealthReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }
}
