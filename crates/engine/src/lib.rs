//! # cmr-engine — parallel batch extraction with backpressure and fault isolation
//!
//! The paper processes clinical records one at a time; a deployment
//! processes cohorts. This crate scales the [`cmr_core::Pipeline`] to
//! batches without changing its single-record semantics:
//!
//! * **Worker pool** — a fixed pool of scoped threads, each owning a full
//!   `Pipeline` (the pipeline is `!Sync`: its link parser keeps a
//!   per-instance structure cache). Workers share the `Arc<Schema>` and
//!   `Arc<Ontology>` — the concept table is built once.
//! * **Backpressure** — bounded channels on both sides of the pool; memory
//!   stays proportional to the queue depth, not the corpus.
//! * **Determinism** — results are emitted strictly in input order, so
//!   `--jobs 8` output is byte-identical to `--jobs 1`.
//! * **Fault isolation** — a panicking or over-budget record becomes a
//!   structured [`EngineError`] item; the batch survives. `fail_fast`
//!   inverts that: the first failure stops the batch and drains the
//!   rest as [`EngineError::Aborted`].
//! * **Metrics** — a serializable [`EngineMetrics`] snapshot: throughput,
//!   per-stage wall-time histograms, link-parser cache hit rates,
//!   association-method counts, error counts.
//! * **Durability** — a write-ahead journal ([`JournalWriter`]) of
//!   completed records with crash-recovery resume, bounded retry
//!   ([`RetryPolicy`]) with a poison quarantine ([`QuarantineFile`]),
//!   a stuck-worker watchdog that cancels over-deadline parses
//!   ([`EngineError::Timeout`]), and graceful shutdown
//!   ([`Engine::with_shutdown`]) that drains in-flight records.
//!
//! ```
//! use cmr_engine::{Engine, EngineConfig};
//!
//! let engine = Engine::new(
//!     EngineConfig { jobs: 2, ..EngineConfig::default() },
//!     cmr_core::Schema::paper(),
//!     cmr_ontology::Ontology::full(),
//! );
//! let out = engine.extract_batch(&[
//!     "Vitals:  Blood pressure is 144/90, pulse of 84.\n",
//!     "Vitals:  Temperature 98.6, weight 150 pounds.\n",
//! ]);
//! assert_eq!(out.items.len(), 2);
//! assert_eq!(out.metrics.records, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Batch failures are per-item values (EngineError); an engine unwrap would
// defeat the fault isolation the crate exists to provide.
#![deny(clippy::unwrap_used)]

mod engine;
mod journal;
mod metrics;
mod pool;
mod retry;
mod service;
mod shard;
mod watchdog;

pub use engine::{
    asset_fingerprint, startup_lint_summary, BatchOutput, Engine, EngineConfig, EngineError,
};
pub use journal::{
    config_fingerprint, corpus_hash, read_journal, verify_output_prefix, CorpusHasher,
    JournalEntry, JournalError, JournalRead, JournalReplay, JournalWriter, OutputFingerprint,
    RunManifest, Snapshot, JOURNAL_COMPAT_VERSION, JOURNAL_VERSION,
};
pub use metrics::{
    DegradationTotals, DurationHistogram, EngineMetrics, ErrorCounts, MethodCounts,
    ParseCacheMetrics, ServiceLatency, StageMetrics, HISTOGRAM_BUCKETS,
};
pub use retry::{
    is_transient, read_quarantine, AttemptRecord, QuarantineEntry, QuarantineFile, RetryPolicy,
};
pub use service::{LatencyKind, ServiceHandle, ServiceWorker};
pub use shard::{merge_outputs, merge_quarantine, shard_of, ShardSpec};
