//! Equivalence proptests for the lock-striped shared parse cache: over
//! arbitrary corpora, a pool of parsers backed by the sharded cache must
//! produce exactly the parse results of the old single-lock cache (one
//! stripe) and of no shared cache at all. Sharding is a contention knob,
//! never a semantics knob — eviction pressure included.

use cmr_linkgram::{LinkParser, SharedParseCache};
use proptest::prelude::*;
use std::sync::Arc;

/// Template-based clinical-dictation sentences with random lexical fill —
/// few enough shapes to guarantee cross-parser cache traffic, varied
/// enough to spread signatures across stripes.
fn sentences() -> impl Strategy<Value = String> {
    let subj = prop::sample::select(vec!["She", "He", "The patient", "Ms. Smith"]);
    let verb = prop::sample::select(vec!["denies", "reports", "has", "takes", "reveals"]);
    let obj = prop::sample::select(vec![
        "alcohol use",
        "a mass",
        "diabetes",
        "chest pain",
        "the medication",
        "hypertension and diabetes",
        "a pulse of 84",
    ]);
    let tail = prop::sample::select(vec![
        "",
        " today",
        " without difficulty",
        " in the left breast",
        " five years ago",
    ]);
    (subj, verb, obj, tail).prop_map(|(s, v, o, t)| format!("{s} {v} {o}{t}."))
}

fn corpora() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(sentences(), 1..24)
}

/// Parse signature for comparison: presence, cost, and the exact links.
type Outcome = Option<(u64, Arc<Vec<cmr_linkgram::Link>>)>;

fn outcome(parser: &LinkParser, sentence: &str) -> Outcome {
    parser
        .parse_sentence(sentence)
        .map(|l| (l.cost.to_bits(), l.links))
}

/// Runs a corpus through a two-parser "pool" sharing `cache`, alternating
/// sentences between the parsers so shapes published by one worker are
/// looked up by the other.
fn pool_outcomes(corpus: &[String], cache: SharedParseCache) -> Vec<Outcome> {
    let mut a = LinkParser::new();
    a.set_shared_cache(cache.clone());
    let mut b = LinkParser::new();
    b.set_shared_cache(cache);
    corpus
        .iter()
        .enumerate()
        .map(|(i, s)| outcome(if i % 2 == 0 { &a } else { &b }, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded (8 stripes), single-lock (1 stripe), and cache-free parsing
    /// agree on every sentence of every corpus.
    #[test]
    fn sharded_and_single_lock_caches_parse_identically(corpus in corpora()) {
        let bare = LinkParser::new();
        let baseline: Vec<Outcome> = corpus.iter().map(|s| outcome(&bare, s)).collect();
        let single = pool_outcomes(&corpus, SharedParseCache::with_shards(4096, 1));
        let sharded = pool_outcomes(&corpus, SharedParseCache::with_shards(4096, 8));
        prop_assert_eq!(&single, &baseline, "single-lock pool diverged from cache-free");
        prop_assert_eq!(&sharded, &baseline, "sharded pool diverged from cache-free");
    }

    /// The equivalence survives eviction pressure: a tiny per-stripe
    /// capacity forces generation rotation mid-corpus, and results must
    /// still match the unbounded configurations.
    #[test]
    fn equivalence_holds_under_eviction_pressure(corpus in corpora()) {
        let bare = LinkParser::new();
        let baseline: Vec<Outcome> = corpus.iter().map(|s| outcome(&bare, s)).collect();
        let tiny = pool_outcomes(&corpus, SharedParseCache::with_shards(4, 8));
        prop_assert_eq!(&tiny, &baseline, "eviction changed parse results");
    }

    /// The shared-cache counters account for every shared lookup: a
    /// two-parser pool performs some lookups against the shared map, and
    /// hits + misses must cover exactly the local-miss traffic.
    #[test]
    fn shared_stats_account_for_lookups(corpus in corpora()) {
        let cache = SharedParseCache::with_shards(4096, 8);
        let _ = pool_outcomes(&corpus, cache.clone());
        let stats = cache.stats();
        prop_assert_eq!(stats.shards, 8);
        prop_assert!(stats.misses as usize <= corpus.len() * 4,
            "more shared misses than sentences ({} vs {})", stats.misses, corpus.len());
        prop_assert_eq!(stats.entries as u64 + stats.evictions, stats.misses,
            "every shared miss must be cached or evicted");
    }
}
