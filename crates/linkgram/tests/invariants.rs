//! Linkage invariants over generated clinical-style sentences: every parse
//! the parser returns must be planar, connected, within bounds, and
//! deterministic.

use cmr_linkgram::{LinkParser, LinkWeights, Linkage};
use proptest::prelude::*;

fn check_planar(linkage: &Linkage) -> Result<(), TestCaseError> {
    for (i, a) in linkage.links.iter().enumerate() {
        for b in &linkage.links[i + 1..] {
            let crossing = (a.left < b.left && b.left < a.right && a.right < b.right)
                || (b.left < a.left && a.left < b.right && b.right < a.right);
            prop_assert!(
                !crossing,
                "crossing links {a:?} {b:?} in {:?}",
                linkage.words
            );
        }
    }
    Ok(())
}

fn check_connected(linkage: &Linkage) -> Result<(), TestCaseError> {
    let n = linkage.words.len();
    let mut adj = vec![Vec::new(); n];
    for l in linkage.links.iter() {
        prop_assert!(l.left < l.right && l.right < n);
        adj[l.left].push(l.right);
        adj[l.right].push(l.left);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(x) = stack.pop() {
        for &y in &adj[x] {
            if !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    prop_assert!(seen.iter().all(|&s| s), "disconnected: {:?}", linkage.words);
    Ok(())
}

/// Template-based sentence generator: clinical dictation shapes with random
/// lexical fill.
fn sentences() -> impl Strategy<Value = String> {
    let subj = prop::sample::select(vec!["She", "He", "The patient", "Ms. Smith"]);
    let verb = prop::sample::select(vec!["denies", "reports", "has", "takes", "reveals"]);
    let obj = prop::sample::select(vec![
        "alcohol use",
        "a mass",
        "diabetes",
        "chest pain",
        "the medication",
        "hypertension and diabetes",
    ]);
    let tail = prop::sample::select(vec![
        "",
        " today",
        " without difficulty",
        " in the left breast",
        " five years ago",
    ]);
    (subj, verb, obj, tail).prop_map(|(s, v, o, t)| format!("{s} {v} {o}{t}."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parses_are_planar_and_connected(s in sentences()) {
        let parser = LinkParser::new();
        if let Some(l) = parser.parse_sentence(&s) {
            check_planar(&l)?;
            check_connected(&l)?;
            // Every non-wall word participates in at least one link.
            for w in 1..l.words.len() {
                prop_assert!(
                    l.links.iter().any(|x| x.left == w || x.right == w),
                    "word {} unlinked in {s}",
                    l.words[w]
                );
            }
        }
    }

    #[test]
    fn parsing_is_deterministic(s in sentences()) {
        let parser = LinkParser::new();
        let a = parser.parse_sentence(&s).map(|l| (l.cost, l.links));
        let b = parser.parse_sentence(&s).map(|l| (l.cost, l.links));
        prop_assert_eq!(a.is_some(), b.is_some());
        if let (Some(x), Some(y)) = (a, b) {
            prop_assert_eq!(x.0, y.0);
            prop_assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn distances_are_metric_like(s in sentences()) {
        let parser = LinkParser::new();
        if let Some(l) = parser.parse_sentence(&s) {
            let w = LinkWeights::default();
            let n = l.words.len();
            for a in 0..n {
                let d = l.distances_from(a, &w);
                prop_assert_eq!(d[a], 0.0);
                for (b, &dist) in d.iter().enumerate() {
                    prop_assert!(dist.is_finite(), "unreachable {b} in connected linkage");
                    // Symmetry.
                    let back = l.distance(b, a, &w);
                    prop_assert!((dist - back).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn parser_is_total_on_arbitrary_ascii(s in "[ -~]{0,80}") {
        // Must never panic, regardless of input garbage.
        let _ = LinkParser::new().parse_sentence(&s);
    }
}
