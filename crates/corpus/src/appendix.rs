//! The paper's Appendix record, verbatim, as a test fixture.

/// The example clinical record printed in the paper's Appendix (patient 2).
pub const APPENDIX_RECORD: &str = "\
Patient:  2

Chief Complaint:  Abnormal mammogram.

History of Present Illness:  Ms. 2 is a 50-year-old woman who underwent a screening mammogram, revealing a solid lesion as well as an abnormal calcification.  This was evaluated with further views including an ultrasound and a BIRAD 4.  Classification was given. She was referred for further management.  Her breast history is negative for any previous biopsies or masses.

GYN History:  Menarche at age 10, gravida 4, para 3, last menstrual period about a year ago.  First live birth at age 18.

Past Medical History:  Significant for diabetes, heart disease, high blood pressure, hypercholesterolemia, bronchitis, arrhythmia, and depression.

Past Surgical History:  Cervical laminectomy.

Medications:  Aspirin, hydrochlorothiazide, Lipitor, Cardizem, senna, Wellbutrin, Zoloft, Protonix, Glucophage, Os-Cal, Combivent, and Flovent.

Allergies:  Penicillin, ACE inhibitors, and latex.

Social History:  Smoking history, 15 years.  Alcohol use, occasional.  Drug use, significant for marijuana.

Family History:  Mother with breast cancer, diagnosed at age 52.  Maternal aunt with breast cancer.  No other family members with cancers.

Review of Systems:  Significant for back pain and arthritis complaints.  Also, allergies as listed above.  Breathing issues are related to COPD, smoking, and diabetes.  Remainder of the review of systems is negative.

Physical examination:  Reveals an overweight woman in no apparent distress.

Vitals:  Blood pressure is 142/78, pulse of 96, and weight of 211.

HEENT:  PERRLA.

Neck:  There is no cervical or supraclavicular lymphadenopathy.

Chest:  Clear to auscultation anteriorly, posteriorly, and bilaterally.

Heart:  S1 S2, regular, and no murmurs.

Abdomen:  Soft, nontender, and no masses.

Examination of Breasts:  Shows good symmetry bilaterally.  Palpation of both breasts shows no dominant lesions.  There is no axillary adenopathy.
";

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cmr_text::Record;

    #[test]
    fn fixture_parses() {
        let rec = Record::parse(APPENDIX_RECORD);
        assert_eq!(rec.patient_id.as_deref(), Some("2"));
        assert_eq!(rec.sections.len(), 19);
        assert!(rec.section("Vitals").unwrap().body.contains("142/78"));
        assert!(rec
            .section("Past Medical History")
            .unwrap()
            .body
            .contains("high blood pressure"));
    }
}
