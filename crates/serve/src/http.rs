//! A deliberately small HTTP/1.1 implementation over blocking sockets.
//!
//! The service needs exactly: request-line + headers, `Content-Length`
//! bodies, keep-alive, `Expect: 100-continue`, fixed and chunked
//! responses. Hand-rolling that (~300 lines) keeps the serving stack on
//! the same zero-external-dependency footing as the vendored serde — no
//! async runtime, no TLS, no proxy protocol. Anything outside that
//! envelope (request bodies with `Transfer-Encoding`, absolute-form
//! targets, obsolete line folding) is rejected with `400`.
//!
//! # Hostile-client bounds
//!
//! Per connection, in-flight memory is capped at
//! `MAX_HEAD_BYTES + max_body + 2·READ_CHUNK`: the head cap rejects a
//! terminator-less head, an oversized declared body is refused *before*
//! its bytes are read, and a parsed request is drained from the buffer
//! before the next one is assembled. The cap is additionally enforced
//! directly in the read loop as a backstop. Time is bounded twice: each
//! socket read by `commit_timeout`, and the *whole* request by
//! `request_deadline` — a slowloris peer dripping one byte per read
//! keeps resetting the former but not the latter.
//!
//! The socket paths carry `serve::read`, `serve::write`, and
//! `serve::chunk` failpoints (no-ops unless built with
//! `--features failpoints`).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted head (request line + headers) — far beyond anything
/// the clients here produce; a bound so a garbage stream cannot balloon
/// the buffer.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Socket read granularity.
const READ_CHUNK: usize = 4096;

/// One parsed request. Header names are lowercased at parse time.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// Origin-form target, e.g. `/extract/batch`.
    pub target: String,
    /// Headers as `(lowercased-name, value)` in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 never).
    pub keep_alive: bool,
    /// `true` for HTTP/1.1 (chunked responses allowed), `false` for 1.0.
    pub http11: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a request off a connection stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A full request was parsed.
    Request(Request),
    /// The peer closed (or reset) before sending any byte of a request —
    /// the normal end of a keep-alive connection.
    Closed,
    /// The poll window expired with no byte received; the connection is
    /// still idle and healthy.
    Idle,
    /// Bytes arrived but do not form a valid request within the limits.
    /// The server should answer 400 and close.
    Malformed(&'static str),
    /// The request advertises a body larger than the server accepts.
    TooLarge,
    /// A hard socket error, or the peer stalled mid-request past the
    /// committed-read deadline. Close without a response.
    Failed,
}

/// A connection plus its read buffer. The buffer carries leftover bytes
/// across requests (pipelined requests parse from it before the socket
/// is touched again) and partial requests across idle polls.
#[derive(Debug)]
pub struct Conn {
    /// The underlying socket.
    pub stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps a freshly accepted stream.
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Whether leftover bytes (the front of a pipelined request) are
    /// already buffered — such a connection is mid-request, not idle.
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Attempts to read one request. `idle_poll` bounds the wait for the
    /// *first* byte (keep-alive connections are polled briefly so a
    /// worker never parks on a quiet socket); once any byte of a request
    /// has arrived the read is committed, `commit_timeout` bounds each
    /// subsequent socket read, and `request_deadline` bounds the whole
    /// request — a slowloris peer dripping bytes resets the per-read
    /// timeout but not the deadline.
    pub fn read_request(
        &mut self,
        idle_poll: Duration,
        commit_timeout: Duration,
        request_deadline: Duration,
        max_body: usize,
    ) -> ReadOutcome {
        // Leftover bytes may already hold a complete pipelined request
        // (or the front of one) — that connection is mid-request, not idle.
        let mut committed_at = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        let first_timeout = if committed_at.is_some() {
            commit_timeout
        } else {
            idle_poll
        };
        if self.stream.set_read_timeout(Some(first_timeout)).is_err() {
            return ReadOutcome::Failed;
        }
        loop {
            if let Some(outcome) = self.try_parse(max_body) {
                return outcome;
            }
            // The cap guards the *head*: once the blank line has
            // arrived, the buffer may legitimately grow to hold a sized
            // body (bounded separately by `max_body` at parse time).
            if self.buf.len() > MAX_HEAD_BYTES && find_head_end(&self.buf).is_none() {
                return ReadOutcome::Malformed("request head too large");
            }
            // Backstop for the per-connection in-flight byte cap. The
            // head cap and the pre-read `max_body` check make this
            // unreachable for any read sequence, but the invariant is
            // cheap to enforce outright.
            if self.buf.len() > MAX_HEAD_BYTES + max_body + 2 * READ_CHUNK {
                return ReadOutcome::Malformed("in-flight bytes exceed the connection cap");
            }
            if committed_at.is_some_and(|t| t.elapsed() >= request_deadline) {
                // Committed long ago and still no complete request: the
                // peer is stalling (slowloris). Forfeit it.
                return ReadOutcome::Failed;
            }
            if let Some(inj) = cmr_failpoint::io_inject("serve::read") {
                let _ = inj; // any injected read fault forfeits the conn
                return ReadOutcome::Failed;
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if committed_at.is_some() {
                        // Mid-request EOF: the peer gave up.
                        ReadOutcome::Failed
                    } else {
                        ReadOutcome::Closed
                    };
                }
                Ok(n) => {
                    if committed_at.is_none() {
                        committed_at = Some(Instant::now());
                        if self.stream.set_read_timeout(Some(commit_timeout)).is_err() {
                            return ReadOutcome::Failed;
                        }
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return if committed_at.is_some() {
                        ReadOutcome::Failed
                    } else {
                        ReadOutcome::Idle
                    };
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Failed,
            }
        }
    }

    /// Parses a complete request out of the buffer, if one is there.
    /// Returns `None` when more bytes are needed.
    fn try_parse(&mut self, max_body: usize) -> Option<ReadOutcome> {
        match parse_buffered(&mut self.buf, max_body) {
            ParseStep::Done(outcome) => Some(outcome),
            ParseStep::NeedMore { expects_continue } => {
                // `Expect: 100-continue` clients wait for the interim
                // response before sending the body; oblige once the head
                // is complete so the read can finish.
                if expects_continue {
                    let _ = self.stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
                }
                None
            }
        }
    }
}

/// One step of the buffer-level request parser.
#[derive(Debug)]
pub enum ParseStep {
    /// No complete request yet; read more. `expects_continue` is set when
    /// a complete head announced `Expect: 100-continue` and its body is
    /// still pending — the caller owes the client an interim response.
    NeedMore {
        /// Whether the interim `100 Continue` is due.
        expects_continue: bool,
    },
    /// A verdict: a parsed request (drained from the buffer) or a
    /// rejection.
    Done(ReadOutcome),
}

/// The pure HTTP/1.1 request parser over a connection buffer: no socket,
/// no clock. On `Done(Request)` the request's bytes have been drained
/// from `buf` (pipelined followers stay). Total over arbitrary byte soup
/// — every input yields `NeedMore`, a `Malformed`/`TooLarge` rejection,
/// or a parsed request, never a panic (pinned by the proptest fuzz in
/// `tests/http_fuzz.rs`).
pub fn parse_buffered(buf: &mut Vec<u8>, max_body: usize) -> ParseStep {
    let more = ParseStep::NeedMore {
        expects_continue: false,
    };
    let Some(head_end) = find_head_end(buf) else {
        return more;
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return ParseStep::Done(ReadOutcome::Malformed("head is not UTF-8")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseStep::Done(ReadOutcome::Malformed("bad request line"));
    };
    if parts.next().is_some() || method.is_empty() || !target.starts_with('/') {
        return ParseStep::Done(ReadOutcome::Malformed("bad request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return ParseStep::Done(ReadOutcome::Malformed("unsupported HTTP version")),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return ParseStep::Done(ReadOutcome::Malformed("obsolete header folding"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseStep::Done(ReadOutcome::Malformed("header without colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        // Request bodies here are always sized; a chunked *request*
        // is outside the envelope (responses do use chunked).
        return ParseStep::Done(ReadOutcome::Malformed("chunked request bodies unsupported"));
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ParseStep::Done(ReadOutcome::Malformed("bad Content-Length")),
        },
    };
    if content_length > max_body {
        return ParseStep::Done(ReadOutcome::TooLarge);
    }
    let body_start = head_end + 4;
    if buf.len() < body_start.saturating_add(content_length) {
        let expects_continue =
            find("expect").is_some_and(|v| v.eq_ignore_ascii_case("100-continue"));
        return ParseStep::NeedMore { expects_continue };
    }

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => http11,
    };
    let method = method.to_string();
    let target = target.to_string();
    let body = buf[body_start..body_start + content_length].to_vec();
    buf.drain(..body_start + content_length);
    ParseStep::Done(ReadOutcome::Request(Request {
        method,
        target,
        headers,
        body,
        keep_alive,
        http11,
    }))
}

/// Index of `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response. `extra` headers are emitted
/// verbatim (already `Name: value` formatted, no CRLF).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[&str],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for h in extra {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    if let Some(inj) = cmr_failpoint::io_inject("serve::write") {
        if let cmr_failpoint::IoInjection::Partial(n) = inj {
            // A torn response: the head prefix escapes, then the socket
            // "fails" — the client sees a truncated response, never a
            // silently wrong one.
            let cut = n.min(head.len());
            let _ = stream.write_all(&head.as_bytes()[..cut]);
            return Err(cmr_failpoint::IoInjection::Partial(n).into_io_error());
        }
        return Err(inj.into_io_error());
    }
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: the batch endpoint streams
/// one NDJSON result line per chunk, so the client sees record `k`
/// while record `k+1` is still extracting.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    finished: bool,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
        keep_alive: bool,
    ) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            reason(status),
            if keep_alive { "keep-alive" } else { "close" },
        );
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter {
            stream,
            finished: false,
        })
    }

    /// Writes one chunk (skipped when empty — an empty chunk would
    /// terminate the body).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        if let Some(inj) = cmr_failpoint::io_inject("serve::chunk") {
            // Chunk framing is all-or-nothing here: a partial injection
            // degrades to an error before any frame bytes, so the stream
            // ends on a chunk boundary (truncation a client detects).
            return Err(inj.into_io_error());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the body. A `ChunkedWriter` dropped without `finish`
    /// leaves the response truncated — which is exactly what a client
    /// should see if the server dies mid-batch.
    pub fn finish(mut self) -> io::Result<()> {
        self.finished = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }

    /// Whether `finish` ran (tests poke this through `Drop`).
    pub fn finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    const IDLE: Duration = Duration::from_millis(40);
    const COMMIT: Duration = Duration::from_millis(500);
    const DEADLINE: Duration = Duration::from_secs(5);

    #[test]
    fn parses_request_with_body_and_keep_alive() {
        let (mut client, server) = pair();
        client
            .write_all(b"POST /extract HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .expect("write");
        let mut conn = Conn::new(server);
        match conn.read_request(IDLE, COMMIT, DEADLINE, 1024) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.target, "/extract");
                assert_eq!(req.body, b"hello");
                assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
                assert_eq!(req.header("host"), Some("x"));
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let (mut client, server) = pair();
        client
            .write_all(
                b"GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .expect("write");
        let mut conn = Conn::new(server);
        let first = conn.read_request(IDLE, COMMIT, DEADLINE, 1024);
        let second = conn.read_request(IDLE, COMMIT, DEADLINE, 1024);
        match (first, second) {
            (ReadOutcome::Request(a), ReadOutcome::Request(b)) => {
                assert_eq!(a.target, "/health");
                assert!(a.keep_alive);
                assert_eq!(b.target, "/metrics");
                assert!(!b.keep_alive);
            }
            other => panic!("expected two requests, got {other:?}"),
        }
    }

    #[test]
    fn idle_then_closed_are_distinguished() {
        let (client, server) = pair();
        let mut conn = Conn::new(server);
        assert!(matches!(
            conn.read_request(IDLE, COMMIT, DEADLINE, 1024),
            ReadOutcome::Idle
        ));
        drop(client);
        assert!(matches!(
            conn.read_request(IDLE, COMMIT, DEADLINE, 1024),
            ReadOutcome::Closed
        ));
    }

    /// A sized body far larger than the head cap must still parse: the
    /// 16KiB bound applies to the head, not the whole buffered request.
    #[test]
    fn large_sized_body_is_not_mistaken_for_an_oversized_head() {
        let (mut client, server) = pair();
        let body = vec![b'x'; MAX_HEAD_BYTES * 4];
        let head = format!(
            "POST /extract/batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let writer = std::thread::spawn(move || {
            client.write_all(head.as_bytes()).expect("write head");
            client.write_all(&body).expect("write body");
            client
        });
        let mut conn = Conn::new(server);
        match conn.read_request(IDLE, COMMIT, DEADLINE, MAX_HEAD_BYTES * 8) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.body.len(), MAX_HEAD_BYTES * 4);
                assert!(req.body.iter().all(|b| *b == b'x'));
            }
            other => panic!("expected request, got {other:?}"),
        }
        drop(writer.join());
    }

    #[test]
    fn oversized_body_is_too_large() {
        let (mut client, server) = pair();
        client
            .write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 99\r\n\r\n")
            .expect("write");
        let mut conn = Conn::new(server);
        assert!(matches!(
            conn.read_request(IDLE, COMMIT, DEADLINE, 10),
            ReadOutcome::TooLarge
        ));
    }

    #[test]
    fn garbage_is_malformed() {
        let (mut client, server) = pair();
        client.write_all(b"NOT A REQUEST\r\n\r\n").expect("write");
        let mut conn = Conn::new(server);
        assert!(matches!(
            conn.read_request(IDLE, COMMIT, DEADLINE, 1024),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn expect_100_continue_gets_interim_response() {
        let (mut client, server) = pair();
        client
            .write_all(
                b"POST /extract HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n",
            )
            .expect("write");
        let mut conn = Conn::new(server);
        // The head is complete but the body is pending: the server sends
        // the interim response and keeps reading.
        let reader = std::thread::spawn(move || {
            let outcome = conn.read_request(IDLE, Duration::from_secs(2), DEADLINE, 1024);
            match outcome {
                ReadOutcome::Request(req) => req.body,
                other => panic!("expected request, got {other:?}"),
            }
        });
        let mut interim = [0u8; 25];
        client.read_exact(&mut interim).expect("interim");
        assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        client.write_all(b"ok").expect("body");
        assert_eq!(reader.join().expect("join"), b"ok");
    }

    /// A slowloris client drips one byte per poll: every read succeeds
    /// within `commit_timeout`, but the whole-request deadline forfeits
    /// the connection anyway.
    #[test]
    fn slowloris_drip_is_forfeited_by_the_request_deadline() {
        let (mut client, server) = pair();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let dripping = stop.clone();
        let dripper = std::thread::spawn(move || {
            for b in b"GET / HTTP/1.1\r\nHos".iter().cycle() {
                if dripping.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                if client.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            client
        });
        let mut conn = Conn::new(server);
        let start = std::time::Instant::now();
        // Per-read timeout (500ms) never trips — bytes arrive every 10ms —
        // so only the 150ms request deadline can end this.
        let outcome = conn.read_request(IDLE, COMMIT, Duration::from_millis(150), 1024);
        assert!(matches!(outcome, ReadOutcome::Failed), "got {outcome:?}");
        assert!(
            start.elapsed() < Duration::from_millis(450),
            "deadline, not the per-read timeout, ended the request"
        );
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        drop(dripper.join());
    }

    /// Half-close correctness: a client that sends its request and then
    /// shuts down its write side (FIN) must still receive the response —
    /// the buffered request parses before the EOF is ever observed.
    #[test]
    fn half_closed_client_still_gets_its_response() {
        let (mut client, server) = pair();
        client
            .write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi")
            .expect("write");
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut conn = Conn::new(server);
        match conn.read_request(IDLE, COMMIT, DEADLINE, 1024) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.body, b"hi");
                write_response(
                    &mut conn.stream,
                    200,
                    "text/plain",
                    b"ok",
                    req.keep_alive,
                    &[],
                )
                .expect("respond to half-closed client");
            }
            other => panic!("expected request, got {other:?}"),
        }
        // After the response, the next read sees the FIN as a clean close.
        assert!(matches!(
            conn.read_request(IDLE, COMMIT, DEADLINE, 1024),
            ReadOutcome::Closed
        ));
        drop(conn); // server closes; the client's read can reach EOF
        let mut got = String::new();
        client.read_to_string(&mut got).expect("read response");
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got}");
        assert!(got.ends_with("ok"), "{got}");
    }

    /// The in-flight cap: an oversized declared body is refused from the
    /// head alone — its bytes are never accumulated in the buffer.
    #[test]
    fn oversized_body_is_refused_before_its_bytes_are_read() {
        let (mut client, server) = pair();
        client
            .write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n")
            .expect("write");
        let mut conn = Conn::new(server);
        assert!(matches!(
            conn.read_request(IDLE, COMMIT, DEADLINE, 1024),
            ReadOutcome::TooLarge
        ));
        assert!(
            conn.buf.len() < MAX_HEAD_BYTES,
            "verdict came from the head; no body bytes were buffered"
        );
    }

    #[test]
    fn chunked_writer_round_trips() {
        let (mut client, mut server) = pair();
        let writer_thread = std::thread::spawn(move || {
            let mut w =
                ChunkedWriter::begin(&mut server, 200, "application/x-ndjson", true).expect("head");
            w.chunk(b"{\"a\":1}\n").expect("chunk");
            w.chunk(b"").expect("empty chunk is a no-op");
            w.chunk(b"{\"b\":2}\n").expect("chunk");
            w.finish().expect("finish");
        });
        writer_thread.join().expect("join");
        let mut got = String::new();
        client.read_to_string(&mut got).expect("read");
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got}");
        assert!(got.contains("Transfer-Encoding: chunked"), "{got}");
        assert!(got.contains("8\r\n{\"a\":1}\n\r\n"), "{got}");
        assert!(got.ends_with("0\r\n\r\n"), "{got}");
    }
}
