//! Property tests: rule-mining measures must be internally consistent on
//! arbitrary cohorts.

use cmr_knowledge::{chi_square_2x2, mine_rules, Cohort, RuleParams, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_cohort() -> impl Strategy<Value = Cohort> {
    prop::collection::vec((0usize..3, prop::bool::ANY, prop::bool::ANY), 1..60).prop_map(|rows| {
        let mut c = Cohort::new();
        for (smoking, a, b) in rows {
            let mut row = BTreeMap::new();
            row.insert(
                "smoking".to_string(),
                Value::Text(["never", "former", "current"][smoking].to_string()),
            );
            if a {
                row.insert("has:alpha".to_string(), Value::Flag(true));
            }
            if b {
                row.insert("has:beta".to_string(), Value::Flag(true));
            }
            c.push_row(row);
        }
        c
    })
}

proptest! {
    /// Support ≤ confidence; all measures in valid ranges; support never
    /// exceeds either marginal.
    #[test]
    fn rule_measures_consistent(c in arb_cohort()) {
        let rules = mine_rules(&c, RuleParams { min_support: 0.0, min_confidence: 0.0, min_lift: 0.0 });
        for r in &rules {
            prop_assert!((0.0..=1.0).contains(&r.support), "{r}");
            prop_assert!((0.0..=1.0).contains(&r.confidence), "{r}");
            prop_assert!(r.lift >= 0.0);
            prop_assert!(r.support <= r.confidence + 1e-12, "{r}");
            // confidence * P(A) = support
            let p_a = c.prevalence(&r.antecedent_attr, &r.antecedent_value);
            prop_assert!((r.confidence * p_a - r.support).abs() < 1e-9, "{r}");
        }
    }

    /// Thresholds only shrink the rule set.
    #[test]
    fn thresholds_monotone(c in arb_cohort()) {
        let loose = mine_rules(&c, RuleParams { min_support: 0.0, min_confidence: 0.0, min_lift: 0.0 });
        let tight = mine_rules(&c, RuleParams { min_support: 0.2, min_confidence: 0.6, min_lift: 1.1 });
        prop_assert!(tight.len() <= loose.len());
    }

    /// Prevalences over a partitioning attribute sum to 1.
    #[test]
    fn prevalence_partitions(c in arb_cohort()) {
        let total: f64 = ["never", "former", "current"]
            .iter()
            .map(|k| c.prevalence("smoking", k))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Chi-square is non-negative and symmetric under row/column swaps.
    #[test]
    fn chi_square_symmetries(a in 0usize..40, b in 0usize..40, cc in 0usize..40, d in 0usize..40) {
        if let Some(x) = chi_square_2x2(a, b, cc, d) {
            prop_assert!(x >= -1e-12);
            prop_assert_eq!(chi_square_2x2(cc, d, a, b).map(|v| (v * 1e9).round()),
                            Some((x * 1e9).round()), "row swap");
            prop_assert_eq!(chi_square_2x2(b, a, d, cc).map(|v| (v * 1e9).round()),
                            Some((x * 1e9).round()), "column swap");
        }
    }

    /// Crosstab counts always total the cohort size.
    #[test]
    fn crosstab_totals(c in arb_cohort()) {
        let t = c.crosstab("smoking", "has:alpha");
        let total: usize = t.values().sum();
        prop_assert_eq!(total, c.len());
    }
}
