//! Grammar coverage: the dictation constructions the extractors rely on.
//! Each case pins parseability (or intentional failure) and, where it
//! matters, the presence of a specific link.

use cmr_linkgram::LinkParser;

fn parser() -> LinkParser {
    LinkParser::new()
}

fn assert_parses(p: &LinkParser, s: &str) {
    assert!(p.parse_sentence(s).is_some(), "expected a linkage: {s}");
}

fn assert_fails(p: &LinkParser, s: &str) {
    assert!(p.parse_sentence(s).is_none(), "expected no linkage: {s}");
}

fn has_link(p: &LinkParser, s: &str, label: &str) -> bool {
    p.parse_sentence(s)
        .map(|l| {
            l.links
                .iter()
                .any(|x| x.label == label || x.label.starts_with(label))
        })
        .unwrap_or(false)
}

#[test]
fn declaratives() {
    let p = parser();
    for s in [
        "She smokes.",
        "She has diabetes.",
        "The patient denies chest pain.",
        "Her mother had breast cancer.",
        "She takes aspirin daily.",
        "The examination was normal.",
        "She is a former smoker.",
    ] {
        assert_parses(&p, s);
    }
}

#[test]
fn copular_predicates() {
    let p = parser();
    assert!(
        has_link(&p, "The remainder is negative.", "P"),
        "predicative adjective"
    );
    assert!(
        has_link(&p, "She is currently a smoker.", "O"),
        "predicate nominal"
    );
    assert!(
        has_link(&p, "She is currently a smoker.", "EB"),
        "post-copular adverb"
    );
}

#[test]
fn auxiliaries_and_participles() {
    let p = parser();
    assert!(
        has_link(&p, "She has never smoked.", "T"),
        "have + participle"
    );
    assert!(
        has_link(&p, "She was diagnosed with cancer.", "Pv"),
        "passive"
    );
    assert!(has_link(&p, "She will quit.", "I"), "modal + infinitive");
}

#[test]
fn gerund_complements() {
    let p = parser();
    assert!(has_link(&p, "She quit smoking.", "Pg"));
    assert!(has_link(&p, "She denies drinking.", "Pg"));
}

#[test]
fn prepositional_attachment() {
    let p = parser();
    assert!(
        has_link(&p, "Pulse of 84 was recorded.", "J"),
        "prep object"
    );
    assert!(has_link(
        &p,
        "She complains of pain in the left breast.",
        "MV"
    ));
}

#[test]
fn time_adjuncts() {
    let p = parser();
    assert!(
        has_link(&p, "She quit smoking five years ago.", "JT"),
        "'ago' time phrase"
    );
}

#[test]
fn coordination() {
    let p = parser();
    for s in [
        "She has diabetes and hypertension.",
        "Significant for diabetes, arthritis, and depression.",
        "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.",
    ] {
        assert_parses(&p, s);
        assert!(has_link(&p, s, "MX"), "coordination link in {s}");
    }
}

#[test]
fn relative_clauses() {
    let p = parser();
    assert!(has_link(
        &p,
        "She is a woman who underwent a mammogram.",
        "R"
    ));
}

#[test]
fn nominal_fragments_parse_via_wn() {
    let p = parser();
    for s in [
        "Menarche at age 10.",
        "Abnormal mammogram.",
        "Former smoker.",
    ] {
        assert!(has_link(&p, s, "Wn"), "{s}");
    }
}

#[test]
fn intentional_failures() {
    let p = parser();
    // Colon-delimited fragments and stray punctuation must fail (the
    // extractors' pattern fallback depends on this).
    assert_fails(&p, "Blood pressure: 144/90.");
    assert_fails(&p, "Vitals: pulse 84; temperature 98.3;");
    assert_fails(&p, "of of of the the.");
    assert_fails(&p, "");
}

#[test]
fn negated_declaratives() {
    let p = parser();
    for s in [
        "She does not smoke.",
        "She has never smoked.",
        "There is no axillary adenopathy.",
    ] {
        assert_parses(&p, s);
    }
}

#[test]
fn agreement_blocks_mismatches() {
    let p = parser();
    // Ss+ cannot meet Sp-: singular subject with plural copula fails
    // outright rather than producing a garbage parse.
    let good = p.parse_sentence("The finding is benign.");
    assert!(good.is_some());
    let linkage = good.unwrap();
    assert!(
        linkage.links.iter().any(|l| l.label.starts_with("Ss")),
        "{:?}",
        linkage.links
    );
}

#[test]
fn cache_consistency_across_number_values() {
    let p = parser();
    let a = p.parse_sentence("Pulse of 84 was recorded.").unwrap();
    let b = p.parse_sentence("Pulse of 96 was recorded.").unwrap();
    assert_eq!(a.links, b.links, "same structure, cached");
    assert_eq!(a.cost, b.cost);
    assert_eq!(b.words[2], "of");
    assert!(
        b.words.contains(&"96".to_string()),
        "words rebuilt per input"
    );
    assert!(p.cache_len() >= 1);
    p.clear_cache();
    assert_eq!(p.cache_len(), 0);
}
