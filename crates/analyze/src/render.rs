//! Output renderers: human (optionally colored), deterministic JSON, and
//! SARIF 2.1.0.

use crate::{registry, Report, Severity};

const RESET: &str = "\x1b[0m";
const BOLD: &str = "\x1b[1m";

fn color_of(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "\x1b[31m",   // red
        Severity::Warning => "\x1b[33m", // yellow
        Severity::Note => "\x1b[36m",    // cyan
    }
}

/// Human rendering: one rustc-style block per diagnostic plus a summary
/// line.
pub(crate) fn human(report: &Report, color: bool) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let (c, b, r) = if color {
            (color_of(d.severity), BOLD, RESET)
        } else {
            ("", "", "")
        };
        out.push_str(&format!(
            "{c}{b}{}[{}]{r}{b}: {}{r}\n",
            d.severity, d.code, d.message
        ));
        out.push_str(&format!("  --> {} ({})\n", d.asset, d.span));
        if let Some(fix) = &d.fix {
            out.push_str(&format!("  = help: {fix}\n"));
        }
        out.push('\n');
    }
    let summary = format!(
        "{} error{}, {} warning{}, {} note{}",
        report.errors(),
        plural(report.errors()),
        report.warnings(),
        plural(report.warnings()),
        report.notes(),
        plural(report.notes()),
    );
    if report.diagnostics.is_empty() {
        out.push_str("clean: no diagnostics\n");
    } else {
        out.push_str(&summary);
        out.push('\n');
    }
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Deterministic JSON: derived field-order serialization of the (already
/// sorted) report, wrapped with a format version and summary counts.
pub(crate) fn json(report: &Report) -> String {
    use serde::Value;
    let diags = serde::Serialize::to_value(report);
    let body = Value::Object(vec![
        ("version".to_string(), Value::Int(1)),
        (
            "summary".to_string(),
            Value::Object(vec![
                ("errors".to_string(), Value::Int(report.errors() as i64)),
                ("warnings".to_string(), Value::Int(report.warnings() as i64)),
                ("notes".to_string(), Value::Int(report.notes() as i64)),
            ]),
        ),
        (
            "diagnostics".to_string(),
            diags.get("diagnostics").cloned().unwrap_or(Value::Null),
        ),
    ]);
    serde_json::to_string_pretty(&body).unwrap_or_else(|_| "{}".to_string())
}

fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    }
}

/// SARIF 2.1.0: one run, one rule per registry entry, one result per
/// diagnostic. Built as a value tree so string escaping is centralized in
/// the JSON writer.
pub(crate) fn sarif(report: &Report) -> String {
    use serde::Value;
    let obj = |fields: Vec<(&str, Value)>| {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let s = |t: &str| Value::String(t.to_string());

    let rules: Vec<Value> = registry()
        .iter()
        .map(|c| {
            obj(vec![
                ("id", s(c.code)),
                ("name", s(c.name)),
                ("shortDescription", obj(vec![("text", s(c.summary))])),
            ])
        })
        .collect();
    let results: Vec<Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut text = d.message.clone();
            if let Some(fix) = &d.fix {
                text.push_str(" — ");
                text.push_str(fix);
            }
            obj(vec![
                ("ruleId", s(d.code)),
                ("level", s(sarif_level(d.severity))),
                ("message", obj(vec![("text", s(&text))])),
                (
                    "locations",
                    Value::Array(vec![obj(vec![
                        (
                            "physicalLocation",
                            obj(vec![("artifactLocation", obj(vec![("uri", s(d.asset))]))]),
                        ),
                        (
                            "logicalLocations",
                            Value::Array(vec![obj(vec![("fullyQualifiedName", s(&d.span))])]),
                        ),
                    ])]),
                ),
            ])
        })
        .collect();
    let doc = obj(vec![
        (
            "$schema",
            s("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("cmr-analyze")),
                            ("informationUri", s("https://example.invalid/cmr")),
                            ("rules", Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Array(results)),
            ])]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, Report};

    fn sample() -> Report {
        Report::from_diagnostics(vec![
            Diagnostic::new(
                "CMR-D010",
                Severity::Warning,
                "crates/lexicon/src/words.rs",
                "NOUNS[\"complaint\"]",
                "duplicate entry",
            )
            .with_fix("remove the second occurrence"),
            Diagnostic::new(
                "CMR-D030",
                Severity::Error,
                "crates/core/src/schema.rs",
                "spec `pulse`",
                "empty range",
            ),
            Diagnostic::new(
                "CMR-D031",
                Severity::Note,
                "crates/core/src/schema.rs",
                "spec `pulse` / spec `weight`",
                "overlapping ranges",
            ),
        ])
    }

    #[test]
    fn human_plain_has_no_ansi() {
        let text = sample().render_human(false);
        assert!(!text.contains('\x1b'));
        assert!(text.contains("warning[CMR-D010]"));
        assert!(text.contains("1 error, 1 warning, 1 note"));
    }

    #[test]
    fn human_color_wraps_severity() {
        let text = sample().render_human(true);
        assert!(text.contains("\x1b[31m"), "error red");
        assert!(text.contains("\x1b[33m"), "warning yellow");
        assert!(text.contains("\x1b[36m"), "note cyan");
    }

    #[test]
    fn json_has_summary_and_is_stable() {
        let r = sample();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"errors\": 1"));
        assert!(a.contains("CMR-D010"));
    }

    #[test]
    fn sarif_declares_all_rules() {
        let text = sample().to_sarif();
        assert!(text.contains("\"version\": \"2.1.0\""));
        for info in registry() {
            assert!(text.contains(info.code), "{} missing", info.code);
        }
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = Report::from_diagnostics(Vec::new());
        assert!(r.render_human(false).contains("clean: no diagnostics"));
    }
}
