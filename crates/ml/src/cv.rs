//! Repeated, shuffled k-fold cross-validation — the paper's protocol.
//!
//! §5: "Five-fold cross validation is applied. … We run a five-fold cross
//! validation ten times, and each time the dataset is randomly shuffled.
//! Average precision (recall) is 92.2%."
//!
//! For 1-of-n single-label classification, micro-averaged precision equals
//! recall equals accuracy, which is why the paper reports one number.

use crate::dataset::Dataset;
use crate::id3::{Id3Params, Id3Tree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cross-validation configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrossValidation {
    /// Number of folds (the paper uses 5).
    pub folds: usize,
    /// Number of shuffled repetitions (the paper uses 10).
    pub repeats: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Tree parameters.
    pub params: Id3Params,
}

impl Default for CrossValidation {
    fn default() -> Self {
        CrossValidation {
            folds: 5,
            repeats: 10,
            seed: 0x1CDE_2005,
            params: Id3Params::default(),
        }
    }
}

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Accuracy (= micro precision = micro recall) per repetition.
    pub accuracy_per_repeat: Vec<f64>,
    /// Pooled confusion matrix over all repeats: `confusion[truth][pred]`.
    pub confusion: Vec<Vec<usize>>,
    /// Label names, aligned with the confusion matrix.
    pub label_names: Vec<String>,
    /// Number of distinct features used by each trained fold-tree.
    pub features_used_per_fold: Vec<usize>,
}

impl CvResult {
    /// Mean accuracy over repeats.
    pub fn mean_accuracy(&self) -> f64 {
        if self.accuracy_per_repeat.is_empty() {
            return 0.0;
        }
        self.accuracy_per_repeat.iter().sum::<f64>() / self.accuracy_per_repeat.len() as f64
    }

    /// Standard deviation of accuracy over repeats.
    pub fn std_accuracy(&self) -> f64 {
        let n = self.accuracy_per_repeat.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_accuracy();
        let var = self
            .accuracy_per_repeat
            .iter()
            .map(|a| (a - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Range (min, max) of per-fold feature counts — the "four to seven"
    /// statistic the paper reports.
    pub fn feature_count_range(&self) -> (usize, usize) {
        let min = self
            .features_used_per_fold
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        let max = self
            .features_used_per_fold
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        (min, max)
    }

    /// Per-class recall from the pooled confusion matrix.
    pub fn per_class_recall(&self) -> Vec<f64> {
        self.confusion
            .iter()
            .enumerate()
            .map(|(truth, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    0.0
                } else {
                    row[truth] as f64 / total as f64
                }
            })
            .collect()
    }
}

/// Anything trainable/predictable over boolean datasets can be
/// cross-validated (ID3 with any criterion, Naive Bayes, …).
pub trait Classifier: Sized {
    /// Trains on a dataset.
    fn fit(data: &Dataset) -> Self;
    /// Predicts the label index of a feature vector.
    fn predict_label(&self, features: &[bool]) -> usize;
    /// Number of distinct features the model consults (`None` when the
    /// notion does not apply, e.g. Naive Bayes uses all of them).
    fn features_consulted(&self) -> Option<usize> {
        None
    }
}

impl Classifier for crate::bayes::NaiveBayes {
    fn fit(data: &Dataset) -> Self {
        crate::bayes::NaiveBayes::train(data)
    }

    fn predict_label(&self, features: &[bool]) -> usize {
        self.predict(features)
    }
}

impl CrossValidation {
    /// Runs repeated k-fold cross-validation with the configured ID3
    /// parameters.
    ///
    /// Panics if the dataset has fewer instances than folds.
    pub fn run(&self, data: &Dataset) -> CvResult {
        let params = self.params;
        self.run_generic(data, |train_set| {
            let tree = Id3Tree::train(train_set, params);
            let used = Some(tree.features_used().len());
            (move |fv: &[bool]| tree.predict(fv), used)
        })
    }

    /// Runs the same protocol with any [`Classifier`] (e.g. Naive Bayes).
    pub fn run_with<C: Classifier>(&self, data: &Dataset) -> CvResult {
        self.run_generic(data, |train_set| {
            let model = C::fit(train_set);
            let used = model.features_consulted();
            (move |fv: &[bool]| model.predict_label(fv), used)
        })
    }

    fn run_generic<F, P>(&self, data: &Dataset, mut train: F) -> CvResult
    where
        F: FnMut(&Dataset) -> (P, Option<usize>),
        P: Fn(&[bool]) -> usize,
    {
        assert!(
            data.len() >= self.folds && self.folds >= 2,
            "need at least {} instances for {}-fold CV, have {}",
            self.folds,
            self.folds,
            data.len()
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_labels = data.n_labels();
        let mut confusion = vec![vec![0usize; n_labels]; n_labels];
        let mut accuracy_per_repeat = Vec::with_capacity(self.repeats);
        let mut features_used_per_fold = Vec::with_capacity(self.repeats * self.folds);

        for _ in 0..self.repeats {
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(&mut rng);
            let mut correct = 0usize;
            let mut total = 0usize;
            for fold in 0..self.folds {
                let test: Vec<usize> = order
                    .iter()
                    .enumerate()
                    .filter(|(pos, _)| pos % self.folds == fold)
                    .map(|(_, &i)| i)
                    .collect();
                let train_idx: Vec<usize> = order
                    .iter()
                    .enumerate()
                    .filter(|(pos, _)| pos % self.folds != fold)
                    .map(|(_, &i)| i)
                    .collect();
                let train_set = data.subset(&train_idx);
                let (predict, used) = train(&train_set);
                if let Some(u) = used {
                    features_used_per_fold.push(u);
                }
                for &i in &test {
                    let inst = &data.instances[i];
                    let pred = predict(&inst.features);
                    confusion[inst.label][pred] += 1;
                    if pred == inst.label {
                        correct += 1;
                    }
                    total += 1;
                }
            }
            accuracy_per_repeat.push(correct as f64 / total as f64);
        }

        CvResult {
            accuracy_per_repeat,
            confusion,
            label_names: data.label_names.clone(),
            features_used_per_fold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn separable(n_per_class: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        for i in 0..n_per_class {
            b.add(&["quit".into(), format!("noise{}", i % 3)], "former");
            b.add(&["never".into(), format!("noise{}", i % 4)], "never");
            b.add(&["currently".into()], "current");
        }
        b.build()
    }

    #[test]
    fn perfect_on_separable_data() {
        let d = separable(10);
        let cv = CrossValidation {
            repeats: 3,
            ..Default::default()
        };
        let r = cv.run(&d);
        assert!(r.mean_accuracy() > 0.99, "{}", r.mean_accuracy());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = separable(8);
        let cv = CrossValidation::default();
        let a = cv.run(&d).accuracy_per_repeat;
        let b = cv.run(&d).accuracy_per_repeat;
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let mut b = DatasetBuilder::new();
        // Noisy, non-separable data so fold assignment matters.
        for i in 0..30 {
            let label = if i % 2 == 0 { "a" } else { "b" };
            b.add(&[format!("f{}", i % 7)], label);
        }
        let d = b.build();
        let r1 = CrossValidation {
            seed: 1,
            ..Default::default()
        }
        .run(&d);
        let r2 = CrossValidation {
            seed: 2,
            ..Default::default()
        }
        .run(&d);
        // Accuracy vectors are almost surely different on noisy data.
        assert_ne!(r1.accuracy_per_repeat, r2.accuracy_per_repeat);
    }

    #[test]
    fn confusion_matrix_totals() {
        let d = separable(5);
        let cv = CrossValidation {
            repeats: 2,
            ..Default::default()
        };
        let r = cv.run(&d);
        let total: usize = r.confusion.iter().flatten().sum();
        assert_eq!(total, d.len() * 2, "every instance tested once per repeat");
    }

    #[test]
    fn feature_count_range_reported() {
        let d = separable(10);
        let r = CrossValidation {
            repeats: 2,
            ..Default::default()
        }
        .run(&d);
        let (lo, hi) = r.feature_count_range();
        assert!(lo >= 1 && hi >= lo);
        assert_eq!(r.features_used_per_fold.len(), 10);
    }

    #[test]
    fn std_accuracy_finite() {
        let d = separable(6);
        let r = CrossValidation {
            repeats: 4,
            ..Default::default()
        }
        .run(&d);
        assert!(r.std_accuracy() >= 0.0);
        assert!(r.std_accuracy().is_finite());
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_instances_panics() {
        let mut b = DatasetBuilder::new();
        b.add(&[], "a");
        let d = b.build();
        let _ = CrossValidation::default().run(&d);
    }

    #[test]
    fn naive_bayes_runs_through_cv() {
        let d = separable(8);
        let r = CrossValidation {
            repeats: 2,
            ..Default::default()
        }
        .run_with::<crate::bayes::NaiveBayes>(&d);
        assert!(r.mean_accuracy() > 0.9, "{}", r.mean_accuracy());
        assert!(
            r.features_used_per_fold.is_empty(),
            "NB reports no feature count"
        );
    }

    #[test]
    fn id3_and_nb_use_same_protocol() {
        let d = separable(6);
        let cv = CrossValidation {
            repeats: 2,
            ..Default::default()
        };
        let a = cv.run(&d);
        let b = cv.run_with::<crate::bayes::NaiveBayes>(&d);
        let total_a: usize = a.confusion.iter().flatten().sum();
        let total_b: usize = b.confusion.iter().flatten().sum();
        assert_eq!(total_a, total_b, "identical fold assignment");
    }
}
