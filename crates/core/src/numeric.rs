//! Numeric field extraction (§3.1).
//!
//! Pipeline per sentence: identify feature keyword mentions (name +
//! synonyms + inflected variants), identify numbers (digits and number
//! words), then **associate** each feature with a number:
//!
//! * primary: parse with the link grammar parser and take, for each
//!   feature, the number at the smallest weighted shortest-path distance in
//!   the linkage graph (§3.1's novel approach);
//! * fallback: when the parser fails (fragments like
//!   `"Blood pressure: 144/90"`), linguistic patterns
//!   `CONCEPT is NUMBER` / `CONCEPT of NUMBER` / `CONCEPT, NUMBER` /
//!   `CONCEPT: NUMBER`;
//! * a token-proximity baseline is provided for the ablation harness.

use crate::spec::FeatureSpec;
use cmr_linkgram::{LinkParser, LinkWeights};
use cmr_postag::{PosTagger, TaggedToken};
use cmr_text::{annotate_numbers, intern, tokenize, NumberAnnotation, NumberValue, Record, Sym};
use serde::{Deserialize, Serialize};

/// How feature–number association is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssociationMethod {
    /// Link-grammar shortest distance, with the pattern fallback when the
    /// parse fails — the paper's configuration.
    #[default]
    LinkWithFallback,
    /// Link-grammar only (no fallback); fragments yield nothing.
    LinkOnly,
    /// Patterns only (the paper's "shallow approach").
    PatternOnly,
    /// Raw token-index proximity (ablation baseline).
    Proximity,
}

/// Which mechanism produced a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodUsed {
    /// Link-grammar graph distance.
    LinkGrammar,
    /// Linguistic pattern fallback.
    Pattern,
    /// The `{N}-year-old` dictation pattern.
    YearOld,
    /// Token proximity (ablation only).
    Proximity,
    /// Tier-3 raw-text salvage scan (see [`crate::DegradationReport`]);
    /// never produced by the extractor itself, only by the
    /// [`crate::Pipeline`] salvage stage.
    Salvage,
}

/// One extracted numeric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericHit {
    /// Attribute name from the spec.
    pub field: String,
    /// The associated value.
    pub value: NumberValue,
    /// Mechanism that made the association.
    pub method: MethodUsed,
}

/// Filler tokens a pattern may skip between a feature keyword and its
/// number: copulas, prepositions and list punctuation — generalizing the
/// paper's four patterns (`is` / `of` / `,` / `:`).
const PATTERN_FILLERS: &[&str] = &[
    "is",
    "was",
    "are",
    "were",
    "of",
    "at",
    "about",
    "approximately",
    "around",
    "a",
    "an",
    "age",
    ",",
    ":",
    "to",
];
/// Maximum fillers to skip before giving up on a pattern match.
const MAX_FILLERS: usize = 3;

/// The filler vocabulary of the pattern fallback, exposed for static
/// analysis (each entry must survive tokenization as a single token or it
/// can never fire).
pub fn pattern_fillers() -> &'static [&'static str] {
    PATTERN_FILLERS
}

/// The numeric extractor.
pub struct NumericExtractor {
    parser: LinkParser,
    tagger: PosTagger,
    weights: LinkWeights,
    method: AssociationMethod,
}

impl Default for NumericExtractor {
    fn default() -> Self {
        NumericExtractor::new()
    }
}

impl NumericExtractor {
    /// Paper configuration: link grammar with pattern fallback, default
    /// link weights.
    pub fn new() -> NumericExtractor {
        NumericExtractor::with_method(AssociationMethod::LinkWithFallback)
    }

    /// Configures the association method (for ablations).
    pub fn with_method(method: AssociationMethod) -> NumericExtractor {
        NumericExtractor {
            parser: LinkParser::new(),
            tagger: PosTagger::new(),
            weights: LinkWeights::default(),
            method,
        }
    }

    /// Overrides the link weights.
    pub fn with_weights(mut self, weights: LinkWeights) -> NumericExtractor {
        self.weights = weights;
        self
    }

    /// Attaches a pool-wide parse-structure cache (see
    /// [`cmr_linkgram::SharedParseCache`]); each worker of a batch engine
    /// shares one so a sentence shape is link-parsed once per pool.
    pub fn set_shared_parse_cache(&mut self, cache: cmr_linkgram::SharedParseCache) {
        self.parser.set_shared_cache(cache);
    }

    /// Installs a cooperative-cancellation flag on the link parser (see
    /// [`cmr_linkgram::LinkParser::set_cancel_flag`]): while the flag is
    /// raised, in-flight parses abandon work instead of running the full
    /// O(n³) search.
    pub fn set_cancel_flag(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.parser.set_cancel_flag(flag);
    }

    /// Link-parser cache and timing counters (see
    /// [`cmr_linkgram::ParserStats`]).
    pub fn parser_stats(&self) -> cmr_linkgram::ParserStats {
        self.parser.stats()
    }

    /// Extracts all numeric attributes of `specs` from a full record.
    /// Sections route specs; the first hit per attribute wins.
    pub fn extract_record(&self, text: &str, specs: &[FeatureSpec]) -> Vec<NumericHit> {
        self.extract_parsed(&Record::parse(text), specs)
    }

    /// Like [`NumericExtractor::extract_record`], but over an
    /// already-parsed [`Record`] — callers that also need the section
    /// structure (e.g. [`crate::Pipeline`]) parse once and share it.
    pub fn extract_parsed(&self, record: &Record, specs: &[FeatureSpec]) -> Vec<NumericHit> {
        self.extract_budgeted(record, specs, &crate::ExtractBudget::NONE)
            .expect("unlimited budget never trips")
    }

    /// Like [`NumericExtractor::extract_parsed`], but bails with
    /// [`crate::BudgetExceeded`] once the budget runs out. The budget is
    /// checked before each sentence (each sentence is at most one link
    /// parse, the dominant cost); hits gathered so far are discarded —
    /// batch drivers treat a tripped budget as a per-record failure.
    pub fn extract_budgeted(
        &self,
        record: &Record,
        specs: &[FeatureSpec],
        budget: &crate::ExtractBudget,
    ) -> Result<Vec<NumericHit>, crate::BudgetExceeded> {
        self.extract_counted(record, specs, budget)
            .map(|(hits, _)| hits)
    }

    /// Like [`NumericExtractor::extract_budgeted`], but additionally
    /// reports link-parse failures by reason. Only sentences that carried
    /// an extraction opportunity (a feature mention with an unfilled spec)
    /// are counted — see [`crate::ParseFailureCounts`].
    pub fn extract_counted(
        &self,
        record: &Record,
        specs: &[FeatureSpec],
        budget: &crate::ExtractBudget,
    ) -> Result<(Vec<NumericHit>, crate::ParseFailureCounts), crate::BudgetExceeded> {
        let mut hits: Vec<NumericHit> = Vec::new();
        let mut failures = crate::ParseFailureCounts::default();
        let mut sentences_done = 0usize;
        for section in &record.sections {
            let key = section.key();
            let routed: Vec<&FeatureSpec> = specs
                .iter()
                .filter(|s| {
                    s.sections.is_empty() || s.sections.iter().any(|x| x.to_lowercase() == key)
                })
                .collect();
            if routed.is_empty() {
                continue;
            }
            for sentence in section.sentences() {
                budget.check(sentences_done)?;
                let found = self.extract_sentence_counted(
                    sentence.text(&section.body),
                    &routed,
                    &mut failures,
                );
                sentences_done += 1;
                for hit in found {
                    if !hits.iter().any(|h| h.field == hit.field) {
                        hits.push(hit);
                    }
                }
            }
        }
        Ok((hits, failures))
    }

    /// Extracts from a single sentence against the given specs.
    pub fn extract_sentence(&self, sentence: &str, specs: &[&FeatureSpec]) -> Vec<NumericHit> {
        self.extract_sentence_counted(sentence, specs, &mut crate::ParseFailureCounts::default())
    }

    /// Like [`NumericExtractor::extract_sentence`], recording any
    /// link-parse failure into `failures` when the sentence had an
    /// extraction opportunity.
    pub fn extract_sentence_counted(
        &self,
        sentence: &str,
        specs: &[&FeatureSpec],
        failures: &mut crate::ParseFailureCounts,
    ) -> Vec<NumericHit> {
        let tokens = tokenize(sentence);
        if tokens.is_empty() {
            return Vec::new();
        }
        let numbers = annotate_numbers(&tokens);
        let tagged = self.tagger.tag_owned(tokens);
        let mut hits: Vec<NumericHit> = Vec::new();
        let mut used_numbers: Vec<usize> = Vec::new(); // first_token of consumed numbers
        let mut done_specs: Vec<usize> = Vec::new();

        // The {N}-year-old pattern runs first: it is unambiguous.
        for (si, spec) in specs.iter().enumerate() {
            if !spec.year_old_pattern {
                continue;
            }
            if let Some(num) = year_old_number(&tagged, &numbers) {
                if spec.accepts(&num.value) {
                    hits.push(NumericHit {
                        field: spec.name.clone(),
                        value: num.value,
                        method: MethodUsed::YearOld,
                    });
                    used_numbers.push(num.first_token);
                    done_specs.push(si);
                }
            }
        }

        let mentions = find_mentions(&tagged, specs);
        let open_specs: Vec<usize> = (0..specs.len())
            .filter(|i| !done_specs.contains(i))
            .collect();
        if mentions.is_empty() || open_specs.is_empty() {
            return hits;
        }

        let assoc = match self.method {
            AssociationMethod::LinkWithFallback => {
                match self.associate_link(&tagged, &mentions, &numbers, specs, &used_numbers) {
                    Ok(a) => a,
                    Err(failure) => {
                        failures.record(failure.into());
                        associate_pattern(&tagged, &mentions, &numbers, specs, &used_numbers)
                    }
                }
            }
            AssociationMethod::LinkOnly => self
                .associate_link(&tagged, &mentions, &numbers, specs, &used_numbers)
                .unwrap_or_else(|failure| {
                    failures.record(failure.into());
                    Vec::new()
                }),
            AssociationMethod::PatternOnly => {
                associate_pattern(&tagged, &mentions, &numbers, specs, &used_numbers)
            }
            AssociationMethod::Proximity => {
                associate_proximity(&mentions, &numbers, specs, &used_numbers)
            }
        };
        for (si, value, method) in assoc {
            if done_specs.contains(&si) || hits.iter().any(|h| h.field == specs[si].name) {
                continue;
            }
            hits.push(NumericHit {
                field: specs[si].name.clone(),
                value,
                method,
            });
        }
        hits
    }

    /// Link-grammar association; the error carries *why* the sentence did
    /// not parse (see [`cmr_linkgram::ParseFailure`]).
    fn associate_link(
        &self,
        tagged: &[TaggedToken],
        mentions: &[Mention],
        numbers: &[NumberAnnotation],
        specs: &[&FeatureSpec],
        used_numbers: &[usize],
    ) -> Result<Vec<(usize, NumberValue, MethodUsed)>, cmr_linkgram::ParseFailure> {
        let linkage = self.parser.try_parse(tagged)?;
        // Candidate (mention, number, distance) triples.
        let mut cands: Vec<(usize, usize, f64)> = Vec::new();
        for (mi, m) in mentions.iter().enumerate() {
            let Some(mw) = linkage.word_of_token(m.head_token) else {
                continue;
            };
            let dist = linkage.distances_from(mw, &self.weights);
            for (ni, n) in numbers.iter().enumerate() {
                if used_numbers.contains(&n.first_token) || !specs[m.spec].accepts(&n.value) {
                    continue;
                }
                let Some(nw) = linkage.word_of_token(n.first_token) else {
                    continue;
                };
                if dist[nw].is_finite() {
                    cands.push((mi, ni, dist[nw]));
                }
            }
        }
        // Greedy closest-first assignment; one number per spec, one spec per
        // number.
        cands.sort_by(|a, b| a.2.total_cmp(&b.2));
        let mut out: Vec<(usize, NumberValue, MethodUsed)> = Vec::new();
        let mut spec_done: Vec<usize> = Vec::new();
        let mut num_done: Vec<usize> = Vec::new();
        for (mi, ni, _) in cands {
            let si = mentions[mi].spec;
            if spec_done.contains(&si) || num_done.contains(&ni) {
                continue;
            }
            spec_done.push(si);
            num_done.push(ni);
            out.push((si, numbers[ni].value, MethodUsed::LinkGrammar));
        }
        Ok(out)
    }
}

/// A feature-keyword mention in a token stream.
#[derive(Debug, Clone)]
struct Mention {
    spec: usize,
    /// Head (= last) token of the phrase, used as the graph node.
    head_token: usize,
}

/// Finds keyword mentions; longest phrase wins at each position.
fn find_mentions(tagged: &[TaggedToken], specs: &[&FeatureSpec]) -> Vec<Mention> {
    // Pre-split each spec's phrases into interned word lists, so the scan
    // below compares symbol ids instead of allocating lowercase strings.
    let phrase_sets: Vec<Vec<Vec<Sym>>> = specs
        .iter()
        .map(|s| {
            s.matching_phrases()
                .iter()
                .map(|p| p.split_whitespace().map(intern).collect())
                .collect()
        })
        .collect();
    let mut mentions = Vec::new();
    let mut i = 0;
    while i < tagged.len() {
        let mut best: Option<(usize, usize)> = None; // (spec, len)
        for (si, phrases) in phrase_sets.iter().enumerate() {
            for words in phrases {
                if words.is_empty() || i + words.len() > tagged.len() {
                    continue;
                }
                let all_match = words.iter().enumerate().all(|(k, &w)| {
                    let t = &tagged[i + k];
                    t.token.kind.is_word() && (t.lower == w || t.lemma == w)
                });
                if all_match && best.map(|(_, l)| words.len() > l).unwrap_or(true) {
                    best = Some((si, words.len()));
                }
            }
        }
        if let Some((si, len)) = best {
            mentions.push(Mention {
                spec: si,
                head_token: i + len - 1,
            });
            i += len;
        } else {
            i += 1;
        }
    }
    mentions
}

/// `{N}-year-old` / `{N} year old` / `{N} years old`.
fn year_old_number<'a>(
    tagged: &[TaggedToken],
    numbers: &'a [NumberAnnotation],
) -> Option<&'a NumberAnnotation> {
    for n in numbers {
        let after = n.last_token + 1;
        // "50-year-old": tokenizer yields [50]['-']['year-old'].
        if tagged.len() > after + 1
            && tagged[after].token.text == "-"
            && tagged[after + 1].lower().starts_with("year")
        {
            return Some(n);
        }
        // "50 years old".
        if tagged.len() > after + 1
            && tagged[after].lower().starts_with("year")
            && tagged[after + 1].lower() == "old"
        {
            return Some(n);
        }
    }
    None
}

/// Pattern fallback: the paper's `CONCEPT is/of/,/: NUMBER` shapes, with a
/// small filler vocabulary and bounded skip.
fn associate_pattern(
    tagged: &[TaggedToken],
    mentions: &[Mention],
    numbers: &[NumberAnnotation],
    specs: &[&FeatureSpec],
    used_numbers: &[usize],
) -> Vec<(usize, NumberValue, MethodUsed)> {
    let mut out: Vec<(usize, NumberValue, MethodUsed)> = Vec::new();
    let mut num_done: Vec<usize> = used_numbers.to_vec();
    for m in mentions {
        if out.iter().any(|(si, _, _)| *si == m.spec) {
            continue;
        }
        let mut pos = m.head_token + 1;
        let mut fillers = 0;
        while pos < tagged.len() && fillers <= MAX_FILLERS {
            if let Some(n) = numbers
                .iter()
                .find(|n| n.first_token == pos && !num_done.contains(&n.first_token))
            {
                if specs[m.spec].accepts(&n.value) {
                    num_done.push(n.first_token);
                    out.push((m.spec, n.value, MethodUsed::Pattern));
                }
                break;
            }
            let t = &tagged[pos];
            if PATTERN_FILLERS.contains(&t.lower()) {
                fillers += 1;
                pos += 1;
            } else {
                break;
            }
        }
    }
    out
}

/// Ablation baseline: nearest number by raw token distance.
fn associate_proximity(
    mentions: &[Mention],
    numbers: &[NumberAnnotation],
    specs: &[&FeatureSpec],
    used_numbers: &[usize],
) -> Vec<(usize, NumberValue, MethodUsed)> {
    let mut cands: Vec<(usize, usize, usize)> = Vec::new();
    for (mi, m) in mentions.iter().enumerate() {
        for (ni, n) in numbers.iter().enumerate() {
            if used_numbers.contains(&n.first_token) || !specs[m.spec].accepts(&n.value) {
                continue;
            }
            let d = n.first_token.abs_diff(m.head_token);
            cands.push((mi, ni, d));
        }
    }
    cands.sort_by_key(|c| c.2);
    let mut out = Vec::new();
    let mut spec_done: Vec<usize> = Vec::new();
    let mut num_done: Vec<usize> = Vec::new();
    for (mi, ni, _) in cands {
        let si = mentions[mi].spec;
        if spec_done.contains(&si) || num_done.contains(&ni) {
            continue;
        }
        spec_done.push(si);
        num_done.push(ni);
        out.push((si, numbers[ni].value, MethodUsed::Proximity));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn extract(sentence: &str) -> Vec<NumericHit> {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        NumericExtractor::new().extract_sentence(sentence, &specs)
    }

    fn value_of<'a>(hits: &'a [NumericHit], field: &str) -> Option<&'a NumericHit> {
        hits.iter().find(|h| h.field == field)
    }

    #[test]
    fn paper_example_sentence() {
        let hits = extract(
            "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.",
        );
        assert_eq!(
            value_of(&hits, "blood_pressure")
                .expect("field extracted")
                .value,
            NumberValue::Ratio(144, 90)
        );
        assert_eq!(
            value_of(&hits, "pulse").expect("field extracted").value,
            NumberValue::Int(84)
        );
        assert_eq!(
            value_of(&hits, "temperature")
                .expect("field extracted")
                .value,
            NumberValue::Float(98.3)
        );
        assert_eq!(
            value_of(&hits, "weight").expect("field extracted").value,
            NumberValue::Int(154)
        );
        assert!(
            hits.iter().all(|h| h.method == MethodUsed::LinkGrammar),
            "{hits:?}"
        );
    }

    #[test]
    fn fragment_uses_pattern_fallback() {
        let hits = extract("Blood pressure: 144/90.");
        let bp = value_of(&hits, "blood_pressure").expect("field extracted");
        assert_eq!(bp.value, NumberValue::Ratio(144, 90));
        assert_eq!(bp.method, MethodUsed::Pattern);
    }

    #[test]
    fn gyn_fragment() {
        let hits = extract(
            "Menarche at age 10, gravida 4, para 3, last menstrual period about a year ago.",
        );
        assert_eq!(
            value_of(&hits, "menarche_age")
                .expect("field extracted")
                .value,
            NumberValue::Int(10)
        );
        assert_eq!(
            value_of(&hits, "gravida").expect("field extracted").value,
            NumberValue::Int(4)
        );
        assert_eq!(
            value_of(&hits, "para").expect("field extracted").value,
            NumberValue::Int(3)
        );
    }

    #[test]
    fn first_live_birth() {
        let hits = extract("First live birth at age 18.");
        assert_eq!(
            value_of(&hits, "first_birth_age")
                .expect("field extracted")
                .value,
            NumberValue::Int(18)
        );
    }

    #[test]
    fn year_old_age() {
        let hits = extract("Ms. 2 is a 50-year-old woman who underwent a screening mammogram.");
        let age = value_of(&hits, "age").expect("field extracted");
        assert_eq!(age.value, NumberValue::Int(50));
        assert_eq!(age.method, MethodUsed::YearOld);
    }

    #[test]
    fn kind_filtering_prevents_ratio_theft() {
        // The pulse spec must not take the blood-pressure ratio.
        let hits = extract("Blood pressure is 144/90 and pulse is 84.");
        assert_eq!(
            value_of(&hits, "pulse").expect("field extracted").value,
            NumberValue::Int(84)
        );
        assert_eq!(
            value_of(&hits, "blood_pressure")
                .expect("field extracted")
                .value,
            NumberValue::Ratio(144, 90)
        );
    }

    #[test]
    fn number_words_extracted() {
        let hits = extract("Menarche at age seventeen.");
        assert_eq!(
            value_of(&hits, "menarche_age")
                .expect("field extracted")
                .value,
            NumberValue::Int(17)
        );
    }

    #[test]
    fn no_numbers_no_hits() {
        assert!(extract("Blood pressure was not recorded.").is_empty());
    }

    #[test]
    fn no_features_no_hits() {
        assert!(extract("She was seen in clinic on day 3.").is_empty());
    }

    #[test]
    fn record_level_routing() {
        let schema = Schema::paper();
        let ex = NumericExtractor::new();
        let text = "GYN History:  Menarche at age 12, gravida 2, para 1.\n\
                    Vitals:  Blood pressure is 130/80, pulse of 72, temperature of 98.6, and weight of 150 pounds.\n";
        let hits = ex.extract_record(text, &schema.numeric);
        assert_eq!(
            hits.iter()
                .find(|h| h.field == "menarche_age")
                .expect("field extracted")
                .value,
            NumberValue::Int(12)
        );
        assert_eq!(
            hits.iter()
                .find(|h| h.field == "pulse")
                .expect("field extracted")
                .value,
            NumberValue::Int(72)
        );
        // Age spec routed to HPI only: absent here.
        assert!(hits.iter().all(|h| h.field != "age"));
    }

    #[test]
    fn link_only_fails_on_fragments() {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let ex = NumericExtractor::with_method(AssociationMethod::LinkOnly);
        let hits = ex.extract_sentence("Blood pressure: 144/90.", &specs);
        assert!(hits.is_empty());
    }

    #[test]
    fn proximity_method_works_on_simple_cases() {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let ex = NumericExtractor::with_method(AssociationMethod::Proximity);
        let hits = ex.extract_sentence("pulse of 84", &specs);
        assert_eq!(hits[0].value, NumberValue::Int(84));
        assert_eq!(hits[0].method, MethodUsed::Proximity);
    }

    #[test]
    fn hard_attachment_favors_link_grammar() {
        // "elevated" breaks the pattern filler chain; the linkage still
        // connects pressure → is → at → 142/78.
        let hits = extract("Blood pressure is elevated at 142/78.");
        let bp = value_of(&hits, "blood_pressure").expect("field extracted");
        assert_eq!(bp.value, NumberValue::Ratio(142, 78));
        assert_eq!(bp.method, MethodUsed::LinkGrammar);
    }
}
