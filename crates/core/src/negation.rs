//! Negation scope detection (a NegEx-style extension).
//!
//! The paper's term extractor reports every ontology hit, including terms
//! that the note explicitly *rules out* ("Negative for breast cancer",
//! "denies chest pain", "no known drug allergies"). Clinical IE systems
//! that followed the paper (NegEx, cTAKES) treat negation as a first-class
//! problem; this module is the minimal version: trigger phrases open a
//! scope that runs rightward until a scope breaker or a fixed window ends
//! it.

use cmr_postag::TaggedToken;
use cmr_text::TokenKind;

/// Maximum tokens a negation scope extends past its trigger.
const SCOPE_WINDOW: usize = 8;

/// Trigger phrases (lemma/lower sequences) that negate what follows.
const TRIGGERS: &[&[&str]] = &[
    &["no"],
    &["not"],
    &["deny"],   // matched on lemma: denies/denied
    &["denies"], // and on surface, for robustness
    &["denied"],
    &["never"],
    &["without"],
    &["negative", "for"],
    &["free", "of"],
    &["rule", "out"],
    &["ruled", "out"],
    &["absence", "of"],
    &["no", "evidence", "of"],
    &["no", "history", "of"],
];

/// Words that end a negation scope early.
const BREAKERS: &[&str] = &["but", "except", "however", "although", "aside"];

/// The trigger phrase table, exposed for static analysis (e.g. checking
/// that no phrase-table entry shadows a trigger).
pub fn negation_triggers() -> &'static [&'static [&'static str]] {
    TRIGGERS
}

/// The scope-breaker word list, exposed for static analysis.
pub fn negation_breakers() -> &'static [&'static str] {
    BREAKERS
}

/// Detects negated token ranges in a tagged sentence.
#[derive(Debug, Clone, Copy, Default)]
pub struct NegationDetector {
    _private: (),
}

impl NegationDetector {
    /// Creates a detector.
    pub fn new() -> NegationDetector {
        NegationDetector::default()
    }

    /// Token index ranges `[start, end)` that fall under a negation scope.
    pub fn negated_ranges(&self, tagged: &[TaggedToken]) -> Vec<(usize, usize)> {
        let lowers: Vec<&str> = tagged.iter().map(|t| t.lower()).collect();
        let lemmas: Vec<&str> = tagged.iter().map(|t| t.lemma.as_str()).collect();
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            let trigger_len = TRIGGERS
                .iter()
                .filter(|t| {
                    t.iter().enumerate().all(|(k, w)| {
                        lowers.get(i + k).map(|l| l == w).unwrap_or(false)
                            || lemmas.get(i + k).map(|l| l == w).unwrap_or(false)
                    })
                })
                .map(|t| t.len())
                .max();
            let Some(tlen) = trigger_len else {
                i += 1;
                continue;
            };
            // Scope: from just after the trigger to the first breaker,
            // clause punctuation, or the window limit.
            let start = i + tlen;
            let mut end = start;
            while end < tagged.len() && end - start < SCOPE_WINDOW {
                let t = &tagged[end];
                if t.token.kind == TokenKind::Punct
                    && matches!(t.token.text.as_str(), "." | ";" | ":" | "?")
                {
                    break;
                }
                if BREAKERS.contains(&lowers[end]) {
                    break;
                }
                end += 1;
            }
            if end > start {
                ranges.push((start, end));
            }
            i = start;
        }
        merge_ranges(ranges)
    }

    /// True when the token at `idx` is inside a negation scope.
    pub fn is_negated(&self, tagged: &[TaggedToken], idx: usize) -> bool {
        self.negated_ranges(tagged)
            .iter()
            .any(|&(s, e)| s <= idx && idx < e)
    }
}

fn merge_ranges(mut ranges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    ranges.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
    for (s, e) in ranges {
        match out.last_mut() {
            Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_postag::PosTagger;
    use cmr_text::tokenize;

    fn ranges(s: &str) -> Vec<(usize, usize)> {
        let tagged = PosTagger::new().tag(&tokenize(s));
        NegationDetector::new().negated_ranges(&tagged)
    }

    fn negated_words(s: &str) -> Vec<String> {
        let toks = tokenize(s);
        let tagged = PosTagger::new().tag(&toks);
        let det = NegationDetector::new();
        (0..toks.len())
            .filter(|&i| det.is_negated(&tagged, i))
            .map(|i| toks[i].text.clone())
            .collect()
    }

    #[test]
    fn negative_for_scope() {
        let w = negated_words("Negative for breast cancer.");
        assert_eq!(w, vec!["breast", "cancer"]);
    }

    #[test]
    fn denies_scope_by_lemma() {
        for s in ["She denies chest pain.", "She denied chest pain."] {
            let w = negated_words(s);
            assert!(w.contains(&"chest".to_string()), "{s}: {w:?}");
            assert!(w.contains(&"pain".to_string()));
        }
    }

    #[test]
    fn no_known_allergies() {
        let w = negated_words("No known drug allergies.");
        assert!(w.contains(&"allergies".to_string()), "{w:?}");
    }

    #[test]
    fn affirmed_text_has_no_ranges() {
        assert!(ranges("Significant for diabetes and hypertension.").is_empty());
    }

    #[test]
    fn breaker_ends_scope() {
        let w = negated_words("No fever but chest pain persists.");
        assert!(w.contains(&"fever".to_string()));
        assert!(!w.contains(&"pain".to_string()), "{w:?}");
    }

    #[test]
    fn punctuation_ends_scope() {
        let w = negated_words("No masses. Tenderness in the left breast.");
        assert!(w.contains(&"masses".to_string()));
        assert!(!w.contains(&"Tenderness".to_string()), "{w:?}");
    }

    #[test]
    fn multiword_trigger_prefers_longest() {
        // "no history of smoking": scope starts after "of", not after "no".
        let r = ranges("There is no history of smoking.");
        assert_eq!(r.len(), 1);
        let w = negated_words("There is no history of smoking.");
        assert!(w.contains(&"smoking".to_string()));
        assert!(!w.contains(&"history".to_string()), "{w:?}");
    }

    #[test]
    fn window_bounds_scope() {
        let s = "No alpha beta gamma delta epsilon zeta eta theta iota kappa lambda";
        let r = ranges(s);
        assert_eq!(r.len(), 1);
        assert!(r[0].1 - r[0].0 <= SCOPE_WINDOW);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let r = ranges("She denies no pain.");
        assert_eq!(r.len(), 1);
    }
}
