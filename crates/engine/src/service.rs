//! Resident-service support: the engine's warm state, held across requests.
//!
//! The batch engine ([`crate::Engine`]) builds its world per run — shared
//! parse cache, watchdog, metrics collector all live for one
//! `extract_stream` call. A resident process (`cmr serve`) needs the same
//! pieces to live for the *process*: the first request warms the caches and
//! every later request benefits. [`ServiceHandle`] is that long-lived core:
//!
//! * one pool-wide [`SharedParseCache`] (plus the process-global string
//!   interner, which is warm by construction),
//! * the once-per-process startup lint gate — a handle cannot be built
//!   over broken rule assets,
//! * one [`Watchdog`] monitoring every service worker for the process
//!   lifetime (when a per-request deadline is configured),
//! * one metrics collector accumulating [`EngineMetrics`] since startup,
//!   including the request-latency histograms in
//!   [`EngineMetrics::service`].
//!
//! Each server worker thread builds a [`ServiceWorker`] (the pipeline is
//! `!Sync`; per-thread construction is the same pattern the pool uses) and
//! calls [`ServiceWorker::extract`] once per request. Extraction runs
//! through the exact retry/watchdog/panic-isolation path as batch records
//! (`extract_with_retry`), so a poison request costs one worker one
//! deadline, never the process.

use crate::engine::{
    extract_with_retry, startup_lint, Engine, EngineConfig, EngineError, WorkerCtx,
};
use crate::metrics::{
    lock_collector, EngineMetrics, MetricsCollector, MetricsSink, COLLECTOR_LOCK_CLASS,
};
use crate::watchdog::Watchdog;
use cmr_core::{ExtractedRecord, Pipeline, Schema, SharedParseCache};
use cmr_ontology::Ontology;
use cmr_sync::TrackedMutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which service latency histogram a request sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyKind {
    /// One `POST /extract` request, end to end.
    Extract,
    /// One `POST /extract/batch` request, end to end.
    Batch,
    /// One NDJSON line inside a batch request.
    BatchRecord,
}

/// The long-lived shared core of a resident extraction service.
///
/// Cheap to share (`Arc`); owns the watchdog thread and stops it on drop.
pub struct ServiceHandle {
    cfg: EngineConfig,
    schema: Arc<Schema>,
    ontology: Arc<Ontology>,
    parse_cache: SharedParseCache,
    collector: Arc<TrackedMutex<MetricsCollector>>,
    watchdog: Option<Arc<Watchdog>>,
    watchdog_thread: TrackedMutex<Option<JoinHandle<()>>>,
    watchdog_stopped: AtomicBool,
    lint_warnings: u64,
    started: Instant,
}

impl ServiceHandle {
    /// Builds the shared service state. Fails with [`EngineError::Lint`]
    /// when the compiled-in rule assets carry `Error`-severity findings —
    /// a service must refuse to come up over a broken knowledge base
    /// rather than fail every request.
    pub fn new(
        cfg: EngineConfig,
        schema: impl Into<Arc<Schema>>,
        ontology: impl Into<Arc<Ontology>>,
    ) -> Result<Arc<ServiceHandle>, EngineError> {
        let lint = startup_lint();
        if lint.errors > 0 {
            return Err(EngineError::Lint {
                message: lint.message.clone(),
            });
        }
        let jobs = cfg.resolved_jobs();
        let watchdog = cfg.max_record_millis.map(|ms| Watchdog::new(jobs, ms));
        let watchdog_thread = TrackedMutex::new(
            "engine.watchdog_thread",
            watchdog.as_ref().map(Watchdog::spawn),
        );
        Ok(Arc::new(ServiceHandle {
            cfg,
            schema: schema.into(),
            ontology: ontology.into(),
            parse_cache: SharedParseCache::new(),
            collector: Arc::new(TrackedMutex::new(
                COLLECTOR_LOCK_CLASS,
                MetricsCollector::default(),
            )),
            watchdog,
            watchdog_thread,
            watchdog_stopped: AtomicBool::new(false),
            lint_warnings: lint.warnings,
            started: Instant::now(),
        }))
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Resolved worker count (watchdog slots are sized to this).
    pub fn jobs(&self) -> usize {
        self.cfg.resolved_jobs()
    }

    /// Warning count from the startup asset lint (errors prevent
    /// construction, so a live handle only ever carries warnings).
    pub fn lint_warnings(&self) -> u64 {
        self.lint_warnings
    }

    /// Time since the handle was built.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Builds the per-thread worker for slot `widx` (`0..jobs()`). Call
    /// from inside the worker's own thread: the pipeline's parse caches
    /// are thread-local by design, backed by the shared cache as the slow
    /// path, so a sentence shape is parsed once per *process*, not once
    /// per worker.
    pub fn worker(self: &Arc<Self>, widx: usize) -> ServiceWorker {
        assert!(widx < self.jobs(), "worker index out of range");
        let mut pipeline = Pipeline::new(
            Arc::clone(&self.schema),
            Arc::clone(&self.ontology),
            self.cfg.method,
        )
        .with_term_patterns(self.cfg.term_patterns)
        .with_salvage(self.cfg.salvage)
        .with_shared_parse_cache(self.parse_cache.clone());
        if let Some(wd) = &self.watchdog {
            pipeline = pipeline.with_cancel_flag(wd.cancel_flag(widx));
        }
        ServiceWorker {
            sink: MetricsSink::new(Arc::clone(&self.collector)),
            service: Arc::clone(self),
            widx,
            pipeline,
        }
    }

    /// Records one request-latency sample into the cumulative metrics.
    pub fn record_latency(&self, kind: LatencyKind, nanos: u64) {
        let mut c = lock_collector(&self.collector);
        let histogram = match kind {
            LatencyKind::Extract => &mut c.service.extract,
            LatencyKind::Batch => &mut c.service.batch,
            LatencyKind::BatchRecord => &mut c.service.batch_record,
        };
        histogram.record(nanos);
    }

    /// Cumulative metrics since the handle was built. `wall_nanos` (and
    /// thus `records_per_sec`) covers the whole uptime, idle included —
    /// it is a service-lifetime rate, not a batch throughput.
    pub fn metrics(&self) -> EngineMetrics {
        let collector = lock_collector(&self.collector);
        let mut m = EngineMetrics::from_collector(
            &collector,
            self.jobs(),
            self.started.elapsed().as_nanos() as u64,
        );
        m.lint_warnings = self.lint_warnings;
        m.cache_shard_contention = self.parse_cache.stats().contention;
        m
    }

    /// Stops the watchdog thread (idempotent; also runs on drop). In-flight
    /// requests are not interrupted — their workers simply stop being
    /// monitored, which only matters during final drain.
    pub fn stop(&self) {
        if self.watchdog_stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(wd) = &self.watchdog {
            wd.stop();
        }
        let handle = lock_thread(&self.watchdog_thread).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One worker's slice of the service: a warm pipeline bound to a watchdog
/// slot. Build with [`ServiceHandle::worker`] inside the worker thread.
pub struct ServiceWorker {
    service: Arc<ServiceHandle>,
    widx: usize,
    pipeline: Pipeline,
    /// Worker-local metrics, published into the service-wide collector
    /// once per request (not once per counter update).
    sink: MetricsSink,
}

impl ServiceWorker {
    /// Extracts one note with the full per-request protection stack:
    /// wall-clock/sentence budget, watchdog cancellation, per-attempt
    /// panic isolation, and bounded retry for transient failures. Metrics
    /// (stage histograms, cache counters, error counts) accumulate
    /// lock-free into the worker's sink and fold into the service-wide
    /// snapshot once per request, so `GET /metrics` stays fresh while the
    /// shared lock is taken once here rather than per counter update.
    pub fn extract(&self, text: &str) -> Result<ExtractedRecord, EngineError> {
        let ctx = WorkerCtx {
            widx: self.widx,
            pipeline: &self.pipeline,
            max_record_millis: self.service.cfg.max_record_millis,
            max_record_sentences: self.service.cfg.max_record_sentences,
            retry: self.service.cfg.retry,
            watchdog: self.service.watchdog.as_deref(),
            quarantine: None,
            collector: &self.sink,
        };
        let result = extract_with_retry(&ctx, 0, text);
        self.sink.publish();
        result
    }

    /// The shared handle this worker feeds metrics into.
    pub fn service(&self) -> &Arc<ServiceHandle> {
        &self.service
    }
}

fn lock_thread(
    slot: &TrackedMutex<Option<JoinHandle<()>>>,
) -> cmr_sync::TrackedMutexGuard<'_, Option<JoinHandle<()>>> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

// A service handle is shared across the accept loop and every worker.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<ServiceHandle>();

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("jobs", &self.jobs())
            .field("uptime", &self.uptime())
            .finish_non_exhaustive()
    }
}

/// Batch compatibility check used by tests: a service worker must produce
/// byte-identical output to the batch engine for the same input.
#[doc(hidden)]
pub fn _batch_reference(text: &str) -> Result<ExtractedRecord, EngineError> {
    let engine = Engine::new(
        EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        },
        Schema::paper(),
        Ontology::full(),
    );
    engine.extract_batch(&[text]).items.remove(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use cmr_corpus::APPENDIX_RECORD;

    fn handle(cfg: EngineConfig) -> Arc<ServiceHandle> {
        ServiceHandle::new(cfg, Schema::paper(), Ontology::full()).expect("clean assets")
    }

    #[test]
    fn service_worker_matches_batch_engine_output() {
        let svc = handle(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        });
        let worker = svc.worker(0);
        let got = worker.extract(APPENDIX_RECORD).expect("extracts");
        let want = _batch_reference(APPENDIX_RECORD).expect("extracts");
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&want).unwrap()
        );
    }

    #[test]
    fn metrics_accumulate_across_requests_and_cache_stays_warm() {
        let svc = handle(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let worker = svc.worker(0);
        worker.extract(APPENDIX_RECORD).expect("extracts");
        let cold = svc.metrics();
        assert_eq!(cold.records, 1);
        assert!(cold.parse_cache.misses > 0, "first request parses fresh");

        // A second worker on the same note: every sentence shape must come
        // from the shared cache — the whole point of a resident process.
        let worker2 = svc.worker(1);
        worker2.extract(APPENDIX_RECORD).expect("extracts");
        let warm = svc.metrics();
        assert_eq!(warm.records, 2);
        assert_eq!(
            warm.parse_cache.misses, cold.parse_cache.misses,
            "second worker re-parsed shapes the shared cache already holds"
        );
        assert!(warm.parse_cache.hits > cold.parse_cache.hits);
    }

    #[test]
    fn latency_samples_land_in_their_histograms() {
        let svc = handle(EngineConfig::default());
        svc.record_latency(LatencyKind::Extract, 1_000_000);
        svc.record_latency(LatencyKind::Batch, 2_000_000);
        svc.record_latency(LatencyKind::BatchRecord, 500);
        svc.record_latency(LatencyKind::BatchRecord, 700);
        let m = svc.metrics();
        assert_eq!(m.service.extract.count, 1);
        assert_eq!(m.service.batch.count, 1);
        assert_eq!(m.service.batch_record.count, 2);
        assert_eq!(m.service.requests(), 2);
    }

    #[test]
    fn sentence_budget_fails_request_not_service() {
        let svc = handle(EngineConfig {
            jobs: 1,
            max_record_sentences: Some(1),
            ..EngineConfig::default()
        });
        let worker = svc.worker(0);
        let err = worker.extract(APPENDIX_RECORD).unwrap_err();
        assert!(matches!(err, EngineError::Budget { .. }), "{err:?}");
        // The worker is still usable afterwards.
        let m = svc.metrics();
        assert_eq!(m.errors.budget, 1);
        assert_eq!(m.records, 0);
    }

    #[test]
    fn watchdog_stops_cleanly_on_drop() {
        let svc = handle(EngineConfig {
            jobs: 1,
            max_record_millis: Some(5_000),
            ..EngineConfig::default()
        });
        let worker = svc.worker(0);
        worker
            .extract(APPENDIX_RECORD)
            .expect("well under deadline");
        svc.stop();
        svc.stop(); // idempotent
        drop(worker);
        drop(svc); // Drop::drop sees the stopped flag and returns
    }
}
