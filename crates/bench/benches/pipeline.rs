//! End-to-end pipeline and corpus generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    let pipeline = cmr_core::Pipeline::with_default_schema();
    let record = cmr_corpus::APPENDIX_RECORD;
    g.bench_function("extract_appendix_record", |b| {
        b.iter(|| black_box(pipeline.extract(black_box(record))))
    });
    let corpus = cmr_corpus::CorpusBuilder::new().records(10).build();
    g.bench_function("extract_10_records", |b| {
        b.iter(|| {
            for r in &corpus.records {
                black_box(pipeline.extract(black_box(&r.text)));
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("corpus");
    g.bench_function("generate_50_records", |b| {
        b.iter(|| black_box(cmr_corpus::CorpusBuilder::new().build()))
    });
    g.bench_function("parse_record_sections", |b| {
        b.iter(|| black_box(cmr_text::Record::parse(black_box(record))))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
