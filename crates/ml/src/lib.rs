//! # cmr-ml — ID3 decision trees and cross-validation
//!
//! The machine-learning substrate of the ICDE 2005 system: the authors
//! "implemented the ID3-based decision tree algorithm" themselves (§4) and
//! evaluate it with ten repetitions of shuffled five-fold cross-validation
//! (§5). This crate provides the same: boolean-feature datasets, ID3
//! training with information gain, and the repeated-CV harness.
//!
//! ```
//! use cmr_ml::{DatasetBuilder, Id3Tree, Id3Params};
//!
//! let mut b = DatasetBuilder::new();
//! b.add(&["quit".into()], "former");
//! b.add(&["never".into()], "never");
//! b.add(&["currently".into()], "current");
//! let data = b.build();
//! let tree = Id3Tree::train(&data, Id3Params::default());
//! assert!(tree.features_used().len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod bayes;
mod cv;
mod dataset;
mod id3;

pub use bayes::NaiveBayes;
pub use cv::{Classifier, CrossValidation, CvResult};
pub use dataset::{Dataset, DatasetBuilder, Instance};
pub use id3::{
    entropy, gain_ratio, gini, gini_gain, information_gain, split_quality, Id3Params, Id3Tree,
    SplitCriterion, TreeNode,
};
