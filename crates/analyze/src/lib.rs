//! # cmr-analyze — static analysis for the extraction knowledge base
//!
//! The whole pipeline is driven by hand-authored rule assets: the
//! link-grammar dictionary, the synonym/inflection lexicon, the embedded
//! ontology, the numeric field specs with their fallback patterns, and the
//! ID3 feature configuration. Nothing checks those assets until a sentence
//! happens to exercise a broken rule at runtime — exactly the failure mode
//! NILE (Yu & Cai 2013) calls out for clinical IE dictionaries.
//!
//! This crate is a compiler-front-end-style diagnostics engine over those
//! assets: [`analyze_assets`] runs an ordered battery of checks, each
//! emitting structured [`Diagnostic`]s with a stable code (`CMR-D012`), a
//! severity, the asset path and span, a message and a suggested fix. The
//! battery is exposed three ways:
//!
//! * the `cmr lint` CLI subcommand (human, `--format json`, `--format
//!   sarif`, `--deny warnings` exit codes);
//! * a library API the batch engine calls at startup (fail fast on
//!   `Error`-severity findings, count warnings into `EngineMetrics`);
//! * a CI job that runs `cmr lint --deny warnings` on the committed assets.
//!
//! ```
//! use cmr_analyze::{analyze_assets, Severity};
//!
//! let report = analyze_assets();
//! // The committed assets must be clean at Warning-or-worse; Notes are
//! // advisory (deliberate-but-suspicious patterns, documented per check).
//! assert_eq!(report.errors() + report.warnings(), 0, "{}", report.render_human(false));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod checks;
mod render;

use serde::{Deserialize, Serialize, Value};

/// How bad a finding is.
///
/// `Error` findings describe assets that will panic or misbehave at
/// runtime; the engine refuses to start on them. `Warning` findings are
/// asset bugs (dead rules, shadowed entries) that silently weaken
/// extraction; `cmr lint --deny warnings` turns them into a failing exit.
/// `Note` findings flag deliberate-but-suspicious patterns and never fail
/// a build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: suspicious but possibly deliberate.
    Note,
    /// An asset bug that silently weakens extraction.
    Warning,
    /// An asset defect that breaks extraction at runtime.
    Error,
}

impl Severity {
    /// Lower-case label used in every output format.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::String(self.label().to_string())
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable diagnostic code (`"CMR-D010"`). Codes are never reused.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Workspace-relative path of the asset's source file.
    pub asset: &'static str,
    /// Where in the asset: table name, entry, class, or tree path.
    pub span: String,
    /// Human-readable statement of the defect.
    pub message: String,
    /// Suggested fix, when one is mechanical enough to state.
    pub fix: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a suggested fix.
    pub fn new(
        code: &'static str,
        severity: Severity,
        asset: &'static str,
        span: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            asset,
            span: span.into(),
            message: message.into(),
            fix: None,
        }
    }

    /// Attaches a suggested fix.
    pub fn with_fix(mut self, fix: impl Into<String>) -> Diagnostic {
        self.fix = Some(fix.into());
        self
    }
}

/// A completed analysis run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// All findings, in deterministic order (asset, code, span, message).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report from raw findings, sorting them into the canonical
    /// deterministic order.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Report {
        diagnostics.sort_by(|a, b| {
            (a.asset, a.code, &a.span, &a.message).cmp(&(b.asset, b.code, &b.span, &b.message))
        });
        Report { diagnostics }
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of `Error` findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warning` findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of `Note` findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// True when the report has no finding at `deny` severity or worse.
    pub fn passes(&self, deny: Severity) -> bool {
        self.diagnostics.iter().all(|d| d.severity < deny)
    }

    /// Deterministic JSON rendering: the same assets always produce a
    /// byte-identical report (pinned by proptest).
    pub fn to_json(&self) -> String {
        render::json(self)
    }

    /// SARIF 2.1.0 rendering for code-scanning UIs.
    pub fn to_sarif(&self) -> String {
        render::sarif(self)
    }

    /// Human-readable rendering, optionally ANSI-colored.
    pub fn render_human(&self, color: bool) -> String {
        render::human(self, color)
    }

    /// Severity rollup, for embedding in machine-readable status surfaces
    /// (the `cmr serve` health endpoint reports this next to readiness).
    pub fn summary(&self) -> Summary {
        Summary {
            errors: self.errors(),
            warnings: self.warnings(),
            notes: self.notes(),
        }
    }
}

/// A serializable severity rollup of a [`Report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Error-severity findings (the engine refuses to start over these).
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Note-severity findings (advisory).
    pub notes: usize,
}

/// Metadata for one check, used for SARIF rule tables and `cmr lint
/// --explain`-style docs.
#[derive(Debug, Clone, Copy)]
pub struct CheckInfo {
    /// The stable code.
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description of what the check finds.
    pub summary: &'static str,
}

/// Every diagnostic code this crate can emit, in code order.
pub fn registry() -> &'static [CheckInfo] {
    &[
        CheckInfo {
            code: "CMR-D001",
            name: "dict-expr-invalid",
            summary: "a dictionary class expression fails to parse or compile",
        },
        CheckInfo {
            code: "CMR-D002",
            name: "dict-unmated-connector",
            summary: "a connector has no possible mate anywhere in the dictionary",
        },
        CheckInfo {
            code: "CMR-D003",
            name: "dict-shadowed-disjunct",
            summary: "two disjuncts of a class normalize to the same shape (the costlier is dead)",
        },
        CheckInfo {
            code: "CMR-D004",
            name: "dict-undefined-class",
            summary: "a word or tag row references a class the dictionary never defines",
        },
        CheckInfo {
            code: "CMR-D005",
            name: "dict-duplicate-row",
            summary: "a dictionary table defines the same key twice (the later row shadows)",
        },
        CheckInfo {
            code: "CMR-D006",
            name: "dict-empty-class",
            summary: "a class compiles to zero disjuncts, so its words can never link",
        },
        CheckInfo {
            code: "CMR-D007",
            name: "dict-unreachable-class",
            summary: "a class no word row, tag row, or wall ever routes to",
        },
        CheckInfo {
            code: "CMR-D010",
            name: "lexicon-duplicate-entry",
            summary: "a word list contains the same entry twice",
        },
        CheckInfo {
            code: "CMR-D011",
            name: "lexicon-cross-class-entry",
            summary: "a word appears in more than one part-of-speech list",
        },
        CheckInfo {
            code: "CMR-D012",
            name: "lexicon-irregular-conflict",
            summary: "irregular analysis and generation tables disagree about a form",
        },
        CheckInfo {
            code: "CMR-D013",
            name: "lexicon-inflection-roundtrip",
            summary: "a generated inflection re-tokenizes or lemmatizes differently than its base",
        },
        CheckInfo {
            code: "CMR-D014",
            name: "lexicon-abbrev-cycle",
            summary: "the abbreviation table has a duplicate key or an expansion cycle",
        },
        CheckInfo {
            code: "CMR-D020",
            name: "ontology-duplicate-cui",
            summary: "two concepts share a CUI",
        },
        CheckInfo {
            code: "CMR-D021",
            name: "ontology-surface-collision",
            summary: "two concepts share a normalized surface form (the later one is unreachable)",
        },
        CheckInfo {
            code: "CMR-D022",
            name: "ontology-dangling-cui",
            summary: "a predefined checklist references a CUI no concept defines",
        },
        CheckInfo {
            code: "CMR-D023",
            name: "ontology-empty-surface",
            summary: "a surface form normalizes to the empty string",
        },
        CheckInfo {
            code: "CMR-D030",
            name: "spec-empty-range",
            summary: "a numeric spec's valid range contains no values",
        },
        CheckInfo {
            code: "CMR-D031",
            name: "spec-overlapping-ranges",
            summary: "two same-kind specs in one section have overlapping ranges",
        },
        CheckInfo {
            code: "CMR-D032",
            name: "spec-untokenizable-phrase",
            summary: "a keyword phrase re-tokenizes into tokens the matcher can never see",
        },
        CheckInfo {
            code: "CMR-D033",
            name: "spec-dead-filler",
            summary: "a pattern-fallback filler does not survive tokenization, so it never fires",
        },
        CheckInfo {
            code: "CMR-D034",
            name: "spec-salvage-collision",
            summary: "two fields' keyword sets collide under the salvage OCR folding",
        },
        CheckInfo {
            code: "CMR-D035",
            name: "spec-shadowed-negation-trigger",
            summary:
                "a phrase-table entry contains a negation trigger, hiding it from scope detection",
        },
        CheckInfo {
            code: "CMR-D040",
            name: "ml-dead-branch",
            summary: "an ID3 path tests the same feature twice (one side is unreachable)",
        },
        CheckInfo {
            code: "CMR-D041",
            name: "ml-redundant-split",
            summary: "both children of an ID3 split are leaves with the same label",
        },
        CheckInfo {
            code: "CMR-D042",
            name: "ml-unknown-feature",
            summary: "a tree feature can never be produced by the configured feature extractor",
        },
        CheckInfo {
            code: "CMR-S001",
            name: "source-guard-across-io",
            summary: "a Mutex/RwLock guard is held across a channel send/recv or file/socket I/O",
        },
        CheckInfo {
            code: "CMR-S002",
            name: "source-unwrap-in-deny-crate",
            summary:
                "unwrap()/expect() outside #[cfg(test)] in a crate that denies clippy::unwrap_used",
        },
        CheckInfo {
            code: "CMR-S003",
            name: "source-alloc-in-signal-handler",
            summary: "allocation or panic-capable call inside an extern \"C\" signal-handler body",
        },
        CheckInfo {
            code: "CMR-S004",
            name: "source-panic-in-drop",
            summary: "panic-capable call inside an impl Drop body (panic-in-unwind aborts)",
        },
        CheckInfo {
            code: "CMR-S005",
            name: "source-untracked-lock",
            summary: "raw std::sync primitive constructed where the tracked wrappers are mandated",
        },
        CheckInfo {
            code: "CMR-S006",
            name: "source-unwrap-on-lock",
            summary: "lock().unwrap() propagates poisoning where the convention is recovery",
        },
        CheckInfo {
            code: "CMR-S007",
            name: "source-guard-dropped-immediately",
            summary: "let _ = …lock() drops the guard at once, leaving an empty critical section",
        },
        CheckInfo {
            code: "CMR-S008",
            name: "source-sleep-under-guard",
            summary: "thread::sleep while a lock guard is live stalls every waiter",
        },
        CheckInfo {
            code: "CMR-S100",
            name: "lock-order-inversion",
            summary:
                "runtime (lockcheck): two lock classes acquired in opposite orders on different paths",
        },
        CheckInfo {
            code: "CMR-S101",
            name: "lock-hazard-hold",
            summary: "runtime (lockcheck): a guard outlived the configured hazard hold threshold",
        },
        CheckInfo {
            code: "CMR-S102",
            name: "lock-recursive-class",
            summary: "runtime (lockcheck): one thread acquired the same lock class twice",
        },
    ]
}

/// Looks up a check by code.
pub fn check_info(code: &str) -> Option<&'static CheckInfo> {
    registry().iter().find(|c| c.code == code)
}

/// Runs the full ordered battery over every committed rule asset in the
/// workspace and returns the findings.
pub fn analyze_assets() -> Report {
    let mut out = Vec::new();
    checks::dict::check(&mut out);
    checks::lexicon::check(&mut out);
    checks::ontology::check(&mut out);
    checks::specs::check(&mut out);
    checks::ml::check(&mut out);
    Report::from_diagnostics(out)
}

/// Runs the source-level concurrency-soundness checks (`CMR-S0xx`) over
/// the workspace's own `.rs` files. Exposed as `cmr lint --code`; the
/// asset battery stays the default.
pub fn analyze_sources() -> Report {
    let files = checks::source::workspace_sources();
    let mut out = Vec::new();
    checks::source::check(&files, &mut out);
    Report::from_diagnostics(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_unique_and_sorted() {
        let codes: Vec<&str> = registry().iter().map(|c| c.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "registry must be unique and in code order");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_sorts_deterministically() {
        let a = Diagnostic::new("CMR-D999", Severity::Note, "b.rs", "s", "m");
        let b = Diagnostic::new("CMR-D998", Severity::Error, "a.rs", "s", "m");
        let r1 = Report::from_diagnostics(vec![a.clone(), b.clone()]);
        let r2 = Report::from_diagnostics(vec![b, a]);
        assert_eq!(r1, r2);
        assert_eq!(r1.diagnostics[0].asset, "a.rs");
    }

    #[test]
    fn passes_thresholds() {
        let r = Report::from_diagnostics(vec![Diagnostic::new(
            "CMR-D001",
            Severity::Warning,
            "x",
            "s",
            "m",
        )]);
        assert!(r.passes(Severity::Error));
        assert!(!r.passes(Severity::Warning));
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.errors() + r.notes(), 0);
    }
}
