//! Token types produced by the tokenizer.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The numeric value carried by a number token or number-word annotation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NumberValue {
    /// A plain integer, e.g. `84` or the word `seventeen`.
    Int(i64),
    /// A decimal, e.g. `98.3`.
    Float(f64),
    /// A slash-separated pair such as a blood pressure reading `144/90`
    /// (systolic/diastolic).
    Ratio(i64, i64),
}

impl NumberValue {
    /// The value as an `f64`; a ratio maps to its first component, which is
    /// what clinical comparisons against a single threshold use (systolic
    /// pressure is the leading component of `144/90`).
    pub fn as_f64(&self) -> f64 {
        match *self {
            NumberValue::Int(v) => v as f64,
            NumberValue::Float(v) => v,
            NumberValue::Ratio(a, _) => a as f64,
        }
    }

    /// True when this is a [`NumberValue::Ratio`].
    pub fn is_ratio(&self) -> bool {
        matches!(self, NumberValue::Ratio(..))
    }
}

impl fmt::Display for NumberValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NumberValue::Int(v) => write!(f, "{v}"),
            NumberValue::Float(v) => write!(f, "{v}"),
            NumberValue::Ratio(a, b) => write!(f, "{a}/{b}"),
        }
    }
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic word, possibly with internal hyphens or apostrophes
    /// (`50-year-old`, `doesn't`).
    Word,
    /// A digit-based number (`84`, `98.3`, `144/90`).
    Number(NumberValue),
    /// Sentence-internal or terminal punctuation (`,`, `.`, `:`).
    Punct,
    /// Any other symbol (`%`, `+`).
    Symbol,
}

impl TokenKind {
    /// True for [`TokenKind::Word`].
    pub fn is_word(&self) -> bool {
        matches!(self, TokenKind::Word)
    }

    /// True for [`TokenKind::Number`].
    pub fn is_number(&self) -> bool {
        matches!(self, TokenKind::Number(_))
    }
}

/// A single token: its text, source span and lexical kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// The token text exactly as it appears in the source.
    pub text: String,
    /// Byte span in the source string.
    pub span: Span,
    /// Lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Lower-cased token text. Tokenization preserves the original case; most
    /// downstream lookups (lexicon, ontology) are case-insensitive.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// The numeric value if this token is a number.
    pub fn number(&self) -> Option<NumberValue> {
        match self.kind {
            TokenKind::Number(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_value_as_f64() {
        assert_eq!(NumberValue::Int(84).as_f64(), 84.0);
        assert_eq!(NumberValue::Float(98.3).as_f64(), 98.3);
        assert_eq!(NumberValue::Ratio(144, 90).as_f64(), 144.0);
    }

    #[test]
    fn number_value_display() {
        assert_eq!(NumberValue::Ratio(144, 90).to_string(), "144/90");
        assert_eq!(NumberValue::Int(7).to_string(), "7");
        assert_eq!(NumberValue::Float(98.3).to_string(), "98.3");
    }

    #[test]
    fn kind_predicates() {
        assert!(TokenKind::Word.is_word());
        assert!(TokenKind::Number(NumberValue::Int(1)).is_number());
        assert!(!TokenKind::Punct.is_word());
        assert!(!TokenKind::Punct.is_number());
    }

    #[test]
    fn token_lower_and_number() {
        let t = Token {
            text: "Pressure".into(),
            span: Span::new(0, 8),
            kind: TokenKind::Word,
        };
        assert_eq!(t.lower(), "pressure");
        assert_eq!(t.number(), None);
        let n = Token {
            text: "84".into(),
            span: Span::new(0, 2),
            kind: TokenKind::Number(NumberValue::Int(84)),
        };
        assert_eq!(n.number(), Some(NumberValue::Int(84)));
    }
}
