//! Property tests: the extractors must be total, deterministic, and honest
//! about provenance on arbitrary input.

use cmr_core::{
    FeatureExtractor, FeatureOptions, FeatureSpec, MedicalTermExtractor, NumericExtractor,
    Pipeline, Schema,
};
use cmr_ontology::Ontology;
use proptest::prelude::*;

fn clinicalish() -> impl Strategy<Value = String> {
    let subj = prop::sample::select(vec!["She", "The patient", "Ms. Smith"]);
    let verb = prop::sample::select(vec!["is", "has", "denies", "reports", "underwent"]);
    let obj = prop::sample::select(vec![
        "a blood pressure of 140/90",
        "diabetes and hypertension",
        "a pulse of 84",
        "a cholecystectomy",
        "no complaints",
        "weight of 180 pounds",
        "menarche at age 12",
    ]);
    (subj, verb, obj).prop_map(|(s, v, o)| format!("{s} {v} {o}."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Numeric extraction never panics and every hit names a schema field.
    #[test]
    fn numeric_total_and_well_formed(s in clinicalish()) {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let ex = NumericExtractor::new();
        for hit in ex.extract_sentence(&s, &specs) {
            prop_assert!(schema.numeric_spec(&hit.field).is_some());
            let spec = schema.numeric_spec(&hit.field).unwrap();
            prop_assert!(spec.accepts(&hit.value), "{hit:?} violates its own spec");
        }
    }

    /// Numeric extraction is deterministic.
    #[test]
    fn numeric_deterministic(s in clinicalish()) {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let ex = NumericExtractor::new();
        prop_assert_eq!(ex.extract_sentence(&s, &specs), ex.extract_sentence(&s, &specs));
    }

    /// Term extraction: spans always slice back to the reported surface,
    /// and every hit's normalized surface resolves in the ontology.
    #[test]
    fn terms_spans_and_resolution(s in clinicalish()) {
        let ex = MedicalTermExtractor::new(Ontology::full());
        for hit in ex.extract(&s) {
            prop_assert_eq!(hit.span.slice(&s), hit.surface.as_str());
            let resolved = ex.ontology().lookup(&hit.surface).expect("hit resolves");
            prop_assert_eq!(resolved.cui, hit.concept.cui);
        }
    }

    /// Term extraction tolerates arbitrary ASCII garbage.
    #[test]
    fn terms_total_on_garbage(s in "[ -~]{0,120}") {
        let ex = MedicalTermExtractor::new(Ontology::full());
        let _ = ex.extract(&s);
    }

    /// Numeric extraction tolerates arbitrary ASCII garbage.
    #[test]
    fn numeric_total_on_garbage(s in "[ -~]{0,120}") {
        let schema = Schema::paper();
        let specs: Vec<&FeatureSpec> = schema.numeric.iter().collect();
        let _ = NumericExtractor::new().extract_sentence(&s, &specs);
    }

    /// Feature extraction is deterministic and yields no duplicates.
    #[test]
    fn features_deterministic_and_unique(s in clinicalish()) {
        let fx = FeatureExtractor::new(FeatureOptions::paper_smoking());
        let a = fx.extract(&s);
        let b = fx.extract(&s);
        prop_assert_eq!(&a, &b);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(a.len(), dedup.len());
    }

    /// The whole pipeline is total on arbitrary multi-line input.
    #[test]
    fn pipeline_total(s in "[ -~\n]{0,300}") {
        let pipeline = Pipeline::with_default_schema();
        let out = pipeline.extract(&s);
        // Methods map keys mirror numeric keys.
        for k in out.numeric.keys() {
            prop_assert!(out.numeric_methods.contains_key(k));
        }
    }
}
