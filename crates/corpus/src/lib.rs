//! # cmr-corpus — synthetic clinical consultation notes with gold labels
//!
//! The paper's evaluation corpus is 50 real dictated consultation notes
//! from a single clinician — protected health information that was never
//! released. This crate is the substitution (documented in DESIGN.md): a
//! seeded generator that emits notes in exactly the Appendix's
//! semi-structured format, with ground truth for every attribute in the
//! task schema and the paper's class distribution (45 of 50 records
//! document smoking: 5 former / 12 current / 28 never).
//!
//! The `style_variation` knob reproduces the "very consistent dictation
//! style" at 0 and stresses the paper's degradation conjecture above 0.
//!
//! ```
//! use cmr_corpus::CorpusBuilder;
//!
//! let corpus = CorpusBuilder::new().records(3).seed(42).build();
//! assert_eq!(corpus.records.len(), 3);
//! assert!(corpus.records[0].text.contains("Vitals:"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Corpus generation must never take down a batch run; failures are values.
#![deny(clippy::unwrap_used)]

mod appendix;
mod generator;
mod gold;
mod noise;
mod templates;

pub use appendix::APPENDIX_RECORD;
pub use generator::{Corpus, CorpusBuilder, CorpusPlan};
pub use gold::{AlcoholUse, BodyShape, GoldRecord, SmokingStatus};
pub use noise::{NoiseConfig, NoiseInjector};
pub use templates::join_list;
