//! The lemmatizer ("uninfected form" finder, in the paper's phrasing).
//!
//! Follows the WordNet *Morphy* design: exception tables first, then ordered
//! detachment rules per word class, validated against a known-lemma set when
//! possible so that `pounds → pound` but `gas` does not become `ga`.

use crate::irregular::{IRREGULAR_ADJS, IRREGULAR_NOUNS, IRREGULAR_VERBS};
use crate::words::{is_known_adjective, is_known_lemma, is_known_noun, is_known_verb};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Coarse word class used to select detachment rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordClass {
    /// Nouns.
    Noun,
    /// Verbs.
    Verb,
    /// Adjectives (and comparative/superlative adverbs).
    Adjective,
}

/// Suffix-detachment rules per class: `(suffix, replacement)`, tried in order.
const NOUN_RULES: &[(&str, &str)] = &[
    ("ches", "ch"),
    ("shes", "sh"),
    ("sses", "ss"),
    ("oses", "osis"),
    ("ases", "asis"),
    ("xes", "x"),
    ("zes", "z"),
    ("ies", "y"),
    ("ves", "f"),
    ("es", "e"),
    ("es", ""),
    ("s", ""),
];

const VERB_RULES: &[(&str, &str)] = &[
    ("ches", "ch"),
    ("shes", "sh"),
    ("sses", "ss"),
    ("ies", "y"),
    ("es", "e"),
    ("es", ""),
    ("s", ""),
    ("ied", "y"),
    ("ed", "e"),
    ("ed", ""),
    ("ing", "e"),
    ("ing", ""),
];

const ADJ_RULES: &[(&str, &str)] = &[
    ("ier", "y"),
    ("iest", "y"),
    ("er", ""),
    ("est", ""),
    ("er", "e"),
    ("est", "e"),
];

/// A lemmatizer with per-class exception tables and detachment rules.
///
/// Construction is cheap (tables are interned in a process-wide
/// [`OnceLock`]), so call sites may freely create one on demand.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lemmatizer {
    _private: (),
}

struct Tables {
    verbs: HashMap<&'static str, &'static str>,
    nouns: HashMap<&'static str, &'static str>,
    adjs: HashMap<&'static str, &'static str>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| Tables {
        verbs: IRREGULAR_VERBS.iter().copied().collect(),
        nouns: IRREGULAR_NOUNS.iter().copied().collect(),
        adjs: IRREGULAR_ADJS.iter().copied().collect(),
    })
}

impl Lemmatizer {
    /// Creates a lemmatizer.
    pub fn new() -> Self {
        Lemmatizer::default()
    }

    /// Lemma of `word` under a specific word class. The input may be any
    /// case; the output is lower-case.
    pub fn lemma(&self, word: &str, class: WordClass) -> String {
        let w = word.to_lowercase();
        let t = tables();
        let (exceptions, rules, validate): (_, _, fn(&str) -> bool) = match class {
            WordClass::Noun => (&t.nouns, NOUN_RULES, is_known_noun as fn(&str) -> bool),
            WordClass::Verb => (&t.verbs, VERB_RULES, is_known_verb as fn(&str) -> bool),
            WordClass::Adjective => (&t.adjs, ADJ_RULES, is_known_adjective as fn(&str) -> bool),
        };
        if let Some(lemma) = exceptions.get(w.as_str()) {
            return (*lemma).to_string();
        }
        // A word that is itself a known lemma *of this class* needs no
        // detachment; this stops "mass" → "mas" and "diabetes" → "diabete"
        // without letting a noun reading block a verb one ("smoking" is a
        // noun lemma but must still reduce to "smoke" as a verb).
        if validate(&w) {
            return w;
        }
        let mut first_plausible: Option<String> = None;
        for (suffix, replacement) in rules {
            // Bare "s" must not strip from -ss/-us/-is endings
            // ("mass", "uterus", "arthritis" are singular).
            if *suffix == "s" && (w.ends_with("ss") || w.ends_with("us") || w.ends_with("is")) {
                continue;
            }
            if let Some(stem) = w.strip_suffix(suffix) {
                if stem.len() < 2 {
                    continue;
                }
                let candidate = format!("{stem}{replacement}");
                if validate(&candidate) || is_known_lemma(&candidate) {
                    return candidate;
                }
                // Doubled-consonant undoubling: "stopped" → "stopp" → "stop".
                if replacement.is_empty() && stem.len() >= 3 {
                    let b = stem.as_bytes();
                    if b[b.len() - 1] == b[b.len() - 2] && !is_vowel(b[b.len() - 1] as char) {
                        let undoubled = &stem[..stem.len() - 1];
                        if validate(undoubled) || is_known_lemma(undoubled) {
                            return undoubled.to_string();
                        }
                        if first_plausible.is_none() && plausible(undoubled) {
                            first_plausible = Some(undoubled.to_string());
                        }
                    }
                }
                if first_plausible.is_none() && plausible(&candidate) {
                    first_plausible = Some(candidate);
                }
            }
        }
        first_plausible.unwrap_or(w)
    }

    /// Lemma when the class is unknown: tries verb, then noun, then
    /// adjective exceptions; then the noun rules (clinical text is mostly
    /// nominal), falling back to the word itself.
    pub fn lemma_any(&self, word: &str) -> String {
        let w = word.to_lowercase();
        let t = tables();
        if let Some(lemma) = t.verbs.get(w.as_str()) {
            return (*lemma).to_string();
        }
        if let Some(lemma) = t.nouns.get(w.as_str()) {
            return (*lemma).to_string();
        }
        if let Some(lemma) = t.adjs.get(w.as_str()) {
            return (*lemma).to_string();
        }
        if is_known_lemma(&w) {
            return w;
        }
        // Prefer a verb reading for -ing/-ed forms, noun reading otherwise.
        if w.ends_with("ing") || w.ends_with("ed") {
            let v = self.lemma(&w, WordClass::Verb);
            if v != w {
                return v;
            }
        }
        let n = self.lemma(&w, WordClass::Noun);
        if n != w {
            return n;
        }
        self.lemma(&w, WordClass::Adjective)
    }
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u')
}

/// A stem is plausible when it still looks like an English word: length ≥ 3
/// and contains a vowel.
fn plausible(stem: &str) -> bool {
    stem.len() >= 3 && stem.chars().any(is_vowel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lem() -> Lemmatizer {
        Lemmatizer::new()
    }

    #[test]
    fn regular_noun_plurals() {
        assert_eq!(lem().lemma("pounds", WordClass::Noun), "pound");
        assert_eq!(lem().lemma("pressures", WordClass::Noun), "pressure");
        assert_eq!(lem().lemma("masses", WordClass::Noun), "mass");
        assert_eq!(lem().lemma("allergies", WordClass::Noun), "allergy");
        assert_eq!(lem().lemma("branches", WordClass::Noun), "branch");
    }

    #[test]
    fn irregular_nouns() {
        assert_eq!(lem().lemma("women", WordClass::Noun), "woman");
        assert_eq!(lem().lemma("diagnoses", WordClass::Noun), "diagnosis");
        assert_eq!(lem().lemma("metastases", WordClass::Noun), "metastasis");
        assert_eq!(lem().lemma("vertebrae", WordClass::Noun), "vertebra");
    }

    #[test]
    fn non_plural_nouns_unchanged() {
        assert_eq!(lem().lemma("gas", WordClass::Noun), "gas");
        assert_eq!(lem().lemma("pressure", WordClass::Noun), "pressure");
        assert_eq!(lem().lemma("history", WordClass::Noun), "history");
    }

    #[test]
    fn regular_verbs() {
        assert_eq!(lem().lemma("denies", WordClass::Verb), "deny");
        assert_eq!(lem().lemma("denied", WordClass::Verb), "deny");
        assert_eq!(lem().lemma("smoked", WordClass::Verb), "smoke");
        assert_eq!(lem().lemma("smoking", WordClass::Verb), "smoke");
        assert_eq!(lem().lemma("reveals", WordClass::Verb), "reveal");
        assert_eq!(lem().lemma("stopped", WordClass::Verb), "stop");
    }

    #[test]
    fn irregular_verbs() {
        assert_eq!(lem().lemma("is", WordClass::Verb), "be");
        assert_eq!(lem().lemma("was", WordClass::Verb), "be");
        assert_eq!(lem().lemma("underwent", WordClass::Verb), "undergo");
        assert_eq!(lem().lemma("quit", WordClass::Verb), "quit");
        assert_eq!(lem().lemma("had", WordClass::Verb), "have");
    }

    #[test]
    fn paper_example_deny_family() {
        // §3.3: "denies", "denied" and "deny" must map to one feature.
        let l = lem();
        let forms = ["denies", "denied", "deny"];
        let lemmas: Vec<_> = forms.iter().map(|f| l.lemma(f, WordClass::Verb)).collect();
        assert!(lemmas.iter().all(|x| x == "deny"), "{lemmas:?}");
    }

    #[test]
    fn adjectives() {
        assert_eq!(lem().lemma("larger", WordClass::Adjective), "large");
        assert_eq!(lem().lemma("heaviest", WordClass::Adjective), "heavy");
        assert_eq!(lem().lemma("better", WordClass::Adjective), "good");
        assert_eq!(
            lem().lemma("overweight", WordClass::Adjective),
            "overweight"
        );
    }

    #[test]
    fn lemma_any_prefers_sensible_class() {
        assert_eq!(lem().lemma_any("smoked"), "smoke");
        assert_eq!(lem().lemma_any("pounds"), "pound");
        assert_eq!(lem().lemma_any("women"), "woman");
        assert_eq!(lem().lemma_any("is"), "be");
        assert_eq!(lem().lemma_any("pressure"), "pressure");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(lem().lemma("Pounds", WordClass::Noun), "pound");
        assert_eq!(lem().lemma("SMOKED", WordClass::Verb), "smoke");
    }

    #[test]
    fn short_words_not_mangled() {
        assert_eq!(lem().lemma("as", WordClass::Noun), "as");
        assert_eq!(lem().lemma("is", WordClass::Noun), "is");
        assert_eq!(lem().lemma("us", WordClass::Noun), "us");
    }
}
