//! Precision and recall, with the paper's pooled multi-value formulas.
//!
//! §5: "Precision is defined as the proportion of correctly extracted
//! instances of those extracted, while recall is the proportion of correctly
//! extracted instances of total instances." For multi-valued attributes the
//! paper pools per-subject counts:
//!
//! ```text
//! P = Σᵢ ETrueᵢ / Σᵢ ETotalᵢ       R = Σᵢ ETrueᵢ / Σᵢ TInstᵢ
//! ```

/// Simple counting precision/recall accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrecisionRecall {
    /// Correctly extracted instances (`ETrue`).
    pub true_positives: usize,
    /// Extracted but wrong (so `extracted = tp + fp`, the paper's `ETotal`).
    pub false_positives: usize,
    /// Present in gold but not extracted (`total = tp + fn`, `TInst`).
    pub false_negatives: usize,
}

impl PrecisionRecall {
    /// An empty accumulator.
    pub fn new() -> PrecisionRecall {
        PrecisionRecall::default()
    }

    /// Records one comparison of an extracted set against a gold set.
    pub fn add_sets<T: PartialEq>(&mut self, extracted: &[T], gold: &[T]) {
        let tp = extracted.iter().filter(|e| gold.contains(e)).count();
        self.true_positives += tp;
        self.false_positives += extracted.len() - tp;
        self.false_negatives += gold.iter().filter(|g| !extracted.contains(g)).count();
    }

    /// Records a single-valued comparison (`Option` on both sides).
    pub fn add_optional<T: PartialEq>(&mut self, extracted: Option<&T>, gold: Option<&T>) {
        match (extracted, gold) {
            (Some(e), Some(g)) if e == g => self.true_positives += 1,
            (Some(_), Some(_)) => {
                self.false_positives += 1;
                self.false_negatives += 1;
            }
            (Some(_), None) => self.false_positives += 1,
            (None, Some(_)) => self.false_negatives += 1,
            (None, None) => {}
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PrecisionRecall) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }

    /// `ETotal`: everything extracted.
    pub fn extracted(&self) -> usize {
        self.true_positives + self.false_positives
    }

    /// `TInst`: everything in the gold standard.
    pub fn gold_total(&self) -> usize {
        self.true_positives + self.false_negatives
    }

    /// Precision; 1.0 when nothing was extracted (vacuous).
    pub fn precision(&self) -> f64 {
        if self.extracted() == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.extracted() as f64
        }
    }

    /// Recall; 1.0 when the gold standard is empty (vacuous).
    pub fn recall(&self) -> f64 {
        if self.gold_total() == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.gold_total() as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Pooled multi-value score over subjects, keeping the per-subject counts
/// the paper's formulas name (`ETrueᵢ`, `ETotalᵢ`, `TInstᵢ`).
#[derive(Debug, Clone, Default)]
pub struct MultiValueScore {
    per_subject: Vec<PrecisionRecall>,
}

impl MultiValueScore {
    /// An empty score.
    pub fn new() -> MultiValueScore {
        MultiValueScore::default()
    }

    /// Adds one subject's extracted vs. gold term sets.
    pub fn add_subject<T: PartialEq>(&mut self, extracted: &[T], gold: &[T]) {
        let mut pr = PrecisionRecall::new();
        pr.add_sets(extracted, gold);
        self.per_subject.push(pr);
    }

    /// Number of subjects recorded.
    pub fn subjects(&self) -> usize {
        self.per_subject.len()
    }

    /// Counts for one subject, if in range.
    pub fn subject_counts(&self, i: usize) -> Option<PrecisionRecall> {
        self.per_subject.get(i).copied()
    }

    /// Pooled counts: `Σ ETrue`, `Σ ETotal`, `Σ TInst`.
    pub fn pooled(&self) -> PrecisionRecall {
        let mut total = PrecisionRecall::new();
        for pr in &self.per_subject {
            total.merge(pr);
        }
        total
    }

    /// Pooled precision (the paper's `P = Σ ETrueᵢ / Σ ETotalᵢ`).
    pub fn precision(&self) -> f64 {
        self.pooled().precision()
    }

    /// Pooled recall (the paper's `R = Σ ETrueᵢ / Σ TInstᵢ`).
    pub fn recall(&self) -> f64 {
        self.pooled().recall()
    }

    /// Per-subject precision values (`Pᵢ`).
    pub fn per_subject_precision(&self) -> Vec<f64> {
        self.per_subject
            .iter()
            .map(PrecisionRecall::precision)
            .collect()
    }

    /// Per-subject recall values (`Rᵢ`).
    pub fn per_subject_recall(&self) -> Vec<f64> {
        self.per_subject
            .iter()
            .map(PrecisionRecall::recall)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_comparison() {
        let mut pr = PrecisionRecall::new();
        pr.add_sets(&["a", "b", "x"], &["a", "b", "c"]);
        assert_eq!(pr.true_positives, 2);
        assert_eq!(pr.false_positives, 1);
        assert_eq!(pr.false_negatives, 1);
        assert!((pr.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn optional_comparison() {
        let mut pr = PrecisionRecall::new();
        pr.add_optional(Some(&5), Some(&5));
        pr.add_optional(Some(&4), Some(&5));
        pr.add_optional(Some(&1), None);
        pr.add_optional(None, Some(&2));
        pr.add_optional(None::<&i32>, None);
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 2);
        assert_eq!(pr.false_negatives, 2);
    }

    #[test]
    fn vacuous_cases() {
        let pr = PrecisionRecall::new();
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
    }

    #[test]
    fn perfect_extraction() {
        let mut pr = PrecisionRecall::new();
        pr.add_sets(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn pooled_formulas_match_paper() {
        // Two subjects: (2 true of 3 extracted, 4 gold) and (1 of 1, 1).
        let mut mv = MultiValueScore::new();
        mv.add_subject(&["a", "b", "x"], &["a", "b", "c", "d"]);
        mv.add_subject(&["e"], &["e"]);
        // P = (2+1)/(3+1), R = (2+1)/(4+1)
        assert!((mv.precision() - 3.0 / 4.0).abs() < 1e-12);
        assert!((mv.recall() - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(mv.subjects(), 2);
    }

    #[test]
    fn pooled_differs_from_macro_average() {
        let mut mv = MultiValueScore::new();
        mv.add_subject(&["a"], &["a"]); // P=1
        mv.add_subject(&["x", "y", "z", "w"], &["a", "b", "c", "d"]); // P=0
        let macro_avg = mv.per_subject_precision().iter().sum::<f64>() / mv.subjects() as f64;
        assert!((macro_avg - 0.5).abs() < 1e-12);
        assert!((mv.precision() - 0.2).abs() < 1e-12, "pooled = 1/5");
    }

    #[test]
    fn f1_zero_when_nothing_right() {
        let mut pr = PrecisionRecall::new();
        pr.add_sets(&["x"], &["y"]);
        assert_eq!(pr.f1(), 0.0);
    }
}
