//! A deterministic, order-preserving scoped worker pool.
//!
//! The shape is a classic fan-out/fan-in over bounded channels:
//!
//! ```text
//! inputs ──feeder──▶ sync_channel(queue_depth) ──▶ N workers ──▶
//!          sync_channel(queue_depth + jobs) ──consumer──▶ reorder ──▶ sink
//! ```
//!
//! * **Backpressure** — both channels are bounded, so a slow sink stalls
//!   the workers and a slow feeder idles them; memory stays O(queue depth),
//!   never O(corpus).
//! * **Determinism** — every input is tagged with its index; the consumer
//!   holds out-of-order results in a reorder buffer (bounded by the number
//!   of items in flight) and emits strictly in input order, so the output
//!   sequence is identical for any worker count.
//! * **Worker-local state** — each worker builds its own state *inside its
//!   thread* via `make_worker`, which is how `!Send` state (the pipeline's
//!   link-parser cache) rides a thread pool.
//! * **Fault isolation** — a panicking work item is caught with
//!   [`std::panic::catch_unwind`] and surfaced through `on_panic` as an
//!   ordinary per-item error; the batch keeps going. Under `fail_fast` the
//!   first error flips a stop flag: the feeder stops feeding and workers
//!   drain remaining queued items through `on_abort` without processing
//!   them, so every fed index still produces exactly one output.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};

/// Pool shape parameters (already resolved: `jobs >= 1`).
pub(crate) struct PoolConfig {
    /// Worker threads.
    pub jobs: usize,
    /// Input-channel bound.
    pub queue_depth: usize,
    /// Stop feeding after the first error.
    pub fail_fast: bool,
    /// External graceful-shutdown flag (SIGINT/SIGTERM): when raised, the
    /// feeder stops feeding new records but everything already fed drains
    /// through the workers and the sink normally — unlike `fail_fast`,
    /// queued items are *processed*, not aborted, so a journal written from
    /// the sink stays a clean prefix of the run.
    pub shutdown: Option<Arc<AtomicBool>>,
}

/// Runs `inputs` through `jobs` workers, invoking `sink(index, result)`
/// strictly in input order. See the module docs for the contract.
pub(crate) fn run_ordered<In, Out, E, It, MkW, W, P, A, S>(
    inputs: It,
    cfg: PoolConfig,
    make_worker: MkW,
    on_panic: P,
    on_abort: A,
    mut sink: S,
) where
    In: Send,
    Out: Send,
    E: Send,
    It: Iterator<Item = In> + Send,
    MkW: Fn(usize) -> W + Sync,
    W: FnMut(usize, In) -> Result<Out, E>,
    P: Fn(String) -> E + Sync,
    A: Fn() -> E + Sync,
    S: FnMut(usize, Result<Out, E>),
{
    assert!(cfg.jobs >= 1, "pool needs at least one worker");
    let fail_fast = cfg.fail_fast;
    let queue_depth = cfg.queue_depth.max(1);
    let stop = AtomicBool::new(false);
    let (in_tx, in_rx) = sync_channel::<(usize, In)>(queue_depth);
    let in_rx = Arc::new(Mutex::new(in_rx));
    let (out_tx, out_rx) = sync_channel::<(usize, Result<Out, E>)>(queue_depth + cfg.jobs);

    std::thread::scope(|scope| {
        // Feeder: enumerate inputs into the bounded channel until done,
        // stopped, or asked to shut down. Dropping `in_tx` is the
        // end-of-input signal.
        let stop_ref = &stop;
        let shutdown_ref = cfg.shutdown.as_deref();
        scope.spawn(move || {
            for item in inputs.enumerate() {
                if stop_ref.load(Ordering::Relaxed)
                    || shutdown_ref.is_some_and(|f| f.load(Ordering::Relaxed))
                    || in_tx.send(item).is_err()
                {
                    break;
                }
            }
        });

        for widx in 0..cfg.jobs {
            let in_rx = Arc::clone(&in_rx);
            let out_tx = out_tx.clone();
            let (make_worker, on_panic, on_abort) = (&make_worker, &on_panic, &on_abort);
            scope.spawn(move || {
                let mut work = make_worker(widx);
                loop {
                    // Lock only for the blocking recv: whoever holds the
                    // lock takes the next item, then releases before
                    // processing it. Worker panics are caught below around
                    // `work`, never while this lock is held, but recover
                    // from poisoning anyway — the channel receiver has no
                    // state a mid-recv unwind could corrupt, and dying here
                    // would strand the remaining queued records.
                    let msg = in_rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .recv();
                    let Ok((idx, item)) = msg else { break };
                    let result = if stop_ref.load(Ordering::Relaxed) {
                        Err(on_abort())
                    } else {
                        match catch_unwind(AssertUnwindSafe(|| work(idx, item))) {
                            Ok(r) => r,
                            Err(payload) => Err(on_panic(panic_message(payload.as_ref()))),
                        }
                    };
                    if fail_fast && result.is_err() {
                        stop_ref.store(true, Ordering::Relaxed);
                    }
                    if out_tx.send((idx, result)).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold the only remaining senders; when the last one
        // exits, recv below disconnects and the consumer loop ends.
        drop(out_tx);

        // Consumer (this thread): reorder and emit in input order. The
        // buffer holds only out-of-order items in flight, bounded by
        // queue_depth + jobs + the output-channel capacity.
        let mut buffer: BTreeMap<usize, Result<Out, E>> = BTreeMap::new();
        let mut next_emit = 0usize;
        while let Ok((idx, result)) = out_rx.recv() {
            buffer.insert(idx, result);
            while let Some(result) = buffer.remove(&next_emit) {
                sink(next_emit, result);
                next_emit += 1;
            }
        }
        debug_assert!(buffer.is_empty(), "gap in emitted indices");
    });
}

/// Renders a panic payload the way the default hook does.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg(jobs: usize, fail_fast: bool) -> PoolConfig {
        PoolConfig {
            jobs,
            queue_depth: 4,
            fail_fast,
            shutdown: None,
        }
    }

    /// Runs the doubling pool and returns the emitted (index, result) list.
    fn double_all(jobs: usize, n: usize) -> Vec<(usize, Result<usize, String>)> {
        let mut seen = Vec::new();
        run_ordered(
            0..n,
            cfg(jobs, false),
            |_w| |_i, x: usize| Ok::<usize, String>(x * 2),
            |m| m,
            || "aborted".to_string(),
            |idx, r| seen.push((idx, r)),
        );
        seen
    }

    #[test]
    fn emits_in_order_any_worker_count() {
        for jobs in [1, 2, 4, 7] {
            let seen = double_all(jobs, 100);
            assert_eq!(seen.len(), 100, "jobs={jobs}");
            for (i, (idx, r)) in seen.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(r.as_ref().unwrap(), &(i * 2));
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(double_all(3, 0).is_empty());
    }

    #[test]
    fn panics_become_item_errors() {
        let mut results = Vec::new();
        run_ordered(
            0..6,
            cfg(3, false),
            |_w| {
                |_i, x: usize| {
                    if x == 3 {
                        panic!("boom at {x}");
                    }
                    Ok::<usize, String>(x)
                }
            },
            |m| format!("panic: {m}"),
            || "aborted".to_string(),
            |_, r| results.push(r),
        );
        assert_eq!(results.len(), 6, "panicking item still yields an output");
        assert_eq!(results[3].as_ref().unwrap_err(), "panic: boom at 3");
        assert_eq!(results[5], Ok(5));
    }

    #[test]
    fn fail_fast_aborts_tail() {
        // One worker failing on the very first item makes the race-free
        // worst case: while the worker handles item 0, backpressure caps
        // what the feeder can get ahead by (queue depth + in-flight sends),
        // so the stop flag provably lands before the feeder finishes.
        let mut results = Vec::new();
        run_ordered(
            0..200,
            cfg(1, true),
            |_w| {
                |_i, x: usize| {
                    if x == 0 {
                        Err("bad record".to_string())
                    } else {
                        Ok::<usize, String>(x)
                    }
                }
            },
            |m| m,
            || "aborted".to_string(),
            |_, r| results.push(r),
        );
        // Every fed index yields exactly one output; the tail is aborted
        // rather than processed; feeding stopped early.
        assert_eq!(results[0].as_ref().unwrap_err(), "bad record");
        assert!(
            results.len() < 200,
            "feeder ran to completion despite fail_fast ({} results)",
            results.len()
        );
        for r in &results[1..] {
            assert!(
                matches!(r, Err(e) if e == "aborted"),
                "tail item processed: {r:?}"
            );
        }
    }

    #[test]
    fn worker_state_is_per_thread() {
        // Each worker's state counts its own items; the total must equal n.
        let counts = Arc::new(Mutex::new(vec![0usize; 4]));
        let counts_ref = Arc::clone(&counts);
        run_ordered(
            0..50,
            cfg(4, false),
            move |widx| {
                let counts = Arc::clone(&counts_ref);
                move |_i, _x: usize| {
                    counts.lock().unwrap()[widx] += 1;
                    Ok::<usize, String>(widx)
                }
            },
            |m| m,
            || "aborted".to_string(),
            |_, _| {},
        );
        let total: usize = counts.lock().unwrap().iter().sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn workers_see_the_input_index() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_ref = Arc::clone(&seen);
        run_ordered(
            10..20,
            cfg(3, false),
            move |_w| {
                let seen = Arc::clone(&seen_ref);
                move |i, x: usize| {
                    seen.lock().unwrap().push((i, x));
                    Ok::<usize, String>(x)
                }
            },
            |m| m,
            || "aborted".to_string(),
            |_, _| {},
        );
        let mut pairs = seen.lock().unwrap().clone();
        pairs.sort_unstable();
        assert_eq!(pairs, (0..10).map(|i| (i, 10 + i)).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_stops_feeding_but_drains_fed_items() {
        // Raise the shutdown flag from the first processed item: the feeder
        // stops early, yet every item it DID feed is processed (not
        // aborted) and emitted in order with no gaps.
        let flag = Arc::new(AtomicBool::new(false));
        let worker_flag = Arc::clone(&flag);
        let mut results = Vec::new();
        run_ordered(
            0..10_000,
            PoolConfig {
                jobs: 2,
                queue_depth: 4,
                fail_fast: false,
                shutdown: Some(Arc::clone(&flag)),
            },
            move |_w| {
                let flag = Arc::clone(&worker_flag);
                move |_i, x: usize| {
                    flag.store(true, Ordering::Relaxed);
                    Ok::<usize, String>(x)
                }
            },
            |m| m,
            || "aborted".to_string(),
            |idx, r| results.push((idx, r)),
        );
        assert!(
            results.len() < 10_000,
            "shutdown flag did not stop the feeder"
        );
        for (i, (idx, r)) in results.iter().enumerate() {
            assert_eq!(*idx, i, "gap in emitted indices");
            assert_eq!(r, &Ok(i), "fed item was aborted instead of drained");
        }
    }
}
