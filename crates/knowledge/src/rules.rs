//! Single-antecedent association rules over the cohort.
//!
//! The "knowledge" half of the paper's title: once records are structured,
//! cohort-level regularities ("current smokers have COPD far more often")
//! can be mined mechanically. Rules are `A=a ⇒ B=b` with the classic
//! support / confidence / lift measures.

use crate::cohort::Cohort;
use serde::{Deserialize, Serialize};

/// One mined rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Antecedent attribute.
    pub antecedent_attr: String,
    /// Antecedent value key.
    pub antecedent_value: String,
    /// Consequent attribute.
    pub consequent_attr: String,
    /// Consequent value key.
    pub consequent_value: String,
    /// P(A ∧ B): fraction of the cohort satisfying both.
    pub support: f64,
    /// P(B | A).
    pub confidence: f64,
    /// P(B | A) / P(B): > 1 means A raises the odds of B.
    pub lift: f64,
}

/// Mining thresholds.
#[derive(Debug, Clone, Copy)]
pub struct RuleParams {
    /// Minimum cohort fraction the rule's antecedent∧consequent must cover.
    pub min_support: f64,
    /// Minimum confidence.
    pub min_confidence: f64,
    /// Minimum lift (1.0 = no association).
    pub min_lift: f64,
}

impl Default for RuleParams {
    fn default() -> Self {
        RuleParams {
            min_support: 0.05,
            min_confidence: 0.5,
            min_lift: 1.2,
        }
    }
}

/// Mines all single-antecedent rules meeting the thresholds, sorted by
/// descending lift then confidence. Flag attributes only contribute their
/// "yes" side (a rule about the *absence* of a term is rarely knowledge).
pub fn mine_rules(cohort: &Cohort, params: RuleParams) -> Vec<Rule> {
    let n = cohort.len();
    if n == 0 {
        return Vec::new();
    }
    let attrs = cohort.attributes();
    // Candidate (attr, value) pairs with their supporting row sets.
    let mut items: Vec<(String, String, Vec<usize>)> = Vec::new();
    for attr in &attrs {
        let mut keys: Vec<String> = (0..n).map(|i| cohort.key_of(i, attr)).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            if key.is_empty() {
                continue;
            }
            if (attr.starts_with("has:") || attr.starts_with("had:")) && key == "no" {
                continue;
            }
            // Numeric attributes are not categorical items.
            if cohort
                .get(0, attr)
                .map(|v| v.as_number().is_some())
                .unwrap_or(false)
            {
                continue;
            }
            let rows = cohort.matching(attr, &key);
            if !rows.is_empty() {
                items.push((attr.clone(), key, rows));
            }
        }
    }
    let mut rules = Vec::new();
    for (a_attr, a_val, a_rows) in &items {
        for (b_attr, b_val, b_rows) in &items {
            if a_attr == b_attr {
                continue;
            }
            let both = a_rows.iter().filter(|r| b_rows.contains(r)).count();
            let support = both as f64 / n as f64;
            if support < params.min_support || a_rows.is_empty() {
                continue;
            }
            let confidence = both as f64 / a_rows.len() as f64;
            let p_b = b_rows.len() as f64 / n as f64;
            let lift = if p_b > 0.0 { confidence / p_b } else { 0.0 };
            if confidence >= params.min_confidence && lift >= params.min_lift {
                rules.push(Rule {
                    antecedent_attr: a_attr.clone(),
                    antecedent_value: a_val.clone(),
                    consequent_attr: b_attr.clone(),
                    consequent_value: b_val.clone(),
                    support,
                    confidence,
                    lift,
                });
            }
        }
    }
    rules.sort_by(|x, y| {
        y.lift
            .total_cmp(&x.lift)
            .then(y.confidence.total_cmp(&x.confidence))
    });
    rules
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}={} => {}={}  (support {:.2}, confidence {:.2}, lift {:.2})",
            self.antecedent_attr,
            self.antecedent_value,
            self.consequent_attr,
            self.consequent_value,
            self.support,
            self.confidence,
            self.lift
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Value;
    use std::collections::BTreeMap;

    fn cohort_with_association() -> Cohort {
        let mut c = Cohort::new();
        // 10 smokers, 8 with copd; 10 non-smokers, 1 with copd.
        for i in 0..20 {
            let mut row = BTreeMap::new();
            let smoker = i < 10;
            row.insert(
                "smoking".to_string(),
                Value::Text(if smoker { "current" } else { "never" }.to_string()),
            );
            let copd = (smoker && i < 8) || i == 15;
            if copd {
                row.insert("has:copd".to_string(), Value::Flag(true));
            }
            c.push_row(row);
        }
        c
    }

    #[test]
    fn finds_the_planted_rule() {
        let c = cohort_with_association();
        let rules = mine_rules(&c, RuleParams::default());
        let top = rules
            .iter()
            .find(|r| r.antecedent_value == "current" && r.consequent_attr == "has:copd")
            .expect("planted rule found");
        assert!((top.confidence - 0.8).abs() < 1e-12);
        assert!((top.support - 0.4).abs() < 1e-12);
        assert!(top.lift > 1.7, "lift {}", top.lift);
    }

    #[test]
    fn no_rules_from_empty_cohort() {
        assert!(mine_rules(&Cohort::new(), RuleParams::default()).is_empty());
    }

    #[test]
    fn thresholds_filter() {
        let c = cohort_with_association();
        let strict = mine_rules(
            &c,
            RuleParams {
                min_confidence: 0.99,
                min_support: 0.05,
                min_lift: 1.0,
            },
        );
        assert!(strict.iter().all(|r| r.confidence >= 0.99));
    }

    #[test]
    fn sorted_by_lift() {
        let c = cohort_with_association();
        let rules = mine_rules(
            &c,
            RuleParams {
                min_lift: 1.0,
                min_confidence: 0.1,
                min_support: 0.01,
            },
        );
        for w in rules.windows(2) {
            assert!(w[0].lift >= w[1].lift - 1e-12);
        }
    }

    #[test]
    fn absent_flag_side_not_mined() {
        let c = cohort_with_association();
        let rules = mine_rules(
            &c,
            RuleParams {
                min_lift: 0.0,
                min_confidence: 0.0,
                min_support: 0.0,
            },
        );
        assert!(rules
            .iter()
            .all(|r| !(r.consequent_attr.starts_with("has:") && r.consequent_value == "no")));
    }

    #[test]
    fn display_formats() {
        let c = cohort_with_association();
        let rules = mine_rules(&c, RuleParams::default());
        let s = rules[0].to_string();
        assert!(s.contains("=>"));
        assert!(s.contains("lift"));
    }
}
