//! Field-spec checks (`CMR-D030` … `CMR-D035`): numeric ranges, phrase
//! tokenizability, pattern fillers, salvage-folding collisions, and
//! negation-trigger shadowing.

use crate::{Diagnostic, Severity};
use cmr_core::{negation_triggers, pattern_fillers, salvage_fold, FeatureSpec, Schema, ValueKind};
use cmr_text::tokenize;

/// Workspace-relative path of the schema.
pub const ASSET: &str = "crates/core/src/schema.rs";
/// Workspace-relative path of the pattern-filler table.
pub const NUMERIC_ASSET: &str = "crates/core/src/numeric.rs";

/// `CMR-D030` / `CMR-D031`: empty valid ranges, and same-kind specs that
/// share a section with overlapping ranges (range gating cannot keep their
/// values apart; only keyword association does).
pub fn check_ranges(specs: &[FeatureSpec], out: &mut Vec<Diagnostic>) {
    for spec in specs {
        let Some((lo, hi)) = spec.range else { continue };
        let empty = lo > hi || (spec.kind == ValueKind::Int && lo.ceil() > hi.floor());
        if empty {
            out.push(
                Diagnostic::new(
                    "CMR-D030",
                    Severity::Error,
                    ASSET,
                    format!("spec `{}`", spec.name),
                    format!(
                        "valid range [{lo}, {hi}] contains no {:?} value; the field can never extract",
                        spec.kind
                    ),
                )
                .with_fix("widen or correct the range bounds"),
            );
        }
    }
    for (i, a) in specs.iter().enumerate() {
        for b in &specs[i + 1..] {
            if a.kind != b.kind || !sections_overlap(a, b) {
                continue;
            }
            let (Some((alo, ahi)), Some((blo, bhi))) = (a.range, b.range) else {
                continue;
            };
            if alo <= bhi && blo <= ahi {
                let olo = alo.max(blo);
                let ohi = ahi.min(bhi);
                out.push(Diagnostic::new(
                    "CMR-D031",
                    Severity::Note,
                    ASSET,
                    format!("spec `{}` / spec `{}`", a.name, b.name),
                    format!(
                        "same-kind specs in one section have overlapping ranges [{olo}, {ohi}]; range gating cannot disambiguate them, only keyword association does"
                    ),
                ));
            }
        }
    }
}

fn sections_overlap(a: &FeatureSpec, b: &FeatureSpec) -> bool {
    if a.sections.is_empty() || b.sections.is_empty() {
        return true; // an unsectioned spec scans the whole record
    }
    a.sections
        .iter()
        .any(|sa| b.sections.iter().any(|sb| sa.eq_ignore_ascii_case(sb)))
}

/// `CMR-D032`: a keyword phrase (or generated variant) containing a word
/// that does not survive tokenization as a single word token. The mention
/// scanner matches per-word against word tokens only, so such a phrase can
/// never fire.
pub fn check_phrase_tokenization(specs: &[FeatureSpec], out: &mut Vec<Diagnostic>) {
    for spec in specs {
        for phrase in spec.matching_phrases() {
            for word in phrase.split_whitespace() {
                let toks = tokenize(word);
                let ok = toks.len() == 1
                    && toks[0].kind.is_word()
                    && toks[0].text.to_lowercase() == word;
                if !ok {
                    out.push(
                        Diagnostic::new(
                            "CMR-D032",
                            Severity::Warning,
                            ASSET,
                            format!("spec `{}` phrase \"{phrase}\"", spec.name),
                            format!(
                                "phrase word \"{word}\" does not tokenize as a single word token, so the phrase can never match"
                            ),
                        )
                        .with_fix("reword the keyword to match tokenizer output"),
                    );
                }
            }
        }
    }
}

/// `CMR-D033`: a pattern-fallback filler that does not tokenize to a
/// single token equal to itself. The fallback compares fillers against one
/// token at a time, so a multi-token filler never fires.
pub fn check_fillers(fillers: &[&str], out: &mut Vec<Diagnostic>) {
    for filler in fillers {
        let toks = tokenize(filler);
        let ok = toks.len() == 1 && toks[0].text.to_lowercase() == *filler;
        if !ok {
            out.push(
                Diagnostic::new(
                    "CMR-D033",
                    Severity::Warning,
                    NUMERIC_ASSET,
                    format!("PATTERN_FILLERS[\"{filler}\"]"),
                    format!(
                        "filler \"{filler}\" does not survive tokenization as a single token, so it never matches"
                    ),
                )
                .with_fix("use the tokenized form of the filler"),
            );
        }
    }
}

/// `CMR-D034`: keyword phrases of *different* fields that collide under
/// the tier-3 salvage OCR folding — either exactly (the scanner cannot
/// tell the fields apart at all) or by word-bounded containment (a match
/// for the longer phrase also matches the shorter field's keyword, so the
/// shorter field can steal the longer field's number).
pub fn check_salvage_collisions(specs: &[FeatureSpec], out: &mut Vec<Diagnostic>) {
    let folded: Vec<(usize, String, String)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, s)| {
            s.matching_phrases()
                .into_iter()
                .map(move |p| (i, salvage_fold(&p), p))
        })
        .collect();
    for (ai, afold, aphrase) in &folded {
        for (bi, bfold, bphrase) in &folded {
            if specs[*ai].name >= specs[*bi].name {
                continue; // each unordered field pair once
            }
            if afold == bfold {
                out.push(Diagnostic::new(
                    "CMR-D034",
                    Severity::Warning,
                    ASSET,
                    format!("spec `{}` / spec `{}`", specs[*ai].name, specs[*bi].name),
                    format!(
                        "keywords \"{aphrase}\" and \"{bphrase}\" fold identically under the salvage OCR folding; the salvage scan cannot tell the fields apart"
                    ),
                ));
            } else if contains_word_bounded(afold, bfold) {
                out.push(Diagnostic::new(
                    "CMR-D034",
                    Severity::Note,
                    ASSET,
                    format!("spec `{}` / spec `{}`", specs[*bi].name, specs[*ai].name),
                    format!(
                        "keyword \"{bphrase}\" is contained in \"{aphrase}\" under the salvage folding; if `{}` is missed, its salvage scan can steal `{}`'s number",
                        specs[*bi].name, specs[*ai].name
                    ),
                ));
            } else if contains_word_bounded(bfold, afold) {
                out.push(Diagnostic::new(
                    "CMR-D034",
                    Severity::Note,
                    ASSET,
                    format!("spec `{}` / spec `{}`", specs[*ai].name, specs[*bi].name),
                    format!(
                        "keyword \"{aphrase}\" is contained in \"{bphrase}\" under the salvage folding; if `{}` is missed, its salvage scan can steal `{}`'s number",
                        specs[*ai].name, specs[*bi].name
                    ),
                ));
            }
        }
    }
}

/// True when `needle` occurs in `hay` bounded by non-alphanumerics.
fn contains_word_bounded(hay: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let hay_b = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !hay_b[start - 1].is_ascii_alphanumeric();
        let right_ok = end == hay.len() || !hay_b[end].is_ascii_alphanumeric();
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// `CMR-D035`: a keyword phrase that embeds a negation trigger sequence.
/// A mention of the phrase puts trigger words inside the matched span, so
/// the negation detector opens a scope in the middle of a field name.
pub fn check_shadowed_triggers(
    specs: &[FeatureSpec],
    triggers: &[&[&str]],
    out: &mut Vec<Diagnostic>,
) {
    for spec in specs {
        for phrase in spec.matching_phrases() {
            let words: Vec<&str> = phrase.split_whitespace().collect();
            for trigger in triggers {
                if trigger.is_empty() || trigger.len() > words.len() {
                    continue;
                }
                let hit = words.windows(trigger.len()).any(|w| w == *trigger);
                if hit {
                    out.push(Diagnostic::new(
                        "CMR-D035",
                        Severity::Warning,
                        ASSET,
                        format!("spec `{}` phrase \"{phrase}\"", spec.name),
                        format!(
                            "phrase embeds the negation trigger \"{}\"; mentions of the field will open a bogus negation scope",
                            trigger.join(" ")
                        ),
                    ));
                }
            }
        }
    }
}

/// Runs the spec checks over the committed paper schema.
pub fn check(out: &mut Vec<Diagnostic>) {
    let schema = Schema::paper();
    check_ranges(&schema.numeric, out);
    check_phrase_tokenization(&schema.numeric, out);
    check_fillers(pattern_fillers(), out);
    check_salvage_collisions(&schema.numeric, out);
    check_shadowed_triggers(&schema.numeric, negation_triggers(), out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, keywords: &[&str], sections: &[&str], kind: ValueKind) -> FeatureSpec {
        FeatureSpec::new(name, keywords, sections, kind)
    }

    #[test]
    fn committed_schema_is_clean_at_warning() {
        let mut out = Vec::new();
        check(&mut out);
        let bad: Vec<_> = out
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(bad.is_empty(), "committed schema regressed: {bad:#?}");
    }

    #[test]
    fn committed_schema_documents_known_overlaps() {
        // The paper schema deliberately keeps overlapping Int ranges in
        // Vitals (pulse/weight) and GYN History; the analyzer must keep
        // surfacing them as notes.
        let mut out = Vec::new();
        check(&mut out);
        assert!(
            out.iter().any(|d| d.code == "CMR-D031"
                && d.span.contains("pulse")
                && d.span.contains("weight")),
            "{out:#?}"
        );
        // "live birth" (para) is contained in "first live birth".
        assert!(
            out.iter().any(|d| d.code == "CMR-D034"
                && d.span.contains("para")
                && d.span.contains("first_birth_age")),
            "{out:#?}"
        );
    }

    #[test]
    fn empty_int_range_is_an_error() {
        let mut out = Vec::new();
        check_ranges(
            &[spec("x", &["x"], &[], ValueKind::Int).range(3.2, 3.9)],
            &mut out,
        );
        let d030: Vec<_> = out.iter().filter(|d| d.code == "CMR-D030").collect();
        assert_eq!(d030.len(), 1, "{out:#?}");
        assert_eq!(d030[0].severity, Severity::Error);
    }

    #[test]
    fn inverted_range_is_an_error() {
        let mut out = Vec::new();
        check_ranges(
            &[spec("x", &["x"], &[], ValueKind::Float).range(10.0, 5.0)],
            &mut out,
        );
        assert!(out.iter().any(|d| d.code == "CMR-D030"), "{out:#?}");
    }

    #[test]
    fn overlap_requires_shared_section_and_kind() {
        let a = spec("a", &["a"], &["S1"], ValueKind::Int).range(0.0, 10.0);
        let b = spec("b", &["b"], &["S1"], ValueKind::Int).range(5.0, 15.0);
        let c = spec("c", &["c"], &["S2"], ValueKind::Int).range(0.0, 10.0);
        let d = spec("d", &["d"], &["S1"], ValueKind::Float).range(0.0, 10.0);
        let mut out = Vec::new();
        check_ranges(&[a, b, c, d], &mut out);
        let d031: Vec<_> = out.iter().filter(|x| x.code == "CMR-D031").collect();
        assert_eq!(d031.len(), 1, "{out:#?}");
        assert!(d031[0].span.contains('a') && d031[0].span.contains('b'));
    }

    #[test]
    fn untokenizable_phrase_is_flagged() {
        let mut out = Vec::new();
        // "144/90" tokenizes as a number, not a word.
        check_phrase_tokenization(
            &[spec("x", &["ratio 144/90"], &[], ValueKind::Int)],
            &mut out,
        );
        assert!(out.iter().any(|d| d.code == "CMR-D032"), "{out:#?}");
    }

    #[test]
    fn dead_filler_is_flagged() {
        let mut out = Vec::new();
        check_fillers(&["of", "more or less"], &mut out);
        let d033: Vec<_> = out.iter().filter(|d| d.code == "CMR-D033").collect();
        assert_eq!(d033.len(), 1, "{out:#?}");
        assert!(d033[0].span.contains("more or less"));
    }

    #[test]
    fn committed_fillers_all_survive_tokenization() {
        let mut out = Vec::new();
        check_fillers(pattern_fillers(), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn identical_fold_is_a_warning() {
        // "b1ood pressure" and "blood pressure" fold identically.
        let a = spec("a", &["blood pressure"], &[], ValueKind::Ratio);
        let b = spec("b", &["b1ood pressure"], &[], ValueKind::Ratio);
        let mut out = Vec::new();
        check_salvage_collisions(&[a, b], &mut out);
        assert!(
            out.iter()
                .any(|d| d.code == "CMR-D034" && d.severity == Severity::Warning),
            "{out:#?}"
        );
    }

    #[test]
    fn shadowed_trigger_is_flagged() {
        let mut out = Vec::new();
        check_shadowed_triggers(
            &[spec("x", &["no evidence of disease"], &[], ValueKind::Int)],
            negation_triggers(),
            &mut out,
        );
        assert!(out.iter().any(|d| d.code == "CMR-D035"), "{out:#?}");
    }
}
