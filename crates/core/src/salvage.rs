//! Tier-3 salvage extraction: a raw-text keyword-and-number scanner.
//!
//! When the link grammar (tier 1) and the linguistic patterns (tier 2)
//! both come up empty for a field — typically because OCR noise broke
//! tokenization, a garbled header dropped the field's section, or
//! whitespace collapse merged sentences past the parser's window — this
//! scanner makes a last, structure-free attempt: find a feature keyword
//! under an OCR-confusion-tolerant folding, then take the first plausible
//! number within a short raw-character window after it.
//!
//! It is deliberately dumb. It has no notion of negation, coordination or
//! attachment, which is why the pipeline only consults it for fields the
//! real extractors missed, and why its hits carry tier `Salvage` with the
//! lowest confidence.

use crate::spec::FeatureSpec;
use cmr_text::NumberValue;

/// Raw characters scanned for a number after a keyword match.
const NUMBER_WINDOW: usize = 48;
/// Raw characters allowed between a digit run and a `year` word for the
/// `{N}-year-old` salvage (covers `-year`, ` years`, `- year`).
const YEAR_GAP: usize = 6;

/// Attempts to salvage a value for `spec` from raw text. Returns the first
/// keyword-adjacent number the spec accepts, or `None`.
pub(crate) fn salvage_numeric(text: &str, spec: &FeatureSpec) -> Option<NumberValue> {
    let raw: Vec<char> = text.chars().collect();
    if spec.year_old_pattern {
        // Ages are dictated as "{N}-year-old", not "age N"; scanning for the
        // keyword "age" here would happily steal "Menarche at age 10", so
        // the year-old shape is the only salvage this spec gets.
        return salvage_year_old(&raw, spec);
    }
    let folded = fold(&raw);
    for phrase in spec.matching_phrases() {
        let needle: Vec<char> = fold_str(&phrase);
        if needle.is_empty() {
            continue;
        }
        for end in find_occurrences(&folded, &needle) {
            if let Some(value) = scan_number(&raw, end, spec) {
                return Some(value);
            }
        }
    }
    None
}

/// One folded character and the raw index *after* its source characters
/// (a digraph fold consumes two raw characters).
#[derive(Debug, Clone, Copy)]
struct Folded {
    ch: char,
    raw_end: usize,
}

/// OCR-confusion-tolerant folding for keyword matching: lowercase, common
/// digit-for-letter confusions mapped back to letters, the `rn` digraph
/// fused to `m`, everything else non-alphanumeric to a space. Applied to
/// both the text and the keyword phrases, so clean and noisy renderings of
/// a keyword fold to the same string.
fn fold(raw: &[char]) -> Vec<Folded> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        if (raw[i] == 'r' || raw[i] == 'R') && matches!(raw.get(i + 1), Some('n') | Some('N')) {
            out.push(Folded {
                ch: 'm',
                raw_end: i + 2,
            });
            i += 2;
            continue;
        }
        let ch = match raw[i] {
            '1' => 'l',
            '0' => 'o',
            '5' => 's',
            '8' => 'b',
            c if c.is_ascii_alphanumeric() => c.to_ascii_lowercase(),
            _ => ' ',
        };
        out.push(Folded { ch, raw_end: i + 1 });
        i += 1;
    }
    out
}

/// Folds a clean phrase with the same rules (index information discarded).
fn fold_str(phrase: &str) -> Vec<char> {
    let raw: Vec<char> = phrase.chars().collect();
    fold(&raw).iter().map(|f| f.ch).collect()
}

/// The OCR-confusion folding applied to keyword phrases, exposed for
/// static analysis: two fields whose phrases fold identically collide in
/// the tier-3 salvage scan.
pub fn salvage_fold(phrase: &str) -> String {
    fold_str(phrase).into_iter().collect()
}

/// Raw indices just past each word-bounded occurrence of `needle` in the
/// folded text, left to right.
fn find_occurrences(folded: &[Folded], needle: &[char]) -> Vec<usize> {
    let mut out = Vec::new();
    if needle.len() > folded.len() {
        return out;
    }
    for start in 0..=folded.len() - needle.len() {
        let matches = folded[start..start + needle.len()]
            .iter()
            .zip(needle)
            .all(|(f, n)| f.ch == *n);
        if !matches {
            continue;
        }
        let left_ok = start == 0 || !folded[start - 1].ch.is_ascii_alphanumeric();
        let right = start + needle.len();
        let right_ok = right == folded.len() || !folded[right].ch.is_ascii_alphanumeric();
        if left_ok && right_ok {
            out.push(folded[right - 1].raw_end);
        }
    }
    out
}

/// Scans raw characters after a keyword match for the first number the
/// spec accepts; stops at a newline or after [`NUMBER_WINDOW`] characters.
fn scan_number(raw: &[char], from: usize, spec: &FeatureSpec) -> Option<NumberValue> {
    let stop = raw
        .iter()
        .skip(from)
        .position(|&c| c == '\n')
        .map(|p| from + p)
        .unwrap_or(raw.len())
        .min(from + NUMBER_WINDOW);
    for (_, run) in runs(raw, from, stop) {
        if let Some(value) = parse_run(&run) {
            if spec.accepts(&value) {
                return Some(value);
            }
        }
    }
    None
}

/// The `{N}-year-old` shape under OCR folding: a digit run followed within
/// [`YEAR_GAP`] characters by a word folding to `year…`.
fn salvage_year_old(raw: &[char], spec: &FeatureSpec) -> Option<NumberValue> {
    let all = runs(raw, 0, raw.len());
    for (idx, (start, run)) in all.iter().enumerate() {
        let Some(value) = parse_run(run) else {
            continue;
        };
        if !matches!(value, NumberValue::Int(_)) || !spec.accepts(&value) {
            continue;
        }
        let end = start + run.len();
        let Some((next_start, next_run)) = all.get(idx + 1) else {
            continue;
        };
        if *next_start > end + YEAR_GAP {
            continue;
        }
        let folded: String = fold_str(&next_run.iter().collect::<String>())
            .into_iter()
            .collect();
        if folded.starts_with("year") {
            return Some(value);
        }
    }
    None
}

/// Maximal runs of number-ish characters (`[0-9A-Za-z./]`) in
/// `raw[from..stop]`, each with its start index.
fn runs(raw: &[char], from: usize, stop: usize) -> Vec<(usize, Vec<char>)> {
    let mut out: Vec<(usize, Vec<char>)> = Vec::new();
    let mut i = from;
    while i < stop {
        if is_run_char(raw[i]) {
            let start = i;
            while i < stop && is_run_char(raw[i]) {
                i += 1;
            }
            out.push((start, raw[start..i].to_vec()));
        } else {
            i += 1;
        }
    }
    out
}

fn is_run_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '.' || c == '/'
}

/// Parses a digit-bearing run as ratio, float or int, after folding the
/// OCR letter-for-digit confusions (`l`/`I`→1, `O`/`o`→0, `S`→5, `B`→8)
/// and trimming stray leading/trailing punctuation. Runs without a real
/// digit are rejected before folding — folding letters inside a digit-free
/// word (`"SOB"` → `508`) would hallucinate numbers out of prose.
fn parse_run(run: &[char]) -> Option<NumberValue> {
    if !run.iter().any(char::is_ascii_digit) {
        return None;
    }
    let folded: String = run
        .iter()
        .map(|&c| match c {
            'l' | 'I' => '1',
            'O' | 'o' => '0',
            'S' => '5',
            'B' => '8',
            other => other,
        })
        .collect();
    let trimmed = folded.trim_matches(|c: char| c == '.' || c == '/');
    if trimmed.is_empty()
        || !trimmed
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '/')
    {
        return None;
    }
    if let Some((a, b)) = trimmed.split_once('/') {
        let a: i64 = a.parse().ok()?;
        let b: i64 = b.parse().ok()?;
        return Some(NumberValue::Ratio(a, b));
    }
    if trimmed.contains('.') {
        return trimmed.parse::<f64>().ok().map(NumberValue::Float);
    }
    trimmed.parse::<i64>().ok().map(NumberValue::Int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ValueKind;

    fn bp() -> FeatureSpec {
        FeatureSpec::new(
            "blood_pressure",
            &["blood pressure", "bp"],
            &["Vitals"],
            ValueKind::Ratio,
        )
    }

    fn pulse() -> FeatureSpec {
        FeatureSpec::new("pulse", &["pulse"], &["Vitals"], ValueKind::Int).range(20.0, 250.0)
    }

    fn temperature() -> FeatureSpec {
        FeatureSpec::new(
            "temperature",
            &["temperature", "temp"],
            &[],
            ValueKind::Float,
        )
        .range(90.0, 110.0)
    }

    fn age() -> FeatureSpec {
        FeatureSpec::new("age", &["age"], &[], ValueKind::Int)
            .range(18.0, 110.0)
            .year_old()
    }

    #[test]
    fn clean_text_salvages() {
        assert_eq!(
            salvage_numeric("blood pressure is 144/90", &bp()),
            Some(NumberValue::Ratio(144, 90))
        );
        assert_eq!(
            salvage_numeric("pulse of 84", &pulse()),
            Some(NumberValue::Int(84))
        );
    }

    #[test]
    fn ocr_noise_in_keyword_and_number() {
        // "Blood" → "B1ood", "pressure" → "pre55ure", "144/90" → "l44/9O".
        assert_eq!(
            salvage_numeric("B1ood pre55ure is l44/9O, pulse 84.", &bp()),
            Some(NumberValue::Ratio(144, 90))
        );
        // "temperature" with the rn→m confusion reversed: "ternperature".
        assert_eq!(
            salvage_numeric("ternperature of 98.3", &temperature()),
            Some(NumberValue::Float(98.3))
        );
    }

    #[test]
    fn range_gate_skips_implausible_runs() {
        // 999 is out of range; the scan continues to 84.
        assert_eq!(
            salvage_numeric("pulse code 999 rate 84", &pulse()),
            Some(NumberValue::Int(84))
        );
    }

    #[test]
    fn kind_gate_skips_wrong_shapes() {
        // The ratio is not an int; salvage must not take 144 or 90 for pulse.
        assert_eq!(
            salvage_numeric("pulse near bp 144/90", &pulse()),
            None,
            "ratio must not be split into ints"
        );
    }

    #[test]
    fn window_stops_at_newline() {
        assert_eq!(salvage_numeric("pulse was taken\n84 later", &pulse()), None);
    }

    #[test]
    fn year_old_shape_only_for_age() {
        assert_eq!(
            salvage_year_old(&"a 5O-year-old woman".chars().collect::<Vec<_>>(), &age()),
            Some(NumberValue::Int(50))
        );
        // "age 10" in GYN history must NOT be salvaged as the patient age.
        assert_eq!(salvage_numeric("Menarche at age 10.", &age()), None);
    }

    #[test]
    fn no_keyword_no_hit() {
        assert_eq!(salvage_numeric("Respirations were 18.", &pulse()), None);
        assert_eq!(salvage_numeric("", &pulse()), None);
    }
}
