//! Offline stand-in for `criterion` 0.5.
//!
//! Keeps the API the workspace's benches compile against — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`
//! and `iter_batched`, `BatchSize`, `criterion_group!`/`criterion_main!` —
//! and measures with plain `std::time::Instant` sampling: per sample the
//! routine is repeated until ≥1 ms of wall time accumulates, and the median
//! ns/iter across samples is reported to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! routine runs exactly once so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; all variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// Measurement harness handed to bench closures.
pub struct Bencher {
    test_mode: bool,
    samples: Vec<f64>, // ns per iteration
}

impl Bencher {
    /// One timing sample of `routine` (repeated internally until the
    /// sample is long enough to time reliably).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(0.0);
            return;
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }

    /// Like [`Bencher::iter`], but excludes `setup` from the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.samples.push(0.0);
            return;
        }
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    budget: Duration,
    test_mode: bool,
    mut f: F,
) {
    let mut samples = Vec::new();
    let started = Instant::now();
    let rounds = if test_mode { 1 } else { sample_size.max(1) };
    for _ in 0..rounds {
        let mut b = Bencher {
            test_mode,
            samples: Vec::new(),
        };
        f(&mut b);
        samples.extend(b.samples);
        if started.elapsed() > budget {
            break;
        }
    }
    if test_mode {
        println!("test {label} ... ok (bench smoke run)");
        return;
    }
    if samples.is_empty() {
        println!("{label:<40} no samples");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{label:<40} time: [{} {} {}]",
        format_ns(lo),
        format_ns(median),
        format_ns(hi)
    );
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Caps total measurement wall time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        if self.criterion.should_run(&label) {
            run_bench(
                &label,
                self.sample_size,
                self.budget,
                self.criterion.test_mode,
                f,
            );
        }
        self
    }

    /// Ends the group (reporting is immediate, so this is a marker).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench/test pass flags such as --bench, --test, and an
        // optional name filter; honour the two that change behaviour.
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Applies CLI configuration (already done in `default`; parity shim).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    fn should_run(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            budget: Duration::from_secs(5),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = id.into();
        if self.should_run(&label) {
            run_bench(&label, 100, Duration::from_secs(5), self.test_mode, f);
        }
        self
    }

    /// Prints the closing summary (no-op: results print as they complete).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function in criterion's shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            test_mode: false,
            samples: Vec::new(),
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(n)
        });
        assert_eq!(b.samples.len(), 1);
        assert!(b.samples[0] >= 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut b = Bencher {
            test_mode: true,
            samples: Vec::new(),
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8, 2, 3]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 1);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with('s'));
    }
}
