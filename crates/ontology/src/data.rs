//! The embedded concept tables.
//!
//! Vocabulary is biased toward breast-cancer consultation notes (the paper's
//! domain): the diseases, procedures, drugs, findings and behaviors that
//! appear in past medical history, past surgical history, medications and
//! examination sections. CUIs are synthetic.

use crate::concept::{Concept, Rarity, SemanticType};

macro_rules! concepts {
    ($($cui:literal, $pref:literal, [$($syn:literal),*], $ty:ident, $rar:ident;)*) => {
        &[$(Concept {
            cui: $cui,
            preferred: $pref,
            synonyms: &[$($syn),*],
            semtype: SemanticType::$ty,
            rarity: Rarity::$rar,
        }),*]
    };
}

/// Every concept in the vocabulary.
pub const CONCEPTS: &[Concept] = concepts![
    // ---- diseases -------------------------------------------------------
    "CMR0001", "diabetes", ["diabetes mellitus", "dm"], Disease, Common;
    "CMR0002", "hypertension", ["high blood pressure", "htn", "elevated blood pressure"], Disease, Common;
    "CMR0003", "heart disease", ["cardiac disease", "coronary artery disease", "cad"], Disease, Common;
    "CMR0004", "hypercholesterolemia", ["high cholesterol", "elevated cholesterol", "hyperlipidemia"], Disease, Common;
    "CMR0005", "asthma", ["reactive airway disease"], Disease, Common;
    "CMR0006", "bronchitis", ["chronic bronchitis"], Disease, Common;
    "CMR0007", "arrhythmia", ["cardiac arrhythmia", "irregular heartbeat", "atrial fibrillation"], Disease, Common;
    "CMR0008", "depression", ["major depression", "depressive disorder"], Disease, Common;
    "CMR0009", "arthritis", ["osteoarthritis", "degenerative joint disease"], Disease, Common;
    "CMR0010", "cerebrovascular accident", ["cva", "stroke", "postoperative cva"], Disease, Common;
    "CMR0011", "myocardial infarction", ["heart attack", "mi"], Disease, Common;
    "CMR0012", "congestive heart failure", ["chf", "heart failure"], Disease, Common;
    "CMR0013", "chronic obstructive pulmonary disease", ["copd", "emphysema"], Disease, Common;
    "CMR0014", "hypothyroidism", ["underactive thyroid", "low thyroid"], Disease, Common;
    "CMR0015", "gastroesophageal reflux disease", ["gerd", "acid reflux", "reflux"], Disease, Common;
    "CMR0016", "anemia", ["iron deficiency anemia"], Disease, Common;
    "CMR0017", "osteoporosis", ["bone loss"], Disease, Common;
    "CMR0018", "migraine", ["migraine headache"], Disease, Common;
    "CMR0019", "breast cancer", ["breast carcinoma", "carcinoma of breast", "mammary carcinoma"], Disease, Common;
    "CMR0020", "pneumonia", [], Disease, Common;
    "CMR0021", "gout", [], Disease, Rare;
    "CMR0022", "glaucoma", [], Disease, Rare;
    "CMR0023", "cataract", ["cataracts"], Disease, Rare;
    "CMR0024", "fibromyalgia", [], Disease, Rare;
    "CMR0025", "diverticulitis", [], Disease, Rare;
    "CMR0026", "peptic ulcer disease", ["stomach ulcer", "ulcer disease"], Disease, Rare;
    "CMR0027", "deep vein thrombosis", ["dvt", "venous thrombosis"], Disease, Rare;
    "CMR0028", "pulmonary embolism", ["pe"], Disease, Rare;
    "CMR0029", "seizure disorder", ["epilepsy", "seizures"], Disease, Rare;
    "CMR0030", "anxiety", ["anxiety disorder", "generalized anxiety"], Disease, Common;
    "CMR0031", "obesity", ["morbid obesity"], Disease, Common;
    "CMR0032", "kidney disease", ["renal disease", "chronic kidney disease", "renal insufficiency"], Disease, Rare;
    "CMR0033", "hepatitis", ["hepatitis c", "hepatitis b"], Disease, Rare;
    "CMR0034", "lupus", ["systemic lupus erythematosus", "sle"], Disease, Rare;
    "CMR0035", "psoriasis", [], Disease, Rare;
    "CMR0036", "endometriosis", [], Disease, Rare;
    "CMR0037", "fibrocystic breast disease", ["fibrocystic disease", "fibrocystic change"], Disease, Common;
    "CMR0038", "ovarian cancer", ["ovarian carcinoma"], Disease, Rare;
    "CMR0039", "colon cancer", ["colorectal cancer", "colon carcinoma"], Disease, Rare;
    "CMR0040", "thyroid nodule", ["thyroid nodules"], Disease, Rare;
    "CMR0041", "mitral valve prolapse", ["mvp"], Disease, Rare;
    "CMR0042", "transient ischemic attack", ["tia", "mini stroke"], Disease, Rare;
    "CMR0043", "sleep apnea", ["obstructive sleep apnea", "osa"], Disease, Rare;
    "CMR0044", "urinary tract infection", ["uti", "bladder infection"], Disease, Rare;
    "CMR0045", "sinusitis", ["chronic sinusitis"], Disease, Rare;
    "CMR0046", "eczema", ["atopic dermatitis"], Disease, Rare;
    "CMR0047", "irritable bowel syndrome", ["ibs"], Disease, Rare;
    "CMR0048", "uterine fibroid", ["uterine fibroids", "fibroids", "leiomyoma"], Disease, Common;
    "CMR0049", "cervical dysplasia", [], Disease, Rare;
    "CMR0050", "ductal carcinoma in situ", ["dcis", "intraductal carcinoma"], Disease, Rare;
    // ---- procedures -----------------------------------------------------
    "CMR0101", "cholecystectomy", ["gallbladder removal", "laparoscopic cholecystectomy", "gallbladder surgery"], Procedure, Common;
    "CMR0102", "appendectomy", ["appendix removal", "appy"], Procedure, Common;
    "CMR0103", "hysterectomy", ["total abdominal hysterectomy", "tah", "uterus removal"], Procedure, Common;
    "CMR0104", "cesarean section", ["c-section", "cesarean delivery", "cesarean"], Procedure, Common;
    "CMR0105", "tonsillectomy", ["tonsil removal"], Procedure, Common;
    "CMR0106", "hernia repair", ["hernia closure", "herniorrhaphy", "midline hernia closure", "inguinal hernia repair"], Procedure, Common;
    "CMR0107", "mastectomy", ["breast removal", "modified radical mastectomy"], Procedure, Common;
    "CMR0108", "lumpectomy", ["partial mastectomy", "breast conservation surgery"], Procedure, Common;
    "CMR0109", "breast biopsy", ["biopsy of breast", "core needle biopsy", "excisional biopsy"], Procedure, Common;
    "CMR0110", "laminectomy", ["cervical laminectomy", "lumbar laminectomy"], Procedure, Common;
    "CMR0111", "coronary artery bypass", ["cabg", "bypass surgery", "heart bypass"], Procedure, Common;
    "CMR0112", "angioplasty", ["balloon angioplasty", "stent placement"], Procedure, Rare;
    "CMR0113", "knee replacement", ["total knee arthroplasty", "knee arthroplasty"], Procedure, Rare;
    "CMR0114", "hip replacement", ["total hip arthroplasty", "hip arthroplasty"], Procedure, Rare;
    "CMR0115", "oophorectomy", ["ovary removal", "bilateral salpingo-oophorectomy", "bso"], Procedure, Rare;
    "CMR0116", "thyroidectomy", ["thyroid removal"], Procedure, Rare;
    "CMR0117", "tubal ligation", ["tubes tied", "bilateral tubal ligation"], Procedure, Common;
    "CMR0118", "carpal tunnel release", ["carpal tunnel surgery"], Procedure, Rare;
    "CMR0119", "cataract extraction", ["cataract surgery", "cataract removal"], Procedure, Rare;
    "CMR0120", "colonoscopy", [], Procedure, Common;
    "CMR0121", "arthroscopy", ["knee arthroscopy", "arthroscopic surgery"], Procedure, Rare;
    "CMR0122", "vasectomy", [], Procedure, Rare;
    "CMR0123", "skin graft", ["skin grafting"], Procedure, Rare;
    "CMR0124", "rhinoplasty", ["nose job"], Procedure, Rare;
    "CMR0125", "breast augmentation", ["breast implant", "breast implants"], Procedure, Rare;
    "CMR0126", "breast reduction", ["reduction mammoplasty"], Procedure, Rare;
    "CMR0127", "lymph node dissection", ["axillary dissection", "axillary lymph node dissection"], Procedure, Rare;
    "CMR0128", "lymph node biopsy", ["sentinel node biopsy", "sentinel lymph node biopsy"], Procedure, Rare;
    "CMR0129", "gastric bypass", ["bariatric surgery", "stomach stapling"], Procedure, Rare;
    "CMR0130", "back surgery", ["spinal fusion", "spine surgery"], Procedure, Rare;
    // ---- findings -------------------------------------------------------
    "CMR0201", "lymphadenopathy", ["adenopathy", "enlarged lymph nodes", "supraclavicular lymphadenopathy", "axillary adenopathy"], Finding, Common;
    "CMR0202", "breast mass", ["breast lump", "dominant lesion", "palpable mass"], Finding, Common;
    "CMR0203", "abnormal mammogram", ["abnormal screening mammogram", "mammographic abnormality"], Finding, Common;
    "CMR0204", "calcification", ["abnormal calcification", "microcalcification", "microcalcifications"], Finding, Common;
    "CMR0205", "nipple discharge", ["breast discharge"], Finding, Common;
    "CMR0206", "breast pain", ["mastalgia", "breast tenderness"], Finding, Common;
    "CMR0207", "back pain", ["low back pain", "lumbago"], Finding, Common;
    "CMR0208", "chest pain", ["angina"], Finding, Common;
    "CMR0209", "headache", ["headaches"], Finding, Common;
    "CMR0210", "solid lesion", ["solid mass", "solid nodule"], Finding, Common;
    "CMR0211", "cyst", ["simple cyst", "breast cyst"], Finding, Common;
    "CMR0212", "skin dimpling", ["dimpling"], Finding, Rare;
    "CMR0213", "nipple retraction", [], Finding, Rare;
    "CMR0214", "murmur", ["heart murmur", "systolic murmur"], Finding, Common;
    "CMR0215", "edema", ["swelling", "peripheral edema"], Finding, Common;
    "CMR0216", "shortness of breath", ["dyspnea", "breathing difficulty"], Finding, Common;
    "CMR0217", "fatigue", ["tiredness"], Finding, Common;
    "CMR0218", "dizziness", ["vertigo", "lightheadedness"], Finding, Common;
    "CMR0219", "nausea", [], Finding, Common;
    "CMR0220", "weight loss", ["unintentional weight loss"], Finding, Common;
    // Standalone head-word concepts. When a multiword term is absent from
    // an incomplete vocabulary, the §3.2 scanner falls through to the
    // single-noun pattern and resolves the head word instead — the exact
    // "improper assignments" failure the paper analyzes in Table 1.
    "CMR0221", "hernia", ["hernias"], Finding, Common;
    "CMR0222", "ulcer", ["ulcers"], Finding, Common;
    "CMR0223", "thrombosis", [], Finding, Common;
    "CMR0224", "embolism", [], Finding, Common;
    "CMR0225", "seizure", ["seizures"], Finding, Common;
    "CMR0226", "apnea", [], Finding, Common;
    "CMR0227", "infection", ["infections"], Finding, Common;
    // ---- drugs ----------------------------------------------------------
    "CMR0301", "aspirin", ["asa"], Drug, Common;
    "CMR0302", "hydrochlorothiazide", ["hctz"], Drug, Common;
    "CMR0303", "lipitor", ["atorvastatin"], Drug, Common;
    "CMR0304", "cardizem", ["diltiazem"], Drug, Common;
    "CMR0305", "senna", [], Drug, Rare;
    "CMR0306", "wellbutrin", ["bupropion"], Drug, Common;
    "CMR0307", "zoloft", ["sertraline"], Drug, Common;
    "CMR0308", "protonix", ["pantoprazole"], Drug, Common;
    "CMR0309", "glucophage", ["metformin"], Drug, Common;
    "CMR0310", "os-cal", ["calcium carbonate", "calcium supplement"], Drug, Rare;
    "CMR0311", "combivent", ["albuterol ipratropium"], Drug, Rare;
    "CMR0312", "flovent", ["fluticasone"], Drug, Rare;
    "CMR0313", "penicillin", [], Drug, Common;
    "CMR0314", "lisinopril", ["ace inhibitor", "ace inhibitors"], Drug, Common;
    "CMR0315", "tamoxifen", [], Drug, Common;
    "CMR0316", "synthroid", ["levothyroxine"], Drug, Common;
    "CMR0317", "coumadin", ["warfarin"], Drug, Common;
    "CMR0318", "prednisone", [], Drug, Common;
    "CMR0319", "insulin", [], Drug, Common;
    "CMR0320", "ibuprofen", ["motrin", "advil"], Drug, Common;
    // ---- anatomy --------------------------------------------------------
    "CMR0401", "breast", ["left breast", "right breast"], Anatomy, Common;
    "CMR0402", "axilla", ["armpit"], Anatomy, Common;
    "CMR0403", "lymph node", ["lymph nodes"], Anatomy, Common;
    "CMR0404", "gallbladder", [], Anatomy, Common;
    "CMR0405", "uterus", [], Anatomy, Common;
    "CMR0406", "cervical spine", ["neck spine"], Anatomy, Rare;
    "CMR0407", "kidney", ["kidneys"], Anatomy, Common;
    "CMR0408", "thyroid", ["thyroid gland"], Anatomy, Common;
    "CMR0409", "knee", ["knees"], Anatomy, Common;
    "CMR0410", "hip", ["hips"], Anatomy, Common;
    // ---- behaviors ------------------------------------------------------
    "CMR0501", "smoking", ["tobacco use", "cigarette smoking", "smoking history"], Behavior, Common;
    "CMR0502", "alcohol use", ["alcohol consumption", "drinking", "etoh use"], Behavior, Common;
    "CMR0503", "drug use", ["substance use", "marijuana use"], Behavior, Common;
];

/// Predefined past-medical-history checklist (the study's fixed list; the
/// paper distinguishes "Predefined Past Medical History" from "Other").
pub const PREDEFINED_MEDICAL_CUIS: &[&str] = &[
    "CMR0001", // diabetes
    "CMR0002", // hypertension
    "CMR0003", // heart disease
    "CMR0004", // hypercholesterolemia
    "CMR0005", // asthma
    "CMR0007", // arrhythmia
    "CMR0008", // depression
    "CMR0009", // arthritis
    "CMR0010", // cerebrovascular accident
    "CMR0013", // COPD
    "CMR0019", // breast cancer
];

/// Predefined past-surgical-history checklist.
pub const PREDEFINED_SURGICAL_CUIS: &[&str] = &[
    "CMR0101", // cholecystectomy
    "CMR0102", // appendectomy
    "CMR0103", // hysterectomy
    "CMR0104", // cesarean section
    "CMR0105", // tonsillectomy
    "CMR0106", // hernia repair
    "CMR0107", // mastectomy
    "CMR0108", // lumpectomy
    "CMR0109", // breast biopsy
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cuis_unique() {
        let mut seen = HashSet::new();
        for c in CONCEPTS {
            assert!(seen.insert(c.cui), "duplicate cui {}", c.cui);
        }
    }

    #[test]
    fn names_lowercase() {
        for c in CONCEPTS {
            assert_eq!(c.preferred, c.preferred.to_lowercase());
            for s in c.synonyms {
                assert_eq!(*s, s.to_lowercase());
            }
        }
    }

    #[test]
    fn predefined_lists_resolve() {
        let cuis: HashSet<&str> = CONCEPTS.iter().map(|c| c.cui).collect();
        for cui in PREDEFINED_MEDICAL_CUIS
            .iter()
            .chain(PREDEFINED_SURGICAL_CUIS)
        {
            assert!(cuis.contains(cui), "unknown predefined cui {cui}");
        }
    }

    #[test]
    fn vocabulary_size() {
        assert!(CONCEPTS.len() >= 120, "got {}", CONCEPTS.len());
    }
}
