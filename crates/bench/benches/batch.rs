//! Batch-engine throughput: serial pipeline vs the worker pool at
//! increasing job counts. The point is near-linear scaling — each worker
//! owns its own pipeline (and parser cache), the records are independent,
//! and the only shared state is the read-only schema/ontology plus one
//! metrics mutex.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_batch(c: &mut Criterion) {
    let corpus = cmr_corpus::CorpusBuilder::new()
        .records(40)
        .seed(2005)
        .build();
    let texts: Vec<&str> = corpus.records.iter().map(|r| r.text.as_str()).collect();

    let mut g = c.benchmark_group("batch");
    g.sample_size(10);

    // Baseline: one pipeline, one thread, plain loop (no engine overhead).
    g.bench_function("serial_pipeline_40", |b| {
        let pipeline = cmr_core::Pipeline::with_default_schema();
        b.iter(|| {
            for t in &texts {
                black_box(pipeline.extract(black_box(t)));
            }
        })
    });

    for jobs in [1usize, 2, 4, 8] {
        let engine = cmr_engine::Engine::new(
            cmr_engine::EngineConfig {
                jobs,
                ..cmr_engine::EngineConfig::default()
            },
            cmr_core::Schema::paper(),
            cmr_ontology::Ontology::full(),
        );
        g.bench_function(format!("engine_40_jobs_{jobs}"), |b| {
            b.iter(|| black_box(engine.extract_batch(black_box(&texts))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
